//! Noise-aware comparator for two `bench_baseline` snapshots.
//!
//! ```text
//! bench_diff <old.json> <new.json> [--threshold R] [--gate-par RATIO]
//! ```
//!
//! A scenario counts as a **regression** only when both hold:
//!
//! * the rep ranges are disjoint on the slow side — the new run's
//!   fastest rep is slower than the old run's slowest (`new.min >
//!   old.max`), so no pair of observed reps contradicts the slowdown —
//!   and
//! * the mean moved by more than `--threshold` (relative, default
//!   0.10), so overlapping-tail flukes on low-rep snapshots don't gate.
//!
//! Improvements are the mirror image and are reported but never fail
//! the run. Exit is nonzero on any regression, which makes this bin the
//! CI perf gate (replacing the old inline thread-sweep script).
//!
//! `--gate-par R` additionally checks the *new* snapshot's parallel
//! sanity invariant: at the largest thread-sweep point the recorded
//! host could actually parallelize, the pooled engine may be at most
//! `R`× sequential on the big coloring workload (the old CI heredoc
//! used 1.10). This is an intra-snapshot check — it needs no baseline
//! and is immune to cross-host noise.

use std::process::ExitCode;

/// One scenario row from a snapshot's `"scenarios"` array.
#[derive(Clone, Debug, PartialEq)]
struct Row {
    name: String,
    mean_ms: f64,
    min_ms: f64,
    max_ms: f64,
}

/// The fields of a `BENCH_engine.json` this comparator reads.
#[derive(Debug)]
struct Snapshot {
    label: String,
    cpu_model: Option<String>,
    host_threads: u64,
    rows: Vec<Row>,
}

/// Pull `"key":<number>` out of one scenario row. Matches the compact
/// format `bench_baseline` writes; not a general JSON parser.
fn num_field(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = row.find(&pat)?;
    let rest = &row[at + pat.len()..];
    let num: String =
        rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    num.parse().ok()
}

fn str_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = text.find(&pat)?;
    let rest = &text[at + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn parse_snapshot(text: &str, path: &str) -> Result<Snapshot, String> {
    let start = text
        .find("\"scenarios\":[")
        .ok_or_else(|| format!("{path}: no \"scenarios\" array (not a bench_baseline snapshot)"))?;
    let body = &text[start + "\"scenarios\":[".len()..];
    let end = body.find(']').ok_or_else(|| format!("{path}: unterminated scenarios array"))?;
    let mut rows = Vec::new();
    for row in body[..end].split("{\"name\":\"").skip(1) {
        let Some(name_end) = row.find('"') else { continue };
        let name = row[..name_end].to_string();
        let (Some(mean_ms), Some(min_ms), Some(max_ms)) =
            (num_field(row, "mean_ms"), num_field(row, "min_ms"), num_field(row, "max_ms"))
        else {
            return Err(format!("{path}: scenario '{name}' is missing mean/min/max"));
        };
        rows.push(Row { name, mean_ms, min_ms, max_ms });
    }
    if rows.is_empty() {
        return Err(format!("{path}: empty scenarios array"));
    }
    Ok(Snapshot {
        label: str_field(text, "label").unwrap_or_else(|| "?".into()),
        cpu_model: str_field(text, "cpu_model"),
        host_threads: num_field(text, "host_threads").map_or(0, |v| v as u64),
        rows,
    })
}

/// One scenario's verdict, most severe first in the report.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    Regression,
    Improvement,
    Noise,
}

/// The noise-aware rule: a move only counts when the rep ranges are
/// disjoint AND the mean shifted by more than `threshold` (relative).
fn judge(old: &Row, new: &Row, threshold: f64) -> Verdict {
    let rel = (new.mean_ms - old.mean_ms) / old.mean_ms;
    if new.min_ms > old.max_ms && rel > threshold {
        Verdict::Regression
    } else if old.min_ms > new.max_ms && -rel > threshold {
        Verdict::Improvement
    } else {
        Verdict::Noise
    }
}

/// Compare both snapshots scenario by scenario; returns the regression
/// count (the exit-code driver).
fn diff_snapshots(old: &Snapshot, new: &Snapshot, threshold: f64) -> usize {
    if let (Some(a), Some(b)) = (&old.cpu_model, &new.cpu_model) {
        if a != b {
            eprintln!(
                "warning: snapshots come from different CPUs\n  old: {a}\n  new: {b}\n\
                 absolute comparisons across hosts are indicative, not conclusive"
            );
        }
    }
    let mut regressions = 0;
    for new_row in &new.rows {
        let Some(old_row) = old.rows.iter().find(|r| r.name == new_row.name) else {
            println!("  + {:<28} new scenario ({:.3} ms)", new_row.name, new_row.mean_ms);
            continue;
        };
        let rel = (new_row.mean_ms - old_row.mean_ms) / old_row.mean_ms * 100.0;
        match judge(old_row, new_row, threshold) {
            Verdict::Regression => {
                regressions += 1;
                println!(
                    "  ! {:<28} {:.3} -> {:.3} ms ({rel:+.1}%)  REGRESSION \
                     (ranges disjoint: old max {:.3} < new min {:.3})",
                    new_row.name, old_row.mean_ms, new_row.mean_ms, old_row.max_ms, new_row.min_ms
                );
            }
            Verdict::Improvement => println!(
                "  - {:<28} {:.3} -> {:.3} ms ({rel:+.1}%)  improvement",
                new_row.name, old_row.mean_ms, new_row.mean_ms
            ),
            Verdict::Noise => println!(
                "  ~ {:<28} {:.3} -> {:.3} ms ({rel:+.1}%)  within noise",
                new_row.name, old_row.mean_ms, new_row.mean_ms
            ),
        }
    }
    for old_row in &old.rows {
        if !new.rows.iter().any(|r| r.name == old_row.name) {
            println!("  x {:<28} dropped (was {:.3} ms)", old_row.name, old_row.mean_ms);
        }
    }
    regressions
}

/// The intra-snapshot parallel gate: at the widest sweep point the
/// snapshot's host could really parallelize, pooled must be within
/// `max_ratio` of sequential.
fn gate_par(snap: &Snapshot, max_ratio: f64) -> Result<(), String> {
    let mean = |name: &str| {
        snap.rows
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ms)
            .ok_or_else(|| format!("--gate-par: snapshot has no '{name}' scenario"))
    };
    let seq = mean("color_big_seq")?;
    let pick = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t as u64 <= snap.host_threads.max(1))
        .filter(|&t| snap.rows.iter().any(|r| r.name == format!("thread_sweep_t{t}")))
        .max()
        .ok_or("--gate-par: snapshot has no runnable thread_sweep_t* scenario")?;
    let par = mean(&format!("thread_sweep_t{pick}"))?;
    let ratio = par / seq;
    println!(
        "gate-par: host_threads={} seq={seq:.1}ms thread_sweep_t{pick}={par:.1}ms \
         ratio={ratio:.3} (budget {max_ratio:.2})",
        snap.host_threads
    );
    if ratio > max_ratio {
        return Err(format!(
            "parallel engine at t={pick} is {ratio:.2}x sequential (budget {max_ratio:.2}x) \
             — pool regression"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.10f64;
    let mut gate: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it.next().expect("--threshold needs a ratio");
                threshold = v.parse().unwrap_or_else(|_| panic!("--threshold {v}: not a number"));
            }
            "--gate-par" => {
                let v = it.next().expect("--gate-par needs a max par/seq ratio");
                gate = Some(v.parse().unwrap_or_else(|_| panic!("--gate-par {v}: not a number")));
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_diff <old.json> <new.json> [--threshold R] [--gate-par RATIO]");
        return ExitCode::from(2);
    }
    let load = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        parse_snapshot(&text, path).unwrap_or_else(|e| panic!("{e}"))
    };
    let old = load(&paths[0]);
    let new = load(&paths[1]);
    println!(
        "bench diff: '{}' ({}) -> '{}' ({}), threshold {:.0}%",
        old.label,
        paths[0],
        new.label,
        paths[1],
        threshold * 100.0
    );
    let regressions = diff_snapshots(&old, &new, threshold);
    let mut failed = regressions > 0;
    if regressions > 0 {
        eprintln!("{regressions} scenario(s) regressed beyond noise");
    }
    if let Some(max_ratio) = gate {
        if let Err(e) = gate_par(&new, max_ratio) {
            eprintln!("{e}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("no regressions");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rows: &[(&str, f64, f64, f64)]) -> Snapshot {
        Snapshot {
            label: "test".into(),
            cpu_model: None,
            host_threads: 8,
            rows: rows
                .iter()
                .map(|&(name, mean_ms, min_ms, max_ms)| Row {
                    name: name.into(),
                    mean_ms,
                    min_ms,
                    max_ms,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_bench_baseline_output() {
        let text = r#"{
"schema":"dima-bench-v1",
"label":"seeded",
"quick":true,
"par_threads":4,
"host_threads":8,
"cpu_model":"Test CPU 3000",
"rustc":"rustc 1.0.0",
"interleaved":false,
"scenarios":[{"name":"color_seq","reps":2,"mean_ms":10.500,"min_ms":10.100,"max_ms":10.900},{"name":"serve_slo","reps":2,"mean_ms":5.000,"min_ms":4.000,"max_ms":6.000,"p50_ms":1.000,"p99_ms":2.000}]
}"#;
        let s = parse_snapshot(text, "t.json").unwrap();
        assert_eq!(s.label, "seeded");
        assert_eq!(s.cpu_model.as_deref(), Some("Test CPU 3000"));
        assert_eq!(s.host_threads, 8);
        assert_eq!(s.rows.len(), 2);
        assert_eq!(
            s.rows[0],
            Row { name: "color_seq".into(), mean_ms: 10.5, min_ms: 10.1, max_ms: 10.9 }
        );
        assert!(parse_snapshot("{}", "t.json").is_err());
    }

    #[test]
    fn disjoint_ranges_and_threshold_both_required() {
        let old = Row { name: "s".into(), mean_ms: 100.0, min_ms: 95.0, max_ms: 105.0 };
        // Slower, disjoint, above threshold: regression.
        let slow = Row { name: "s".into(), mean_ms: 130.0, min_ms: 125.0, max_ms: 135.0 };
        assert_eq!(judge(&old, &slow, 0.10), Verdict::Regression);
        // Slower on the mean but the ranges overlap: noise.
        let noisy = Row { name: "s".into(), mean_ms: 130.0, min_ms: 101.0, max_ms: 160.0 };
        assert_eq!(judge(&old, &noisy, 0.10), Verdict::Noise);
        // Disjoint but under the relative threshold: noise.
        let slight = Row { name: "s".into(), mean_ms: 107.0, min_ms: 106.0, max_ms: 108.0 };
        assert_eq!(judge(&old, &slight, 0.10), Verdict::Noise);
        // The mirror image reports an improvement.
        let fast = Row { name: "s".into(), mean_ms: 70.0, min_ms: 65.0, max_ms: 75.0 };
        assert_eq!(judge(&old, &fast, 0.10), Verdict::Improvement);
    }

    #[test]
    fn seeded_regression_is_counted() {
        let old = snap(&[("color_seq", 100.0, 95.0, 105.0), ("kempe_reduce", 50.0, 48.0, 52.0)]);
        let new = snap(&[("color_seq", 140.0, 136.0, 144.0), ("kempe_reduce", 51.0, 47.0, 55.0)]);
        assert_eq!(diff_snapshots(&old, &new, 0.10), 1);
        assert_eq!(diff_snapshots(&old, &old, 0.10), 0);
    }

    #[test]
    fn gate_par_picks_widest_runnable_sweep_point() {
        let mut s = snap(&[
            ("color_big_seq", 100.0, 98.0, 102.0),
            ("thread_sweep_t1", 110.0, 108.0, 112.0),
            ("thread_sweep_t2", 80.0, 78.0, 82.0),
            ("thread_sweep_t4", 60.0, 58.0, 62.0),
            ("thread_sweep_t8", 200.0, 198.0, 202.0),
        ]);
        // host_threads = 8: t8 is picked and busts the budget.
        assert!(gate_par(&s, 1.10).is_err());
        // A 4-thread host never judges the oversubscribed t8 point.
        s.host_threads = 4;
        assert!(gate_par(&s, 1.10).is_ok());
        // Missing scenarios are structural errors, not passes.
        assert!(gate_par(&snap(&[("color_big_seq", 1.0, 1.0, 1.0)]), 1.10).is_err());
    }
}
