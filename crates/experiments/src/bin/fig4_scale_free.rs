//! **Figure 4** — Algorithm 1 (DiMaEC) on scale-free graphs.
//!
//! Paper §IV-B: 300 Barabási–Albert graphs of 100 or 400 nodes with the
//! attachment weighting swept to create increasingly disparate graphs.
//! Claims reproduced here:
//!
//! * rounds increase with Δ at an apparently constant rate;
//! * **no run used more than Δ colors** (stronger than Conjecture 2 —
//!   hubs dominate, and the hub's star is forced onto distinct low
//!   colors).

use dima_experiments::report::{conjecture2_text, edge_summary_table, rounds_vs_delta_plot};
use dima_experiments::run::{run_edge_corpus, EDGE_HEADERS};
use dima_experiments::{corpus, csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();
    let configs = corpus::fig4(args.trials_or(50));
    eprintln!(
        "fig4: running Algorithm 1 on {} scale-free configurations (seed {})...",
        configs.len(),
        args.seed
    );
    let trials = run_edge_corpus(&configs, args.seed, args.engine());

    println!("== Figure 4: edge coloring of scale-free graphs ==\n");
    println!("{}", edge_summary_table(&trials).render());
    println!("{}\n", conjecture2_text(&trials));
    let at_delta = trials.iter().filter(|t| t.colors_used <= t.delta).count();
    println!(
        "runs using at most Δ colors: {at_delta} / {} (paper: every scale-free run)\n",
        trials.len()
    );
    let points: Vec<(usize, usize, u64)> =
        trials.iter().map(|t| (t.n, t.delta, t.compute_rounds)).collect();
    println!("{}", rounds_vs_delta_plot("Fig. 4 — computation rounds vs Δ (every trial)", &points));

    let rows: Vec<Vec<String>> = trials.iter().map(|t| t.csv_row()).collect();
    match csv::write_csv(&args.out, "fig4_scale_free.csv", &EDGE_HEADERS, &rows) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }
}
