//! **Conjecture 2 (§IV-A in-text)** — the color-count distribution over
//! the Figure-3 corpus: how many runs used Δ, Δ+1, Δ+2, more.
//!
//! Paper: "Δ+2 colors were used in only 2 of the 300 runs, and in no run
//! was the number of colors in excess of Δ+2."

use dima_experiments::report::conjecture2_tally;
use dima_experiments::run::run_edge_corpus;
use dima_experiments::table::Table;
use dima_experiments::{corpus, csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();
    let configs = corpus::fig3(args.trials_or(50));
    eprintln!("conjecture2: running the Figure-3 corpus (seed {})...", args.seed);
    let trials = run_edge_corpus(&configs, args.seed, args.engine());

    println!("== Conjecture 2: colors used relative to Δ (Erdős–Rényi corpus) ==\n");
    let (total, d0, d1, d2, more) = conjecture2_tally(&trials);
    let mut table = Table::new(["colors", "runs", "fraction"]);
    let frac = |c: usize| format!("{:.1}%", 100.0 * c as f64 / total.max(1) as f64);
    table
        .row(["<= Δ".to_string(), d0.to_string(), frac(d0)])
        .row(["Δ+1".to_string(), d1.to_string(), frac(d1)])
        .row(["Δ+2".to_string(), d2.to_string(), frac(d2)])
        .row(["> Δ+2".to_string(), more.to_string(), frac(more)]);
    println!("{}", table.render());
    println!("total runs: {total}");
    println!("paper reference: Δ+2 in 2/300 runs, never more than Δ+2.\n");
    if more > 0 {
        println!("NOTE: {more} run(s) exceeded Δ+2 — record in EXPERIMENTS.md.");
    }

    let rows = vec![
        vec!["<=delta".to_string(), d0.to_string()],
        vec!["delta_plus_1".to_string(), d1.to_string()],
        vec!["delta_plus_2".to_string(), d2.to_string()],
        vec!["more".to_string(), more.to_string()],
    ];
    match csv::write_csv(&args.out, "conjecture2.csv", &["bucket", "runs"], &rows) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }
}
