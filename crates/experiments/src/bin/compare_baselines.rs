//! **BASE** — DiMaEC against the baselines.
//!
//! Quality (colors) against the centralised yardsticks (greedy first-fit,
//! Misra–Gries Δ+1) and rounds/messages against the distributed
//! random-trial protocol, on the Figure-3 Erdős–Rényi corpus.

use dima_baselines::{
    greedy_edge_coloring, misra_gries_edge_coloring, random_trial_coloring, EdgeOrder,
};
use dima_core::verify::{count_colors, verify_edge_coloring};
use dima_core::ColoringConfig;
use dima_experiments::corpus::trial_seed;
use dima_experiments::table::{f2, Table};
use dima_experiments::{csv, Aggregate, CommonArgs};
use dima_graph::gen::GraphFamily;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args = CommonArgs::from_env();
    eprintln!("{}", dima_experiments::run::send_validation_note());
    let trials = args.trials_or(30);
    let families = [
        GraphFamily::ErdosRenyiAvgDegree { n: 200, avg_degree: 4.0 },
        GraphFamily::ErdosRenyiAvgDegree { n: 200, avg_degree: 8.0 },
        GraphFamily::ErdosRenyiAvgDegree { n: 400, avg_degree: 16.0 },
        GraphFamily::ScaleFree { n: 200, edges_per_vertex: 2, power: 1.0 },
    ];

    println!("== BASE: DiMaEC vs baselines (colors−Δ; rounds; messages) ==\n");
    let mut table = Table::new(["family", "algo", "avg colors−Δ", "avg rounds", "avg messages"]);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (ci, fam) in families.iter().enumerate() {
        // metric collectors: per algorithm (excess, rounds, messages)
        let mut dima = (Vec::new(), Vec::new(), Vec::new());
        let mut rt = (Vec::new(), Vec::new(), Vec::new());
        let mut greedy_x = Vec::new();
        let mut mg_x = Vec::new();
        for t in 0..trials {
            let seed = trial_seed(args.seed, ci, t);
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = fam.sample(&mut rng).expect("valid family");
            let delta = g.max_degree() as f64;
            let cfg =
                ColoringConfig { engine: args.engine(), ..ColoringConfig::for_measurement(seed) };

            let r = dima_core::color_edges(&g, &cfg).expect("dima failed");
            verify_edge_coloring(&g, &r.colors).expect("dima invalid");
            dima.0.push(r.colors_used as f64 - delta);
            dima.1.push(r.compute_rounds as f64);
            dima.2.push(r.stats.messages_sent as f64);

            let r = random_trial_coloring(&g, &cfg).expect("random-trial failed");
            verify_edge_coloring(&g, &r.colors).expect("random-trial invalid");
            rt.0.push(r.colors_used as f64 - delta);
            rt.1.push(r.compute_rounds as f64);
            rt.2.push(r.stats.messages_sent as f64);

            let colors = greedy_edge_coloring(&g, &EdgeOrder::Random { seed });
            verify_edge_coloring(&g, &colors).expect("greedy invalid");
            greedy_x.push(count_colors(&colors) as f64 - delta);

            let colors = misra_gries_edge_coloring(&g);
            verify_edge_coloring(&g, &colors).expect("misra-gries invalid");
            mg_x.push(count_colors(&colors) as f64 - delta);
        }
        let mut push = |algo: &str,
                        excess: &Aggregate,
                        rounds: Option<&Aggregate>,
                        msgs: Option<&Aggregate>| {
            let row = vec![
                fam.label(),
                algo.to_string(),
                f2(excess.mean),
                rounds.map_or("-".into(), |r| f2(r.mean)),
                msgs.map_or("-".into(), |m| f2(m.mean)),
            ];
            table.row(row.clone());
            rows.push(row);
        };
        push(
            "DiMaEC",
            &Aggregate::of(&dima.0),
            Some(&Aggregate::of(&dima.1)),
            Some(&Aggregate::of(&dima.2)),
        );
        push(
            "random-trial",
            &Aggregate::of(&rt.0),
            Some(&Aggregate::of(&rt.1)),
            Some(&Aggregate::of(&rt.2)),
        );
        push("greedy (seq)", &Aggregate::of(&greedy_x), None, None);
        push("Misra–Gries (seq)", &Aggregate::of(&mg_x), None, None);
    }
    println!("{}", table.render());
    println!(
        "expectations: DiMaEC's colors−Δ ≈ Misra–Gries (≤1) and beats random-trial;\n\
         random-trial converges in fewer rounds but uses far more colors/messages.\n"
    );
    match csv::write_csv(
        &args.out,
        "compare_baselines.csv",
        &["family", "algo", "avg_excess", "avg_rounds", "avg_messages"],
        &rows,
    ) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }
}
