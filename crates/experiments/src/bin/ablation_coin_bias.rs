//! **ABL1** — sweep of the `C`-state coin bias (probability of becoming
//! an invitor).
//!
//! The paper fixes a fair coin. Proposition 1's analysis suggests the
//! pairing probability `p(1−p)·…` peaks at `p = 1/2`; this ablation
//! verifies that rounds are minimised near 0.5 and quality (colors) is
//! insensitive to the bias.

use dima_core::ColoringConfig;
use dima_experiments::corpus::trial_seed;
use dima_experiments::table::{f2, Table};
use dima_experiments::{csv, Aggregate, CommonArgs};
use dima_graph::gen::GraphFamily;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args = CommonArgs::from_env();
    eprintln!("{}", dima_experiments::run::send_validation_note());
    let trials = args.trials_or(30);
    let family = GraphFamily::ErdosRenyiAvgDegree { n: 200, avg_degree: 8.0 };
    let biases = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

    println!("== ABL1: invite-probability sweep (Algorithm 1, {}) ==\n", family.label());
    let mut table = Table::new(["p(invite)", "avg rounds", "rounds stddev", "avg colors−Δ"]);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (ci, &p) in biases.iter().enumerate() {
        let mut rounds = Vec::new();
        let mut excess = Vec::new();
        for t in 0..trials {
            let seed = trial_seed(args.seed, ci, t);
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = family.sample(&mut rng).expect("valid family");
            let cfg = ColoringConfig {
                invite_probability: p,
                engine: args.engine(),
                ..ColoringConfig::for_measurement(seed)
            };
            let r = dima_core::color_edges(&g, &cfg).expect("run failed");
            dima_core::verify::verify_edge_coloring(&g, &r.colors).expect("invalid coloring");
            rounds.push(r.compute_rounds as f64);
            excess.push(r.colors_used as f64 - r.max_degree as f64);
        }
        let ra = Aggregate::of(&rounds);
        let ea = Aggregate::of(&excess);
        table.row([format!("{p:.1}"), f2(ra.mean), f2(ra.stddev), f2(ea.mean)]);
        rows.push(vec![format!("{p:.1}"), f2(ra.mean), f2(ra.stddev), f2(ea.mean)]);
    }
    println!("{}", table.render());
    println!("expectation: the rounds column is minimised near p = 0.5 (fair coin).\n");
    match csv::write_csv(
        &args.out,
        "ablation_coin_bias.csv",
        &["invite_probability", "avg_rounds", "stddev_rounds", "avg_excess_colors"],
        &rows,
    ) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }
}
