//! **ABL2** — lowest-index vs random-legal color proposals.
//!
//! The paper's line 1.11 proposes the *lowest* color legal for both
//! endpoints; Proposition 3's `2Δ−1` bound and Conjecture 2's Δ/Δ+1
//! typical case both hinge on it. This ablation replaces it with a
//! uniformly random legal color from the worst-case `2Δ−1` palette and
//! shows quality degrades while rounds stay put — i.e. the lowest-index
//! rule is what keeps DiMaEC near the optimum.

use dima_core::{ColorPolicy, ColoringConfig};
use dima_experiments::corpus::trial_seed;
use dima_experiments::table::{f2, Table};
use dima_experiments::{csv, Aggregate, CommonArgs};
use dima_graph::gen::GraphFamily;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args = CommonArgs::from_env();
    eprintln!("{}", dima_experiments::run::send_validation_note());
    let trials = args.trials_or(30);
    let families = [
        GraphFamily::ErdosRenyiAvgDegree { n: 200, avg_degree: 8.0 },
        GraphFamily::ErdosRenyiAvgDegree { n: 200, avg_degree: 16.0 },
        GraphFamily::SmallWorld { n: 64, k: 16, beta: 0.3 },
    ];
    let policies =
        [("lowest-index", ColorPolicy::LowestIndex), ("random-legal", ColorPolicy::RandomLegal)];

    println!("== ABL2: color-selection policy (Algorithm 1) ==\n");
    let mut table = Table::new(["family", "policy", "avg colors−Δ", "max colors−Δ", "avg rounds"]);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (ci, fam) in families.iter().enumerate() {
        for (name, policy) in &policies {
            let mut excess = Vec::new();
            let mut rounds = Vec::new();
            for t in 0..trials {
                let seed = trial_seed(args.seed, ci, t);
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = fam.sample(&mut rng).expect("valid family");
                let cfg = ColoringConfig {
                    color_policy: *policy,
                    engine: args.engine(),
                    ..ColoringConfig::for_measurement(seed)
                };
                let r = dima_core::color_edges(&g, &cfg).expect("run failed");
                dima_core::verify::verify_edge_coloring(&g, &r.colors).expect("invalid coloring");
                excess.push(r.colors_used as f64 - r.max_degree as f64);
                rounds.push(r.compute_rounds as f64);
            }
            let ea = Aggregate::of(&excess);
            let ra = Aggregate::of(&rounds);
            table.row([
                fam.label(),
                (*name).to_string(),
                f2(ea.mean),
                format!("{}", ea.max as i64),
                f2(ra.mean),
            ]);
            rows.push(vec![
                fam.label(),
                (*name).to_string(),
                f2(ea.mean),
                format!("{}", ea.max as i64),
                f2(ra.mean),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expectation: random-legal uses markedly more colors than lowest-index at\n\
         similar round counts — the paper's selection rule carries the quality.\n"
    );
    match csv::write_csv(
        &args.out,
        "ablation_color_policy.csv",
        &["family", "policy", "avg_excess", "max_excess", "avg_rounds"],
        &rows,
    ) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }
}
