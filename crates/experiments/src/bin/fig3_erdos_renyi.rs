//! **Figure 3** — Algorithm 1 (DiMaEC) on Erdős–Rényi graphs.
//!
//! Paper §IV-A: graphs with 200 or 400 nodes, average degree 4, 8 or 16,
//! 50 graphs per configuration (300 runs). Claims reproduced here:
//!
//! * rounds grow linearly with Δ and are unaffected by n (Fig. 3);
//! * colors are Δ or Δ+1 in the typical run, Δ+2 in ~2/300 runs, never
//!   more (Conjecture 2);
//! * the rounds/Δ ratio is ≈ 2 (§V).

use dima_experiments::report::{conjecture2_text, edge_summary_table, rounds_vs_delta_plot};
use dima_experiments::run::{run_edge_corpus, EDGE_HEADERS};
use dima_experiments::{corpus, csv, CommonArgs};

fn main() {
    let args = CommonArgs::from_env();
    let configs = corpus::fig3(args.trials_or(50));
    eprintln!(
        "fig3: running Algorithm 1 on {} Erdős–Rényi configurations (seed {})...",
        configs.len(),
        args.seed
    );
    let trials = run_edge_corpus(&configs, args.seed, args.engine());

    println!("== Figure 3: edge coloring of Erdős–Rényi graphs ==\n");
    println!("{}", edge_summary_table(&trials).render());
    println!("{}\n", conjecture2_text(&trials));
    let points: Vec<(usize, usize, u64)> =
        trials.iter().map(|t| (t.n, t.delta, t.compute_rounds)).collect();
    println!("{}", rounds_vs_delta_plot("Fig. 3 — computation rounds vs Δ (every trial)", &points));

    let rows: Vec<Vec<String>> = trials.iter().map(|t| t.csv_row()).collect();
    match csv::write_csv(&args.out, "fig3_erdos_renyi.csv", &EDGE_HEADERS, &rows) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }
}
