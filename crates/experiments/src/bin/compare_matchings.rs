//! DiMa's invitation automata vs Luby-style local-minima matching:
//! rounds, messages and matching size on identical workloads.
//!
//! Both are maximal-matching protocols in the same synchronous model, so
//! the numbers are directly comparable. The automata sends O(1) messages
//! per node per round; the Luby protocol sends one message per live
//! *edge* (owners) plus per-vertex minima.

use dima_baselines::luby_matching;
use dima_core::{maximal_matching, ColoringConfig};
use dima_experiments::corpus::trial_seed;
use dima_experiments::table::{f2, Table};
use dima_experiments::{csv, Aggregate, CommonArgs};
use dima_graph::gen::GraphFamily;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args = CommonArgs::from_env();
    eprintln!("{}", dima_experiments::run::send_validation_note());
    let trials = args.trials_or(30);
    let families = [
        GraphFamily::ErdosRenyiAvgDegree { n: 200, avg_degree: 4.0 },
        GraphFamily::ErdosRenyiAvgDegree { n: 200, avg_degree: 16.0 },
        GraphFamily::ScaleFree { n: 200, edges_per_vertex: 2, power: 1.0 },
        GraphFamily::SmallWorld { n: 128, k: 8, beta: 0.3 },
    ];

    println!("== matching: DiMa automata vs Luby local-minima ==\n");
    let mut table = Table::new(["family", "algo", "avg pairs", "avg rounds", "avg msgs"]);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (ci, fam) in families.iter().enumerate() {
        let mut dima = (Vec::new(), Vec::new(), Vec::new());
        let mut luby = (Vec::new(), Vec::new(), Vec::new());
        for t in 0..trials {
            let seed = trial_seed(args.seed, ci, t);
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = fam.sample(&mut rng).expect("valid family");
            let cfg =
                ColoringConfig { engine: args.engine(), ..ColoringConfig::for_measurement(seed) };

            let m = maximal_matching(&g, &cfg).expect("dima matching failed");
            dima_core::verify::verify_matching(&g, &m.pairs).expect("invalid matching");
            dima.0.push(m.pairs.len() as f64);
            dima.1.push(m.compute_rounds as f64);
            dima.2.push(m.stats.messages_sent as f64);

            let m = luby_matching(&g, &cfg).expect("luby matching failed");
            dima_core::verify::verify_matching(&g, &m.pairs).expect("invalid matching");
            luby.0.push(m.pairs.len() as f64);
            luby.1.push(m.compute_rounds as f64);
            luby.2.push(m.stats.messages_sent as f64);
        }
        for (name, data) in [("DiMa automata", &dima), ("Luby local-min", &luby)] {
            let row = vec![
                fam.label(),
                name.to_string(),
                f2(Aggregate::of(&data.0).mean),
                f2(Aggregate::of(&data.1).mean),
                f2(Aggregate::of(&data.2).mean),
            ];
            table.row(row.clone());
            rows.push(row);
        }
    }
    println!("{}", table.render());
    println!(
        "expectation: similar matching sizes; Luby converges in fewer rounds on\n\
         high-degree graphs, while DiMa sends fewer messages per round.\n"
    );
    match csv::write_csv(
        &args.out,
        "compare_matchings.csv",
        &["family", "algo", "avg_pairs", "avg_rounds", "avg_msgs"],
        &rows,
    ) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }
}
