//! Minimal CSV output (hand-rolled: the sanctioned dependency list has no
//! CSV crate, and the format we emit — numeric cells and simple labels —
//! only needs quoting for commas/quotes/newlines).

use std::io::Write;
use std::path::Path;

/// Quote a cell if it contains a comma, quote or newline.
fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Render rows as CSV text.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "csv row width mismatch");
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Write CSV to `dir/name`, creating `dir` if needed. Returns the path
/// written. I/O errors are reported, not panicked, so experiment binaries
/// can fall back to stdout-only output.
pub fn write_csv(
    dir: &Path,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(to_csv(headers, rows).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_cells_unquoted() {
        let s = to_csv(&["a", "b"], &[vec!["1".into(), "2.5".into()]]);
        assert_eq!(s, "a,b\n1,2.5\n");
    }

    #[test]
    fn special_cells_quoted() {
        let s = to_csv(&["label"], &[vec!["er(n=200,d=4)".into()], vec!["say \"hi\"".into()]]);
        assert!(s.contains("\"er(n=200,d=4)\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        to_csv(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("dima_csv_test");
        let p = write_csv(&dir, "t.csv", &["x"], &[vec!["1".into()]]).unwrap();
        let back = std::fs::read_to_string(&p).unwrap();
        assert_eq!(back, "x\n1\n");
        std::fs::remove_file(p).ok();
    }
}
