//! Corpus runners: generate → run → **verify** → record.

use dima_core::verify::{count_colors, verify_edge_coloring, verify_strong_coloring};
use dima_core::{
    color_edges, color_edges_churn, strong_color_digraph, ChurnPlan, ChurnSchedule, ColoringConfig,
    CoreError, Engine, Transport,
};
use dima_graph::gen::GraphFamily;
use dima_graph::Digraph;
use dima_sim::fault::FaultPlan;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::corpus::{trial_seed, Config};

/// One run-report line recording that measurement runs skip the engine's
/// per-delivery send validation (a debugging binary search the protocols
/// never trip; tests keep it on). Every corpus runner logs it once so no
/// report silently mixes checked and unchecked timings.
pub fn send_validation_note() -> &'static str {
    "send validation: off (measurement default via ColoringConfig::for_measurement; \
     tests keep the per-delivery check on)"
}

/// Verify `colors` as a proper edge coloring of `g`, then count the
/// distinct colors in use. The quality tournaments (`compare_baselines`,
/// `palette_sweep`) score every algorithm through this one counter so no
/// entry can win on an unverified or differently-counted palette.
/// Panics (naming `algo`) on an invalid coloring — a quality number for
/// a broken coloring would poison the comparison silently.
pub fn verified_colors(
    g: &dima_graph::Graph,
    colors: &[Option<dima_core::Color>],
    algo: &str,
) -> usize {
    verify_edge_coloring(g, colors)
        .unwrap_or_else(|e| panic!("{algo} produced an invalid coloring: {e}"));
    count_colors(colors)
}

/// One Algorithm-1 trial.
#[derive(Clone, Debug)]
pub struct EdgeTrial {
    /// Family label (e.g. `er(n=200,d=8)`).
    pub label: String,
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Maximum degree of the drawn graph.
    pub delta: usize,
    /// Distinct colors used.
    pub colors_used: usize,
    /// Computation rounds to completion.
    pub compute_rounds: u64,
    /// Communication rounds.
    pub comm_rounds: u64,
    /// Messages sent.
    pub messages: u64,
    /// Seed of this trial.
    pub seed: u64,
}

impl EdgeTrial {
    /// CSV row (matches [`EDGE_HEADERS`]).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            self.n.to_string(),
            self.m.to_string(),
            self.delta.to_string(),
            self.colors_used.to_string(),
            self.compute_rounds.to_string(),
            self.comm_rounds.to_string(),
            self.messages.to_string(),
            self.seed.to_string(),
        ]
    }
}

/// CSV headers for [`EdgeTrial::csv_row`].
pub const EDGE_HEADERS: [&str; 9] =
    ["family", "n", "m", "delta", "colors", "compute_rounds", "comm_rounds", "messages", "seed"];

/// Run Algorithm 1 over a corpus. Every coloring is verified; a
/// verification failure panics (it would falsify Proposition 2).
pub fn run_edge_corpus(configs: &[Config], base_seed: u64, engine: Engine) -> Vec<EdgeTrial> {
    eprintln!("{}", send_validation_note());
    let mut out = Vec::new();
    for (ci, cfg) in configs.iter().enumerate() {
        for t in 0..cfg.trials {
            let seed = trial_seed(base_seed, ci, t);
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = cfg.family.sample(&mut rng).expect("corpus parameters are valid");
            let run_cfg = ColoringConfig { engine, ..ColoringConfig::for_measurement(seed) };
            let r = color_edges(&g, &run_cfg).expect("run failed");
            assert!(r.endpoint_agreement, "endpoints disagree under reliable delivery");
            verify_edge_coloring(&g, &r.colors).expect("invalid coloring (Prop. 2 violated!)");
            out.push(EdgeTrial {
                label: cfg.family.label(),
                n: g.num_vertices(),
                m: g.num_edges(),
                delta: r.max_degree,
                colors_used: r.colors_used,
                compute_rounds: r.compute_rounds,
                comm_rounds: r.comm_rounds,
                messages: r.stats.messages_sent,
                seed,
            });
        }
    }
    out
}

/// One Algorithm-2 trial.
#[derive(Clone, Debug)]
pub struct StrongTrial {
    /// Family label of the underlying graph.
    pub label: String,
    /// Vertices.
    pub n: usize,
    /// Arcs of the symmetric digraph (2 × edges).
    pub arcs: usize,
    /// Maximum degree of the underlying graph (the paper's Δ).
    pub delta: usize,
    /// Distinct channels used.
    pub colors_used: usize,
    /// Computation rounds to completion.
    pub compute_rounds: u64,
    /// Communication rounds.
    pub comm_rounds: u64,
    /// Messages sent.
    pub messages: u64,
    /// Seed of this trial.
    pub seed: u64,
}

impl StrongTrial {
    /// CSV row (matches [`STRONG_HEADERS`]).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            self.n.to_string(),
            self.arcs.to_string(),
            self.delta.to_string(),
            self.colors_used.to_string(),
            self.compute_rounds.to_string(),
            self.comm_rounds.to_string(),
            self.messages.to_string(),
            self.seed.to_string(),
        ]
    }
}

/// CSV headers for [`StrongTrial::csv_row`].
pub const STRONG_HEADERS: [&str; 9] = [
    "family",
    "n",
    "arcs",
    "delta",
    "channels",
    "compute_rounds",
    "comm_rounds",
    "messages",
    "seed",
];

/// Run Algorithm 2 over a corpus of underlying graphs (symmetric closures
/// are taken per draw). Every coloring is verified against Definition 2.
pub fn run_strong_corpus(configs: &[Config], base_seed: u64, engine: Engine) -> Vec<StrongTrial> {
    eprintln!("{}", send_validation_note());
    let mut out = Vec::new();
    for (ci, cfg) in configs.iter().enumerate() {
        for t in 0..cfg.trials {
            let seed = trial_seed(base_seed, ci, t);
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = cfg.family.sample(&mut rng).expect("corpus parameters are valid");
            let d = Digraph::symmetric_closure(&g);
            let run_cfg = ColoringConfig { engine, ..ColoringConfig::for_measurement(seed) };
            let r = strong_color_digraph(&d, &run_cfg).expect("run failed");
            assert!(r.endpoint_agreement, "endpoints disagree under reliable delivery");
            verify_strong_coloring(&d, &r.colors)
                .expect("invalid strong coloring (Prop. 5 violated!)");
            out.push(StrongTrial {
                label: cfg.family.label(),
                n: g.num_vertices(),
                arcs: d.num_arcs(),
                delta: r.max_degree,
                colors_used: r.colors_used,
                compute_rounds: r.compute_rounds,
                comm_rounds: r.comm_rounds,
                messages: r.stats.messages_sent,
                seed,
            });
        }
    }
    out
}

/// How one fault-injected trial ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LossOutcome {
    /// Terminated, endpoints agree, coloring verified.
    Clean,
    /// Terminated but desynchronised (disagreement or invalid coloring).
    Corrupt,
    /// Hit the round budget (loss starved the protocol of invitations).
    Abort,
}

impl LossOutcome {
    /// CSV / table label.
    pub fn label(self) -> &'static str {
        match self {
            LossOutcome::Clean => "clean",
            LossOutcome::Corrupt => "corrupt",
            LossOutcome::Abort => "abort",
        }
    }
}

/// One Algorithm-1 trial under uniform message loss (the `loss_sweep`
/// binary): bare links reproduce the model-violation failure modes, the
/// reliable transport must stay clean and pay for it in overhead rounds.
#[derive(Clone, Debug)]
pub struct LossTrial {
    /// `"bare"` or `"reliable"`.
    pub transport: &'static str,
    /// Per-delivery drop probability.
    pub loss: f64,
    /// Maximum degree of the drawn graph.
    pub delta: usize,
    /// How the trial ended.
    pub outcome: LossOutcome,
    /// Communication rounds of the protocol itself (0 on abort).
    pub comm_rounds: u64,
    /// Engine rounds the ARQ layer spent on retransmission and
    /// synchronization (always 0 on bare links).
    pub overhead_rounds: u64,
    /// Deliveries suppressed by the fault plan.
    pub dropped: u64,
    /// Seed of this trial.
    pub seed: u64,
}

impl LossTrial {
    /// CSV row (matches [`LOSS_HEADERS`]).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.transport.to_string(),
            format!("{}", self.loss),
            self.delta.to_string(),
            self.outcome.label().to_string(),
            self.comm_rounds.to_string(),
            self.overhead_rounds.to_string(),
            self.dropped.to_string(),
            self.seed.to_string(),
        ]
    }
}

/// CSV headers for [`LossTrial::csv_row`].
pub const LOSS_HEADERS: [&str; 8] =
    ["transport", "loss", "delta", "outcome", "comm_rounds", "overhead_rounds", "dropped", "seed"];

/// Sweep Algorithm 1 over loss rates × {bare, reliable} transports on
/// Erdős–Rényi graphs. Unlike the paper-corpus runners nothing panics on
/// a bad outcome — failure *is* the measurement on bare links.
pub fn run_loss_sweep(
    family: GraphFamily,
    losses: &[f64],
    trials: usize,
    base_seed: u64,
    engine: Engine,
) -> Vec<LossTrial> {
    eprintln!("{}", send_validation_note());
    let mut out = Vec::new();
    for (li, &loss) in losses.iter().enumerate() {
        for (ti, transport) in [Transport::Bare, Transport::reliable()].into_iter().enumerate() {
            let label = if ti == 0 { "bare" } else { "reliable" };
            for t in 0..trials {
                // Same seed for both transports at one loss rate: the
                // pair faces the identical graph and fault pattern.
                let seed = trial_seed(base_seed, li, t);
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = family.sample(&mut rng).expect("corpus parameters are valid");
                let run_cfg = ColoringConfig {
                    engine,
                    faults: FaultPlan::uniform(loss),
                    transport,
                    max_compute_rounds: Some(500),
                    ..ColoringConfig::for_measurement(seed)
                };
                let (outcome, comm_rounds, overhead_rounds, dropped) =
                    match color_edges(&g, &run_cfg) {
                        Ok(r) => {
                            let clean =
                                r.endpoint_agreement && verify_edge_coloring(&g, &r.colors).is_ok();
                            let o = if clean { LossOutcome::Clean } else { LossOutcome::Corrupt };
                            (o, r.comm_rounds, r.transport_overhead_rounds, r.stats.dropped)
                        }
                        Err(CoreError::Sim(_)) => (LossOutcome::Abort, 0, 0, 0),
                        Err(e) => panic!("unexpected error: {e}"),
                    };
                out.push(LossTrial {
                    transport: label,
                    loss,
                    delta: g.max_degree(),
                    outcome,
                    comm_rounds,
                    overhead_rounds,
                    dropped,
                    seed,
                });
            }
        }
    }
    out
}

/// One Algorithm-1 trial under topology churn (the `churn_sweep`
/// binary): a seed-derived event schedule fires mid-run and the repair
/// layer reconverges without a restart.
#[derive(Clone, Debug)]
pub struct ChurnTrial {
    /// Expected events per batch as a fraction of the node count.
    pub rate: f64,
    /// Vertices of the initial graph.
    pub n: usize,
    /// Edges of the final (post-churn) graph.
    pub final_m: usize,
    /// Largest maximum degree the run ever saw (initial or post-batch).
    pub delta: usize,
    /// Distinct colors on the final graph.
    pub colors_used: usize,
    /// Communication rounds of the whole run, repairs included.
    pub comm_rounds: u64,
    /// Batches in the schedule.
    pub batches: usize,
    /// Batches whose repair quiesced before the next batch fired.
    pub converged: usize,
    /// Mean repair rounds over the converged batches (0 if none).
    pub mean_repair_rounds: f64,
    /// Edges dirtied across all batches, relative to the final edge
    /// count (can exceed 1 when churn keeps touching the same region).
    pub dirty_fraction: f64,
    /// Fraction of final-graph edges colored differently from a
    /// same-seed static run on the final graph — the stability price of
    /// repairing instead of restarting.
    pub recolored_fraction: f64,
    /// Seed of this trial.
    pub seed: u64,
}

impl ChurnTrial {
    /// CSV row (matches [`CHURN_HEADERS`]).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            format!("{}", self.rate),
            self.n.to_string(),
            self.final_m.to_string(),
            self.delta.to_string(),
            self.colors_used.to_string(),
            self.comm_rounds.to_string(),
            self.batches.to_string(),
            self.converged.to_string(),
            format!("{:.3}", self.mean_repair_rounds),
            format!("{:.4}", self.dirty_fraction),
            format!("{:.4}", self.recolored_fraction),
            self.seed.to_string(),
        ]
    }
}

/// CSV headers for [`ChurnTrial::csv_row`].
pub const CHURN_HEADERS: [&str; 12] = [
    "rate",
    "n",
    "final_m",
    "delta",
    "colors",
    "comm_rounds",
    "batches",
    "converged",
    "mean_repair_rounds",
    "dirty_fraction",
    "recolored_fraction",
    "seed",
];

/// Sweep Algorithm 1 over churn rates on Erdős–Rényi graphs. Every final
/// coloring is verified against the post-churn graph; a failure panics —
/// it would falsify the repair layer's convergence claim. The stability
/// baseline is a static same-seed run on the final graph.
pub fn run_churn_sweep(
    family: GraphFamily,
    rates: &[f64],
    trials: usize,
    base_seed: u64,
    engine: Engine,
) -> Vec<ChurnTrial> {
    eprintln!("{}", send_validation_note());
    let mut out = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        for t in 0..trials {
            let seed = trial_seed(base_seed, ri, t);
            let mut rng = SmallRng::seed_from_u64(seed);
            let g0 = family.sample(&mut rng).expect("corpus parameters are valid");
            let plan = ChurnPlan::new(seed ^ 0x5eed_c4a2, rate);
            let schedule = ChurnSchedule::generate(&g0, &plan);
            let cfg = ColoringConfig { engine, ..ColoringConfig::for_measurement(seed) };
            let r = color_edges_churn(&g0, &schedule, &cfg).expect("churn run terminates");
            verify_edge_coloring(&r.final_graph, &r.coloring.colors)
                .unwrap_or_else(|v| panic!("seed {seed}, rate {rate}: {v}"));
            let baseline = color_edges(&r.final_graph, &cfg).expect("static run terminates");
            let converged: Vec<u64> = r.batches.iter().filter_map(|b| b.repair_rounds).collect();
            let mean_repair_rounds = if converged.is_empty() {
                0.0
            } else {
                converged.iter().sum::<u64>() as f64 / converged.len() as f64
            };
            let final_m = r.final_graph.num_edges();
            let dirty: usize = r.batches.iter().map(|b| b.dirty_edges).sum();
            out.push(ChurnTrial {
                rate,
                n: g0.num_vertices(),
                final_m,
                delta: g0.max_degree().max(schedule.max_degree()),
                colors_used: r.coloring.colors_used,
                comm_rounds: r.coloring.comm_rounds,
                batches: r.batches.len(),
                converged: converged.len(),
                mean_repair_rounds,
                dirty_fraction: if final_m == 0 { 0.0 } else { dirty as f64 / final_m as f64 },
                recolored_fraction: r.recolored_fraction(&baseline.colors),
                seed,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dima_graph::gen::GraphFamily;

    #[test]
    fn edge_corpus_runs_and_verifies() {
        let configs = [Config {
            family: GraphFamily::ErdosRenyiAvgDegree { n: 40, avg_degree: 4.0 },
            trials: 2,
        }];
        let trials = run_edge_corpus(&configs, 7, Engine::Sequential);
        assert_eq!(trials.len(), 2);
        for t in &trials {
            assert_eq!(t.n, 40);
            assert!(t.delta > 0);
            assert!(t.colors_used < 2 * t.delta);
            assert_eq!(t.csv_row().len(), EDGE_HEADERS.len());
        }
        // Distinct seeds per trial.
        assert_ne!(trials[0].seed, trials[1].seed);
    }

    #[test]
    fn loss_sweep_runs_both_transports() {
        let fam = GraphFamily::ErdosRenyiAvgDegree { n: 24, avg_degree: 4.0 };
        let trials = run_loss_sweep(fam, &[0.0, 0.15], 2, 11, Engine::Sequential);
        assert_eq!(trials.len(), 2 * 2 * 2);
        for t in &trials {
            assert_eq!(t.csv_row().len(), LOSS_HEADERS.len());
            if t.loss == 0.0 {
                assert_eq!(t.outcome, LossOutcome::Clean, "{}@{}", t.transport, t.loss);
            }
            if t.transport == "reliable" {
                // The acceptance bar from the integration suite, in
                // miniature: the ARQ layer never lets loss show through.
                assert_eq!(t.outcome, LossOutcome::Clean, "seed {}", t.seed);
            }
            if t.transport == "bare" {
                assert_eq!(t.overhead_rounds, 0);
            }
        }
    }

    #[test]
    fn churn_sweep_runs_and_verifies() {
        let fam = GraphFamily::ErdosRenyiAvgDegree { n: 24, avg_degree: 4.0 };
        let trials = run_churn_sweep(fam, &[0.1, 0.3], 2, 5, Engine::Sequential);
        assert_eq!(trials.len(), 2 * 2);
        for t in &trials {
            assert_eq!(t.csv_row().len(), CHURN_HEADERS.len());
            assert_eq!(t.batches, 4, "ChurnPlan::new default cadence");
            assert!(t.converged <= t.batches);
            // The last batch always has the full round budget, so at
            // least one window converged (run_churn_sweep verified the
            // final coloring already, or it would have panicked).
            assert!(t.converged >= 1, "seed {}", t.seed);
            assert!(t.delta > 0);
            assert!((0.0..=1.0).contains(&t.recolored_fraction));
        }
    }

    #[test]
    fn strong_corpus_runs_and_verifies() {
        let configs = [Config {
            family: GraphFamily::ErdosRenyiAvgDegree { n: 30, avg_degree: 4.0 },
            trials: 2,
        }];
        let trials = run_strong_corpus(&configs, 7, Engine::Sequential);
        assert_eq!(trials.len(), 2);
        for t in &trials {
            assert_eq!(t.arcs % 2, 0);
            assert!(t.compute_rounds > 0);
            assert_eq!(t.csv_row().len(), STRONG_HEADERS.len());
        }
    }
}
