//! Corpus runners: generate → run → **verify** → record.

use dima_core::verify::{verify_edge_coloring, verify_strong_coloring};
use dima_core::{color_edges, strong_color_digraph, ColoringConfig, CoreError, Engine, Transport};
use dima_graph::gen::GraphFamily;
use dima_graph::Digraph;
use dima_sim::fault::FaultPlan;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::corpus::{trial_seed, Config};

/// One Algorithm-1 trial.
#[derive(Clone, Debug)]
pub struct EdgeTrial {
    /// Family label (e.g. `er(n=200,d=8)`).
    pub label: String,
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Maximum degree of the drawn graph.
    pub delta: usize,
    /// Distinct colors used.
    pub colors_used: usize,
    /// Computation rounds to completion.
    pub compute_rounds: u64,
    /// Communication rounds.
    pub comm_rounds: u64,
    /// Messages sent.
    pub messages: u64,
    /// Seed of this trial.
    pub seed: u64,
}

impl EdgeTrial {
    /// CSV row (matches [`EDGE_HEADERS`]).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            self.n.to_string(),
            self.m.to_string(),
            self.delta.to_string(),
            self.colors_used.to_string(),
            self.compute_rounds.to_string(),
            self.comm_rounds.to_string(),
            self.messages.to_string(),
            self.seed.to_string(),
        ]
    }
}

/// CSV headers for [`EdgeTrial::csv_row`].
pub const EDGE_HEADERS: [&str; 9] =
    ["family", "n", "m", "delta", "colors", "compute_rounds", "comm_rounds", "messages", "seed"];

/// Run Algorithm 1 over a corpus. Every coloring is verified; a
/// verification failure panics (it would falsify Proposition 2).
pub fn run_edge_corpus(configs: &[Config], base_seed: u64, engine: Engine) -> Vec<EdgeTrial> {
    let mut out = Vec::new();
    for (ci, cfg) in configs.iter().enumerate() {
        for t in 0..cfg.trials {
            let seed = trial_seed(base_seed, ci, t);
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = cfg.family.sample(&mut rng).expect("corpus parameters are valid");
            let run_cfg = ColoringConfig { engine, ..ColoringConfig::seeded(seed) };
            let r = color_edges(&g, &run_cfg).expect("run failed");
            assert!(r.endpoint_agreement, "endpoints disagree under reliable delivery");
            verify_edge_coloring(&g, &r.colors).expect("invalid coloring (Prop. 2 violated!)");
            out.push(EdgeTrial {
                label: cfg.family.label(),
                n: g.num_vertices(),
                m: g.num_edges(),
                delta: r.max_degree,
                colors_used: r.colors_used,
                compute_rounds: r.compute_rounds,
                comm_rounds: r.comm_rounds,
                messages: r.stats.messages_sent,
                seed,
            });
        }
    }
    out
}

/// One Algorithm-2 trial.
#[derive(Clone, Debug)]
pub struct StrongTrial {
    /// Family label of the underlying graph.
    pub label: String,
    /// Vertices.
    pub n: usize,
    /// Arcs of the symmetric digraph (2 × edges).
    pub arcs: usize,
    /// Maximum degree of the underlying graph (the paper's Δ).
    pub delta: usize,
    /// Distinct channels used.
    pub colors_used: usize,
    /// Computation rounds to completion.
    pub compute_rounds: u64,
    /// Communication rounds.
    pub comm_rounds: u64,
    /// Messages sent.
    pub messages: u64,
    /// Seed of this trial.
    pub seed: u64,
}

impl StrongTrial {
    /// CSV row (matches [`STRONG_HEADERS`]).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            self.n.to_string(),
            self.arcs.to_string(),
            self.delta.to_string(),
            self.colors_used.to_string(),
            self.compute_rounds.to_string(),
            self.comm_rounds.to_string(),
            self.messages.to_string(),
            self.seed.to_string(),
        ]
    }
}

/// CSV headers for [`StrongTrial::csv_row`].
pub const STRONG_HEADERS: [&str; 9] = [
    "family",
    "n",
    "arcs",
    "delta",
    "channels",
    "compute_rounds",
    "comm_rounds",
    "messages",
    "seed",
];

/// Run Algorithm 2 over a corpus of underlying graphs (symmetric closures
/// are taken per draw). Every coloring is verified against Definition 2.
pub fn run_strong_corpus(configs: &[Config], base_seed: u64, engine: Engine) -> Vec<StrongTrial> {
    let mut out = Vec::new();
    for (ci, cfg) in configs.iter().enumerate() {
        for t in 0..cfg.trials {
            let seed = trial_seed(base_seed, ci, t);
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = cfg.family.sample(&mut rng).expect("corpus parameters are valid");
            let d = Digraph::symmetric_closure(&g);
            let run_cfg = ColoringConfig { engine, ..ColoringConfig::seeded(seed) };
            let r = strong_color_digraph(&d, &run_cfg).expect("run failed");
            assert!(r.endpoint_agreement, "endpoints disagree under reliable delivery");
            verify_strong_coloring(&d, &r.colors)
                .expect("invalid strong coloring (Prop. 5 violated!)");
            out.push(StrongTrial {
                label: cfg.family.label(),
                n: g.num_vertices(),
                arcs: d.num_arcs(),
                delta: r.max_degree,
                colors_used: r.colors_used,
                compute_rounds: r.compute_rounds,
                comm_rounds: r.comm_rounds,
                messages: r.stats.messages_sent,
                seed,
            });
        }
    }
    out
}

/// How one fault-injected trial ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LossOutcome {
    /// Terminated, endpoints agree, coloring verified.
    Clean,
    /// Terminated but desynchronised (disagreement or invalid coloring).
    Corrupt,
    /// Hit the round budget (loss starved the protocol of invitations).
    Abort,
}

impl LossOutcome {
    /// CSV / table label.
    pub fn label(self) -> &'static str {
        match self {
            LossOutcome::Clean => "clean",
            LossOutcome::Corrupt => "corrupt",
            LossOutcome::Abort => "abort",
        }
    }
}

/// One Algorithm-1 trial under uniform message loss (the `loss_sweep`
/// binary): bare links reproduce the model-violation failure modes, the
/// reliable transport must stay clean and pay for it in overhead rounds.
#[derive(Clone, Debug)]
pub struct LossTrial {
    /// `"bare"` or `"reliable"`.
    pub transport: &'static str,
    /// Per-delivery drop probability.
    pub loss: f64,
    /// Maximum degree of the drawn graph.
    pub delta: usize,
    /// How the trial ended.
    pub outcome: LossOutcome,
    /// Communication rounds of the protocol itself (0 on abort).
    pub comm_rounds: u64,
    /// Engine rounds the ARQ layer spent on retransmission and
    /// synchronization (always 0 on bare links).
    pub overhead_rounds: u64,
    /// Deliveries suppressed by the fault plan.
    pub dropped: u64,
    /// Seed of this trial.
    pub seed: u64,
}

impl LossTrial {
    /// CSV row (matches [`LOSS_HEADERS`]).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.transport.to_string(),
            format!("{}", self.loss),
            self.delta.to_string(),
            self.outcome.label().to_string(),
            self.comm_rounds.to_string(),
            self.overhead_rounds.to_string(),
            self.dropped.to_string(),
            self.seed.to_string(),
        ]
    }
}

/// CSV headers for [`LossTrial::csv_row`].
pub const LOSS_HEADERS: [&str; 8] =
    ["transport", "loss", "delta", "outcome", "comm_rounds", "overhead_rounds", "dropped", "seed"];

/// Sweep Algorithm 1 over loss rates × {bare, reliable} transports on
/// Erdős–Rényi graphs. Unlike the paper-corpus runners nothing panics on
/// a bad outcome — failure *is* the measurement on bare links.
pub fn run_loss_sweep(
    family: GraphFamily,
    losses: &[f64],
    trials: usize,
    base_seed: u64,
    engine: Engine,
) -> Vec<LossTrial> {
    let mut out = Vec::new();
    for (li, &loss) in losses.iter().enumerate() {
        for (ti, transport) in [Transport::Bare, Transport::reliable()].into_iter().enumerate() {
            let label = if ti == 0 { "bare" } else { "reliable" };
            for t in 0..trials {
                // Same seed for both transports at one loss rate: the
                // pair faces the identical graph and fault pattern.
                let seed = trial_seed(base_seed, li, t);
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = family.sample(&mut rng).expect("corpus parameters are valid");
                let run_cfg = ColoringConfig {
                    engine,
                    faults: FaultPlan::uniform(loss),
                    transport,
                    max_compute_rounds: Some(500),
                    ..ColoringConfig::seeded(seed)
                };
                let (outcome, comm_rounds, overhead_rounds, dropped) =
                    match color_edges(&g, &run_cfg) {
                        Ok(r) => {
                            let clean =
                                r.endpoint_agreement && verify_edge_coloring(&g, &r.colors).is_ok();
                            let o = if clean { LossOutcome::Clean } else { LossOutcome::Corrupt };
                            (o, r.comm_rounds, r.transport_overhead_rounds, r.stats.dropped)
                        }
                        Err(CoreError::Sim(_)) => (LossOutcome::Abort, 0, 0, 0),
                        Err(e) => panic!("unexpected error: {e}"),
                    };
                out.push(LossTrial {
                    transport: label,
                    loss,
                    delta: g.max_degree(),
                    outcome,
                    comm_rounds,
                    overhead_rounds,
                    dropped,
                    seed,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dima_graph::gen::GraphFamily;

    #[test]
    fn edge_corpus_runs_and_verifies() {
        let configs = [Config {
            family: GraphFamily::ErdosRenyiAvgDegree { n: 40, avg_degree: 4.0 },
            trials: 2,
        }];
        let trials = run_edge_corpus(&configs, 7, Engine::Sequential);
        assert_eq!(trials.len(), 2);
        for t in &trials {
            assert_eq!(t.n, 40);
            assert!(t.delta > 0);
            assert!(t.colors_used < 2 * t.delta);
            assert_eq!(t.csv_row().len(), EDGE_HEADERS.len());
        }
        // Distinct seeds per trial.
        assert_ne!(trials[0].seed, trials[1].seed);
    }

    #[test]
    fn loss_sweep_runs_both_transports() {
        let fam = GraphFamily::ErdosRenyiAvgDegree { n: 24, avg_degree: 4.0 };
        let trials = run_loss_sweep(fam, &[0.0, 0.15], 2, 11, Engine::Sequential);
        assert_eq!(trials.len(), 2 * 2 * 2);
        for t in &trials {
            assert_eq!(t.csv_row().len(), LOSS_HEADERS.len());
            if t.loss == 0.0 {
                assert_eq!(t.outcome, LossOutcome::Clean, "{}@{}", t.transport, t.loss);
            }
            if t.transport == "reliable" {
                // The acceptance bar from the integration suite, in
                // miniature: the ARQ layer never lets loss show through.
                assert_eq!(t.outcome, LossOutcome::Clean, "seed {}", t.seed);
            }
            if t.transport == "bare" {
                assert_eq!(t.overhead_rounds, 0);
            }
        }
    }

    #[test]
    fn strong_corpus_runs_and_verifies() {
        let configs = [Config {
            family: GraphFamily::ErdosRenyiAvgDegree { n: 30, avg_degree: 4.0 },
            trials: 2,
        }];
        let trials = run_strong_corpus(&configs, 7, Engine::Sequential);
        assert_eq!(trials.len(), 2);
        for t in &trials {
            assert_eq!(t.arcs % 2, 0);
            assert!(t.compute_rounds > 0);
            assert_eq!(t.csv_row().len(), STRONG_HEADERS.len());
        }
    }
}
