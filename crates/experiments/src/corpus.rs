//! The paper's experimental corpora (§IV), parameterised exactly as
//! published, with deterministic seeds.

use dima_graph::gen::GraphFamily;

/// One experimental configuration: a graph family and how many graphs to
/// draw from it.
#[derive(Clone, Debug)]
pub struct Config {
    /// The random-graph family and its parameters.
    pub family: GraphFamily,
    /// Number of independent graphs (the paper's "50 graphs were
    /// generated for each size").
    pub trials: usize,
}

/// §IV-A / Fig. 3: "Erdős–Rényi graphs … 200 or 400 nodes, and an average
/// degree of either 4, 8, or 16. 50 graphs were generated for each size."
pub fn fig3(trials: usize) -> Vec<Config> {
    let mut out = Vec::new();
    for &n in &[200usize, 400] {
        for &d in &[4.0f64, 8.0, 16.0] {
            out.push(Config {
                family: GraphFamily::ErdosRenyiAvgDegree { n, avg_degree: d },
                trials,
            });
        }
    }
    out
}

/// §IV-B / Fig. 4: "300 scale-free graphs … 100 or 400 nodes, with
/// alterations in weighting to create increasingly disparate graphs."
/// We sweep the preferential-attachment power over three settings per
/// size (the "weighting"), 2 edges per new vertex.
pub fn fig4(trials: usize) -> Vec<Config> {
    let mut out = Vec::new();
    for &n in &[100usize, 400] {
        for &power in &[0.5f64, 1.0, 1.5] {
            out.push(Config {
                family: GraphFamily::ScaleFree { n, edges_per_vertex: 2, power },
                trials,
            });
        }
    }
    out
}

/// §IV-C / Fig. 5: "300 small world graphs … 100 each with 16, 64, and
/// 256 nodes, 50 sparse and 50 dense graphs per set." Sparse = ring
/// degree 4; dense = ring degree ~n/4 (scaled to keep k < n), rewiring
/// probability 0.3.
pub fn fig5(trials: usize) -> Vec<Config> {
    let mut out = Vec::new();
    for &n in &[16usize, 64, 256] {
        let sparse_k = 4;
        let dense_k = (n / 4).max(6) & !1; // even, scales with n
        for &k in &[sparse_k, dense_k] {
            out.push(Config { family: GraphFamily::SmallWorld { n, k, beta: 0.3 }, trials });
        }
    }
    out
}

/// §IV-D / Fig. 6: "50 Erdős–Rényi graphs of 200 and 400 nodes … with an
/// average degree of 4 and 8", turned into symmetric digraphs.
pub fn fig6(trials: usize) -> Vec<Config> {
    let mut out = Vec::new();
    for &n in &[200usize, 400] {
        for &d in &[4.0f64, 8.0] {
            out.push(Config {
                family: GraphFamily::ErdosRenyiAvgDegree { n, avg_degree: d },
                trials,
            });
        }
    }
    out
}

/// Per-trial seed: decorrelates (config, trial) pairs from a base seed.
pub fn trial_seed(base: u64, config_index: usize, trial: usize) -> u64 {
    // splitmix-style mixing, kept here so corpora are reproducible from
    // the published base seed alone.
    let mut x = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(config_index as u64 + 1))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(trial as u64 + 1));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_matches_paper_parameters() {
        let c = fig3(50);
        assert_eq!(c.len(), 6);
        assert_eq!(c.iter().map(|c| c.trials).sum::<usize>(), 300);
        assert!(matches!(
            c[0].family,
            GraphFamily::ErdosRenyiAvgDegree { n: 200, avg_degree } if avg_degree == 4.0
        ));
    }

    #[test]
    fn fig4_covers_both_sizes_and_powers() {
        let c = fig4(50);
        assert_eq!(c.len(), 6);
        let ns: Vec<usize> = c
            .iter()
            .filter_map(|c| match c.family {
                GraphFamily::ScaleFree { n, .. } => Some(n),
                _ => None,
            })
            .collect();
        assert!(ns.contains(&100) && ns.contains(&400));
    }

    #[test]
    fn fig5_has_sparse_and_dense_per_size() {
        let c = fig5(50);
        assert_eq!(c.len(), 6);
        for cfg in &c {
            if let GraphFamily::SmallWorld { n, k, .. } = cfg.family {
                assert!(k >= 4 && k < n, "k={k} n={n}");
                assert_eq!(k % 2, 0);
            } else {
                panic!("wrong family");
            }
        }
    }

    #[test]
    fn fig6_matches_paper_parameters() {
        let c = fig6(50);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn trial_seeds_decorrelate() {
        let a = trial_seed(1, 0, 0);
        let b = trial_seed(1, 0, 1);
        let c = trial_seed(1, 1, 0);
        let d = trial_seed(2, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, trial_seed(1, 0, 0));
    }
}
