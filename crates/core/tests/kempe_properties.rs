//! Property tests for the Kempe-chain palette-reduction pass.
//!
//! Three invariants hold for *any* proper input coloring, so they are
//! checked over randomized graphs and thresholds rather than curated
//! cases: the pass (1) preserves propriety, (2) never grows the
//! palette, and (3) is bit-identical across the sequential and parallel
//! engines. A fourth, non-property test drives the churn pipeline over
//! 50 seeds and checks the post-repair compaction actually re-compacts.

use dima_core::verify::{count_colors, verify_edge_coloring, verify_residual_edge_coloring};
use dima_core::{
    color_edges, color_edges_churn, reduce_palette, ChurnPlan, ChurnSchedule, ColorReduction,
    ColoringConfig, Engine, KempeConfig,
};
use dima_graph::gen::{erdos_renyi_avg_degree, random_regular};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A graph plus a proper coloring of it, produced by the main protocol.
fn colored_instance(
    seed: u64,
    n: usize,
    avg_degree: f64,
) -> (dima_graph::Graph, Vec<Option<dima_core::Color>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = erdos_renyi_avg_degree(n, avg_degree, &mut rng).expect("valid ER parameters");
    let r = color_edges(&g, &ColoringConfig::seeded(seed)).expect("base coloring");
    verify_edge_coloring(&g, &r.colors).expect("base coloring proper");
    (g, r.colors)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Propriety is preserved and the palette never grows, for any
    /// target threshold — including aggressive (Vizing-infeasible)
    /// ones, where the pass must degrade gracefully.
    #[test]
    fn preserves_propriety_and_never_grows(
        seed in 0u64..1 << 48,
        n in 20usize..120,
        tenths_degree in 20u32..80,
        target_slack in -3i64..4,
    ) {
        let (g, base) = colored_instance(seed, n, f64::from(tenths_degree) / 10.0);
        let before = count_colors(&base);
        let delta = g.max_degree() as i64;
        let target = u32::try_from((delta + 1 + target_slack).max(1)).unwrap();
        let kcfg = KempeConfig { target_colors: Some(target), ..KempeConfig::default() };
        let alive = vec![true; g.num_vertices()];
        let mut colors = base.clone();
        let report =
            reduce_palette(&g, &mut colors, &alive, &kcfg, &ColoringConfig::seeded(seed))
                .expect("reduction runs");
        verify_edge_coloring(&g, &colors).expect("reduction preserved propriety");
        prop_assert_eq!(report.colors_before, before);
        prop_assert_eq!(report.colors_after, count_colors(&colors));
        prop_assert!(report.colors_after <= report.colors_before);
        // Uncolored slots (there are none here) must stay untouched,
        // and every edge keeps *some* color: the pass recolors, it
        // never discards.
        prop_assert!(colors.iter().all(|c| c.is_some()));
    }

    /// The sequential and parallel engines produce bit-identical
    /// colorings and reports: the pass consults no RNG and orders all
    /// decisions by round and node id.
    #[test]
    fn engines_bit_identical(
        seed in 0u64..1 << 48,
        n in 20usize..100,
        // Degenerate single shard, multi-node shards, oversubscribed 8.
        threads in (0usize..4).prop_map(|i| [1usize, 2, 3, 8][i]),
    ) {
        let (g, base) = colored_instance(seed, n, 6.0);
        let delta = g.max_degree() as u32;
        // Force work: target one color below what the base run used, so
        // chains actually move (bounded below by Δ-feasibility).
        let target = count_colors(&base).saturating_sub(1).max(delta as usize) as u32;
        let kcfg = KempeConfig { target_colors: Some(target.max(1)), ..KempeConfig::default() };
        let alive = vec![true; g.num_vertices()];

        let mut seq = base.clone();
        let seq_report = reduce_palette(
            &g,
            &mut seq,
            &alive,
            &kcfg,
            &ColoringConfig { engine: Engine::Sequential, ..ColoringConfig::seeded(seed) },
        )
        .expect("sequential reduction");

        let mut par = base.clone();
        let par_report = reduce_palette(
            &g,
            &mut par,
            &alive,
            &kcfg,
            &ColoringConfig { engine: Engine::Parallel { threads }, ..ColoringConfig::seeded(seed) },
        )
        .expect("parallel reduction");

        prop_assert_eq!(seq, par);
        prop_assert_eq!(seq_report, par_report);
    }
}

/// 50-seed churn acceptance: with the Kempe post-pass configured, every
/// churn repair re-compacts the palette — the final coloring verifies on
/// the post-churn graph, never uses more colors than the bare repair,
/// and strictly improves every run the bare repair left above Δ+1.
#[test]
fn churn_repair_recompacts_over_fifty_seeds() {
    let mut improved = 0u32;
    let mut opportunities = 0u32;
    for seed in 0u64..50 {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE + seed);
        let g = random_regular(100, 9, &mut rng).expect("regular graph");
        let schedule = ChurnSchedule::generate(&g, &ChurnPlan::new(seed, 0.05));

        let bare = color_edges_churn(&g, &schedule, &ColoringConfig::seeded(seed))
            .expect("bare churn repair");
        verify_residual_edge_coloring(
            &bare.final_graph,
            &bare.coloring.colors,
            &bare.coloring.alive,
        )
        .expect("bare repair proper");

        let cfg = ColoringConfig {
            reduction: ColorReduction::Kempe(KempeConfig::default()),
            ..ColoringConfig::seeded(seed)
        };
        let kempe = color_edges_churn(&g, &schedule, &cfg).expect("kempe churn repair");
        verify_residual_edge_coloring(
            &kempe.final_graph,
            &kempe.coloring.colors,
            &kempe.coloring.alive,
        )
        .expect("compacted repair proper");

        let report = kempe.coloring.reduction.expect("reduction ran after repair");
        assert!(
            report.colors_after <= report.colors_before,
            "seed {seed}: compaction grew the palette"
        );
        assert!(
            kempe.coloring.colors_used <= bare.coloring.colors_used,
            "seed {seed}: kempe repair used more colors ({} > {})",
            kempe.coloring.colors_used,
            bare.coloring.colors_used
        );
        let delta = kempe.final_graph.max_degree();
        if bare.coloring.colors_used > delta + 1 {
            opportunities += 1;
            if kempe.coloring.colors_used < bare.coloring.colors_used {
                improved += 1;
            } else {
                panic!(
                    "seed {seed}: bare repair left {} colors (Δ = {delta}) and the \
                     post-pass failed to improve",
                    bare.coloring.colors_used
                );
            }
        }
    }
    assert_eq!(improved, opportunities);
    assert!(
        opportunities > 0,
        "corpus never exceeded Δ+1 — the acceptance check exercised nothing"
    );
}
