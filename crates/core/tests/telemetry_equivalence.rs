//! Telemetry must be a pure observer: attaching a tracer — no-op or
//! buffering — cannot change a single bit of any run's results. These
//! property tests pin that across the three protocols, both engines,
//! fault plans and churn schedules, and additionally pin the engine
//! independence of the event stream itself (a parallel run replays the
//! sequential emission order event for event).

use dima_core::{
    color_edges, color_edges_churn, color_edges_churn_traced, color_edges_traced, maximal_matching,
    maximal_matching_traced, strong_color_digraph, strong_color_digraph_traced, ChurnPlan,
    ChurnSchedule, ColoringConfig, Engine,
};
use dima_graph::gen::erdos_renyi_avg_degree;
use dima_graph::{Digraph, Graph};
use dima_sim::fault::FaultPlan;
use dima_sim::telemetry::{BufferTracer, NoopTracer};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, 1u64..200, 10u32..45).prop_map(|(n, gseed, avg10)| {
        let mut rng = SmallRng::seed_from_u64(gseed);
        let avg = (f64::from(avg10) / 10.0).min(0.8 * (n - 1) as f64);
        erdos_renyi_avg_degree(n, avg, &mut rng).unwrap()
    })
}

fn arb_cfg() -> impl Strategy<Value = ColoringConfig> {
    (1u64..500, prop_oneof![Just(1usize), Just(2), Just(3)], any::<bool>(), 0u8..3).prop_map(
        |(seed, threads, parallel, faults)| ColoringConfig {
            engine: if parallel { Engine::Parallel { threads } } else { Engine::Sequential },
            collect_round_stats: true,
            faults: match faults {
                0 => FaultPlan::reliable(),
                1 => FaultPlan::uniform(0.05),
                _ => FaultPlan { duplicate_probability: 0.05, ..FaultPlan::uniform(0.1) },
            },
            // Lossy runs may legitimately hit the budget; keep it small so
            // the error path is exercised quickly instead of spinning.
            max_compute_rounds: Some(300),
            ..ColoringConfig::seeded(seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Plain, no-op-traced and buffer-traced edge-coloring runs are
    /// bit-identical in results; the sequential and parallel engines
    /// emit identical event streams.
    #[test]
    fn edge_coloring_unchanged_by_tracing(g in arb_graph(), cfg in arb_cfg()) {
        let plain = color_edges(&g, &cfg);
        let nooped = color_edges_traced(&g, &cfg, &mut NoopTracer);
        let mut buf = BufferTracer::default();
        let buffered = color_edges_traced(&g, &cfg, &mut buf);
        match (plain, nooped, buffered) {
            (Ok(p), Ok(n), Ok(b)) => {
                prop_assert_eq!(&p.colors, &n.colors);
                prop_assert_eq!(&p.colors, &b.colors);
                prop_assert_eq!(&p.stats, &n.stats);
                prop_assert_eq!(&p.stats, &b.stats);
                prop_assert_eq!(p.comm_rounds, b.comm_rounds);
                prop_assert_eq!(p.endpoint_agreement, b.endpoint_agreement);
                // The event stream is engine-independent: rerun traced on
                // the other engine and compare event for event.
                let other = ColoringConfig {
                    engine: match cfg.engine {
                        Engine::Sequential => Engine::Parallel { threads: 2 },
                        Engine::Parallel { .. } => Engine::Sequential,
                    },
                    ..cfg.clone()
                };
                let mut buf2 = BufferTracer::default();
                let crossed = color_edges_traced(&g, &other, &mut buf2);
                prop_assert!(crossed.is_ok());
                prop_assert_eq!(buf.events, buf2.events);
            }
            // A lossy run may fail (budget exhausted); it must fail the
            // same way regardless of observation.
            (p, n, b) => {
                prop_assert!(p.is_err());
                prop_assert!(n.is_err());
                prop_assert!(b.is_err());
            }
        }
    }

    /// Same purity for the matching protocol.
    #[test]
    fn matching_unchanged_by_tracing(g in arb_graph(), cfg in arb_cfg()) {
        let plain = maximal_matching(&g, &cfg);
        let mut buf = BufferTracer::default();
        let traced = maximal_matching_traced(&g, &cfg, &mut buf);
        match (plain, traced) {
            (Ok(p), Ok(t)) => {
                prop_assert_eq!(&p.pairs, &t.pairs);
                prop_assert_eq!(&p.pair_round, &t.pair_round);
                prop_assert_eq!(&p.stats, &t.stats);
                prop_assert!(!buf.events.is_empty());
            }
            (p, t) => {
                prop_assert!(p.is_err());
                prop_assert!(t.is_err());
            }
        }
    }

    /// Same purity for Algorithm 2 on the symmetric closure.
    #[test]
    fn strong_coloring_unchanged_by_tracing(g in arb_graph(), cfg in arb_cfg()) {
        let d = Digraph::symmetric_closure(&g);
        let plain = strong_color_digraph(&d, &cfg);
        let mut buf = BufferTracer::default();
        let traced = strong_color_digraph_traced(&d, &cfg, &mut buf);
        match (plain, traced) {
            (Ok(p), Ok(t)) => {
                prop_assert_eq!(&p.colors, &t.colors);
                prop_assert_eq!(&p.stats, &t.stats);
            }
            (p, t) => {
                prop_assert!(p.is_err());
                prop_assert!(t.is_err());
            }
        }
    }

    /// Same purity under a churn schedule (bare transport, both engines),
    /// including engine independence of the churn-annotated stream.
    #[test]
    fn churn_run_unchanged_by_tracing(
        g in arb_graph(),
        seed in 1u64..300,
        churn_seed in 1u64..300,
        parallel in any::<bool>(),
    ) {
        let schedule = ChurnSchedule::generate(&g, &ChurnPlan::new(churn_seed, 0.25));
        let cfg = ColoringConfig {
            engine: if parallel { Engine::Parallel { threads: 3 } } else { Engine::Sequential },
            collect_round_stats: true,
            ..ColoringConfig::seeded(seed)
        };
        let plain = color_edges_churn(&g, &schedule, &cfg).unwrap();
        let mut buf = BufferTracer::default();
        let traced = color_edges_churn_traced(&g, &schedule, &cfg, &mut buf).unwrap();
        prop_assert_eq!(&plain.coloring.colors, &traced.coloring.colors);
        prop_assert_eq!(&plain.coloring.stats, &traced.coloring.stats);
        let other = ColoringConfig {
            engine: match cfg.engine {
                Engine::Sequential => Engine::Parallel { threads: 2 },
                Engine::Parallel { .. } => Engine::Sequential,
            },
            ..cfg
        };
        let mut buf2 = BufferTracer::default();
        color_edges_churn_traced(&g, &schedule, &other, &mut buf2).unwrap();
        prop_assert_eq!(buf.events, buf2.events);
    }
}
