//! The metrics plane shares the trace plane's determinism contract:
//! the merged counters, gauges and histograms of a parallel run are
//! bit-identical to the sequential engine's at every thread count, and
//! turning the plane on cannot change a single bit of any run's
//! results. These property tests pin both, across fault plans, churn
//! schedules, and the Kempe reduction pass (whose registry folds into
//! the run's).

use dima_core::{
    color_edges, color_edges_churn, maximal_matching, strong_color_digraph, ChurnPlan,
    ChurnSchedule, ColorReduction, ColoringConfig, Engine, KempeConfig,
};
use dima_graph::gen::erdos_renyi_avg_degree;
use dima_graph::{Digraph, Graph};
use dima_sim::fault::FaultPlan;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The thread counts the issue pins: degenerate pool, small pools, and
/// one wider than any test graph's shard count is likely to need.
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, 1u64..200, 10u32..45).prop_map(|(n, gseed, avg10)| {
        let mut rng = SmallRng::seed_from_u64(gseed);
        let avg = (f64::from(avg10) / 10.0).min(0.8 * (n - 1) as f64);
        erdos_renyi_avg_degree(n, avg, &mut rng).unwrap()
    })
}

fn arb_cfg() -> impl Strategy<Value = ColoringConfig> {
    (1u64..500, 0u8..3, any::<bool>()).prop_map(|(seed, faults, reduce)| ColoringConfig {
        collect_round_stats: true,
        collect_metrics: true,
        faults: match faults {
            0 => FaultPlan::reliable(),
            1 => FaultPlan::uniform(0.05),
            _ => FaultPlan { duplicate_probability: 0.05, ..FaultPlan::uniform(0.1) },
        },
        reduction: if reduce {
            ColorReduction::Kempe(KempeConfig::default())
        } else {
            ColorReduction::Off
        },
        // Lossy runs may legitimately hit the budget; keep it small so
        // the error path is exercised quickly instead of spinning.
        max_compute_rounds: Some(300),
        ..ColoringConfig::seeded(seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The merged registry of an edge-coloring run is bit-identical
    /// between the sequential engine and the worker pool at every
    /// pinned thread count, including under fault injection and with
    /// the Kempe reduction folded in.
    #[test]
    fn edge_coloring_metrics_engine_identical(g in arb_graph(), cfg in arb_cfg()) {
        let seq = color_edges(&g, &ColoringConfig { engine: Engine::Sequential, ..cfg.clone() });
        for threads in THREADS {
            let par = color_edges(
                &g,
                &ColoringConfig { engine: Engine::Parallel { threads }, ..cfg.clone() },
            );
            match (&seq, &par) {
                (Ok(s), Ok(p)) => {
                    prop_assert!(s.stats.metrics.is_some(), "metrics plane was on");
                    // RunStats derives Eq and carries the registry, so
                    // this compares every counter, gauge and histogram
                    // bucket alongside the rest of the stats.
                    prop_assert_eq!(&s.stats, &p.stats, "threads = {}", threads);
                    prop_assert_eq!(&s.colors, &p.colors);
                }
                // A lossy run may fail (budget exhausted); it must fail
                // identically on every engine.
                (s, p) => {
                    prop_assert!(s.is_err(), "threads = {}", threads);
                    prop_assert!(p.is_err(), "threads = {}", threads);
                }
            }
        }
    }

    /// Same for the matching and strong-coloring protocols (ARQ
    /// metrics included when the reliable transport engages under
    /// loss).
    #[test]
    fn matching_and_strong_metrics_engine_identical(g in arb_graph(), cfg in arb_cfg()) {
        let d = Digraph::symmetric_closure(&g);
        let seq_cfg = ColoringConfig { engine: Engine::Sequential, ..cfg.clone() };
        let seq_m = maximal_matching(&g, &seq_cfg);
        let seq_s = strong_color_digraph(&d, &seq_cfg);
        for threads in THREADS {
            let par_cfg = ColoringConfig { engine: Engine::Parallel { threads }, ..cfg.clone() };
            match (&seq_m, &maximal_matching(&g, &par_cfg)) {
                (Ok(s), Ok(p)) => prop_assert_eq!(&s.stats, &p.stats, "threads = {}", threads),
                (s, p) => {
                    prop_assert!(s.is_err());
                    prop_assert!(p.is_err());
                }
            }
            match (&seq_s, &strong_color_digraph(&d, &par_cfg)) {
                (Ok(s), Ok(p)) => prop_assert_eq!(&s.stats, &p.stats, "threads = {}", threads),
                (s, p) => {
                    prop_assert!(s.is_err());
                    prop_assert!(p.is_err());
                }
            }
        }
    }

    /// Same under a churn schedule: topology mutation mid-run must not
    /// break the shard-merge determinism of the counters.
    #[test]
    fn churn_metrics_engine_identical(
        g in arb_graph(),
        seed in 1u64..300,
        churn_seed in 1u64..300,
    ) {
        let schedule = ChurnSchedule::generate(&g, &ChurnPlan::new(churn_seed, 0.25));
        let base = ColoringConfig {
            collect_round_stats: true,
            collect_metrics: true,
            ..ColoringConfig::seeded(seed)
        };
        let seq = color_edges_churn(
            &g,
            &schedule,
            &ColoringConfig { engine: Engine::Sequential, ..base.clone() },
        )
        .unwrap();
        prop_assert!(seq.coloring.stats.metrics.is_some());
        for threads in THREADS {
            let par = color_edges_churn(
                &g,
                &schedule,
                &ColoringConfig { engine: Engine::Parallel { threads }, ..base.clone() },
            )
            .unwrap();
            prop_assert_eq!(&seq.coloring.stats, &par.coloring.stats, "threads = {}", threads);
            prop_assert_eq!(&seq.coloring.colors, &par.coloring.colors);
        }
    }

    /// The plane is a pure observer: collecting metrics changes nothing
    /// but the registry itself.
    #[test]
    fn metrics_collection_is_pure(g in arb_graph(), cfg in arb_cfg()) {
        let with = color_edges(&g, &cfg);
        let without = color_edges(&g, &ColoringConfig { collect_metrics: false, ..cfg.clone() });
        match (with, without) {
            (Ok(w), Ok(wo)) => {
                prop_assert!(w.stats.metrics.is_some());
                prop_assert!(wo.stats.metrics.is_none());
                let mut stripped = w.stats.clone();
                stripped.metrics = None;
                prop_assert_eq!(&stripped, &wo.stats);
                prop_assert_eq!(&w.colors, &wo.colors);
            }
            (w, wo) => {
                prop_assert!(w.is_err());
                prop_assert!(wo.is_err());
            }
        }
    }
}
