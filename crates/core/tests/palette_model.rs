//! Model-based property test: `ColorSet` against `BTreeSet<u32>` under
//! random operation sequences. The bitset is the hot data structure of
//! every protocol, so its correctness is checked exhaustively rather
//! than assumed.

use std::collections::BTreeSet;

use dima_core::palette::{Color, ColorSet};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(u32),
    Remove(u32),
    Contains(u32),
    FirstAbsent,
    Max,
    Len,
    AbsentBelow(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..300).prop_map(Op::Insert),
        (0u32..300).prop_map(Op::Remove),
        (0u32..300).prop_map(Op::Contains),
        Just(Op::FirstAbsent),
        Just(Op::Max),
        Just(Op::Len),
        (0u32..80).prop_map(Op::AbsentBelow),
    ]
}

fn model_first_absent(model: &BTreeSet<u32>) -> u32 {
    (0..).find(|c| !model.contains(c)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn colorset_matches_btreeset_model(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut set = ColorSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(c) => {
                    prop_assert_eq!(set.insert(Color(c)), model.insert(c));
                }
                Op::Remove(c) => {
                    prop_assert_eq!(set.remove(Color(c)), model.remove(&c));
                }
                Op::Contains(c) => {
                    prop_assert_eq!(set.contains(Color(c)), model.contains(&c));
                }
                Op::FirstAbsent => {
                    prop_assert_eq!(set.first_absent().0, model_first_absent(&model));
                }
                Op::Max => {
                    prop_assert_eq!(set.max().map(|c| c.0), model.last().copied());
                }
                Op::Len => {
                    prop_assert_eq!(set.len(), model.len());
                    prop_assert_eq!(set.is_empty(), model.is_empty());
                }
                Op::AbsentBelow(bound) => {
                    let got: Vec<u32> = set.absent_below(bound).map(|c| c.0).collect();
                    let expect: Vec<u32> =
                        (0..bound).filter(|c| !model.contains(c)).collect();
                    prop_assert_eq!(got, expect);
                }
            }
        }
        // Final sweep: iteration order and content.
        let got: Vec<u32> = set.iter().map(|c| c.0).collect();
        let expect: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(got, expect);
    }

    /// `first_absent_in_union` equals first-absent of the model union.
    #[test]
    fn union_first_absent_matches_model(
        a in proptest::collection::btree_set(0u32..200, 0..60),
        b in proptest::collection::btree_set(0u32..200, 0..60),
    ) {
        let sa: ColorSet = a.iter().map(|&c| Color(c)).collect();
        let sb: ColorSet = b.iter().map(|&c| Color(c)).collect();
        let union: BTreeSet<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(
            sa.first_absent_in_union(&sb).0,
            model_first_absent(&union)
        );
        // Symmetric.
        prop_assert_eq!(sa.first_absent_in_union(&sb), sb.first_absent_in_union(&sa));
    }
}
