//! Churn-run reporting: per-batch repair metrics assembled from the
//! engine's per-round statistics.
//!
//! The event side of the dynamic-topology subsystem lives in
//! [`dima_sim::churn`] (re-exported here for convenience); this module
//! holds what the *algorithms* add on top — the result types returned by
//! [`crate::edge_coloring::color_edges_churn`] and
//! [`crate::strong_coloring::strong_color_churn`], and the
//! [`BatchReport`]s that quantify each repair: how many edges the batch
//! dirtied and how many communication rounds the automata needed to
//! converge back to quiescence.

pub use dima_sim::churn::{
    ChurnBatch, ChurnEvent, ChurnKinds, ChurnPlan, ChurnSchedule, NeighborhoodChange,
};

use dima_graph::{Digraph, Graph};
use dima_sim::RunStats;

use crate::edge_coloring::EdgeColoringResult;
use crate::palette::Color;
use crate::strong_coloring::StrongColoringResult;

/// What one churn batch cost the protocol to repair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchReport {
    /// The communication round the batch fired at.
    pub round: u64,
    /// Primitive events in the batch.
    pub events: usize,
    /// Edges touched by the batch's net diff (see
    /// [`ChurnBatch::dirty_edges`]).
    pub dirty_edges: usize,
    /// Nodes that (re)joined.
    pub joins: usize,
    /// Nodes that left.
    pub leaves: usize,
    /// Communication rounds from the batch firing until every node was
    /// parked again (quiescence). `None` if the next batch fired before
    /// the repair converged — its cost is then folded into that batch's
    /// window.
    pub repair_rounds: Option<u64>,
}

/// Derive per-batch repair costs from the run's per-round breakdown.
///
/// Quiescence is detected as the first round in the batch's window (from
/// its firing round up to the next batch, or the end of the run) where no
/// node executed. The churn-aware engines always collect per-round stats,
/// so the window scan cannot miss.
pub(crate) fn batch_reports(schedule: &ChurnSchedule, stats: &RunStats) -> Vec<BatchReport> {
    let per_round = stats.per_round.as_deref().unwrap_or(&[]);
    let batches = schedule.batches();
    batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let window_end =
                batches.get(i + 1).map_or(stats.rounds, |next| next.round.min(stats.rounds));
            let quiesced = per_round
                .iter()
                .filter(|rs| rs.round >= b.round && rs.round < window_end)
                .find(|rs| rs.active == 0)
                .map(|rs| rs.round - b.round);
            // The run terminates the moment the last node parks, so the
            // final batch's quiescent round never appears in per_round:
            // the end of the run is its quiescence point.
            let repair_rounds = quiesced.or_else(|| {
                (i + 1 == batches.len() && stats.rounds >= b.round).then(|| stats.rounds - b.round)
            });
            BatchReport {
                round: b.round,
                events: b.events.len(),
                dirty_edges: b.dirty_edges(),
                joins: b.joins.len(),
                leaves: b.leaves.len(),
                repair_rounds,
            }
        })
        .collect()
}

/// The outcome of [`crate::edge_coloring::color_edges_churn`].
#[derive(Clone, Debug)]
pub struct ChurnColoringResult {
    /// The final coloring, assembled against [`Self::final_graph`]. Its
    /// round and message statistics cover the *whole* run, including all
    /// repairs.
    pub coloring: EdgeColoringResult,
    /// The topology after the last batch.
    pub final_graph: Graph,
    /// Per-batch repair metrics, in firing order.
    pub batches: Vec<BatchReport>,
}

impl ChurnColoringResult {
    /// Fraction of the final graph's edges whose color differs from
    /// `baseline` (a same-seed static run on the final graph, say) —
    /// the stability metric the churn experiments report. Edges uncolored
    /// on either side count as differing; an edgeless graph yields 0.
    pub fn recolored_fraction(&self, baseline: &[Option<Color>]) -> f64 {
        recolored_fraction(&self.coloring.colors, baseline)
    }
}

/// The outcome of [`crate::strong_coloring::strong_color_churn`].
#[derive(Clone, Debug)]
pub struct ChurnStrongResult {
    /// The final strong coloring, assembled against
    /// [`Self::final_digraph`].
    pub coloring: StrongColoringResult,
    /// The undirected topology after the last batch.
    pub final_graph: Graph,
    /// The symmetric closure of [`Self::final_graph`] the coloring is
    /// indexed by.
    pub final_digraph: Digraph,
    /// Per-batch repair metrics, in firing order.
    pub batches: Vec<BatchReport>,
}

/// Shared stability metric: fraction of positions that differ between two
/// colorings of equal length (`None` on either side counts as differing
/// unless both are `None`).
fn recolored_fraction(a: &[Option<Color>], b: &[Option<Color>]) -> f64 {
    assert_eq!(a.len(), b.len(), "colorings index the same edge set");
    if a.is_empty() {
        return 0.0;
    }
    let differing = a.iter().zip(b).filter(|(x, y)| x != y).count();
    differing as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dima_sim::RoundStats;

    fn schedule_with_rounds(g: &Graph, rounds: &[u64]) -> ChurnSchedule {
        // Build a real schedule, then check the helper against its
        // batches; rate 0 would be empty, so use a tiny links-only plan
        // with the requested cadence.
        assert!(!rounds.is_empty());
        let every = if rounds.len() > 1 { rounds[1] - rounds[0] } else { 3 };
        let plan = ChurnPlan {
            kinds: ChurnKinds::links_only(),
            batches: rounds.len(),
            first_round: rounds[0],
            every,
            ..ChurnPlan::new(1, 0.2)
        };
        let s = ChurnSchedule::generate(g, &plan);
        assert_eq!(s.batches().iter().map(|b| b.round).collect::<Vec<_>>(), rounds, "plan cadence");
        s
    }

    fn stats_with_active(active: &[usize]) -> RunStats {
        RunStats {
            rounds: active.len() as u64,
            per_round: Some(
                active
                    .iter()
                    .enumerate()
                    .map(|(r, &a)| RoundStats { round: r as u64, active: a, ..Default::default() })
                    .collect(),
            ),
            ..Default::default()
        }
    }

    #[test]
    fn repair_rounds_find_first_quiescent_round() {
        let g = dima_graph::gen::structured::cycle(12);
        let schedule = schedule_with_rounds(&g, &[3, 9]);
        // Rounds:      0  1  2  3  4  5  6  7  8  9 10 11
        let active = [12, 12, 12, 4, 4, 0, 0, 0, 0, 6, 6, 1];
        let reports = batch_reports(&schedule, &stats_with_active(&active));
        assert_eq!(reports.len(), 2);
        // Batch at round 3: first inactive round in [3, 9) is 5 → 2.
        assert_eq!(reports[0].repair_rounds, Some(2));
        // Final batch at round 9: run ends at round 12 → 3.
        assert_eq!(reports[1].repair_rounds, Some(3));
    }

    #[test]
    fn unconverged_window_reports_none() {
        let g = dima_graph::gen::structured::cycle(12);
        let schedule = schedule_with_rounds(&g, &[2, 5]);
        // No inactive round in [2, 5): the first repair never converged.
        let active = [12, 12, 3, 3, 3, 7, 7, 1];
        let reports = batch_reports(&schedule, &stats_with_active(&active));
        assert_eq!(reports[0].repair_rounds, None);
        assert_eq!(reports[1].repair_rounds, Some(3));
    }

    #[test]
    fn recolored_fraction_counts_mismatches() {
        let a = vec![Some(Color(0)), Some(Color(1)), None, Some(Color(2))];
        let b = vec![Some(Color(0)), Some(Color(2)), None, None];
        assert_eq!(recolored_fraction(&a, &b), 0.5);
        assert_eq!(recolored_fraction(&[], &[]), 0.0);
    }
}
