//! Distributed 2-approximate vertex cover — the framework's original
//! application.
//!
//! The paper's automata comes from the authors' 2011 vertex-cover work,
//! and its conclusion argues the framework generalises ("based on our
//! prior work on vertex cover..."). The classical reduction: take a
//! **maximal matching** and put both endpoints of every matched edge in
//! the cover. Maximality makes it a cover (an uncovered edge would join
//! two unmatched vertices); disjointness of the pairs makes it at most
//! twice any cover (every cover needs ≥ one endpoint per pair).
//!
//! Here the matching is discovered by the same distributed automata as
//! the colorings, so the cover is computed in `O(Δ)` rounds with one-hop
//! information, each node knowing locally whether it is in the cover.

use dima_graph::{Graph, VertexId};
use dima_sim::telemetry::{NoopTracer, Tracer};

use crate::config::ColoringConfig;
use crate::error::CoreError;
use crate::matching::{maximal_matching_traced, MatchingResult};

/// The outcome of a distributed vertex-cover run.
#[derive(Clone, Debug)]
pub struct VertexCoverResult {
    /// `in_cover[v]` — whether vertex `v` ended in the cover.
    pub in_cover: Vec<bool>,
    /// Number of cover vertices (always `2 × matching size`).
    pub size: usize,
    /// The matching that induced the cover.
    pub matching: MatchingResult,
}

impl VertexCoverResult {
    /// The cover as a vertex list.
    pub fn vertices(&self) -> Vec<VertexId> {
        self.in_cover
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }
}

/// Compute a 2-approximate vertex cover of `g` with the matching
/// automata.
pub fn vertex_cover(g: &Graph, cfg: &ColoringConfig) -> Result<VertexCoverResult, CoreError> {
    vertex_cover_traced(g, cfg, &mut NoopTracer)
}

/// [`vertex_cover`] with the underlying matching run's telemetry fed to
/// `tracer` (see [`dima_sim::telemetry`]).
pub fn vertex_cover_traced<T: Tracer + Sync>(
    g: &Graph,
    cfg: &ColoringConfig,
    tracer: &mut T,
) -> Result<VertexCoverResult, CoreError> {
    let matching = maximal_matching_traced(g, cfg, tracer)?;
    let mut in_cover = vec![false; g.num_vertices()];
    for &(u, v) in &matching.pairs {
        in_cover[u.index()] = true;
        in_cover[v.index()] = true;
    }
    let size = 2 * matching.pairs.len();
    Ok(VertexCoverResult { in_cover, size, matching })
}

/// Check that `in_cover` covers every edge of `g`.
pub fn verify_vertex_cover(g: &Graph, in_cover: &[bool]) -> Result<(), (VertexId, VertexId)> {
    assert_eq!(in_cover.len(), g.num_vertices(), "cover vector length mismatch");
    for (_, (u, v)) in g.edges() {
        if !in_cover[u.index()] && !in_cover[v.index()] {
            return Err((u, v));
        }
    }
    Ok(())
}

/// Exact minimum vertex-cover size by exhaustive search — test oracle
/// only, exponential in `n` (callers keep `n ≤ ~20`).
pub fn brute_force_min_cover(g: &Graph) -> usize {
    let n = g.num_vertices();
    assert!(n <= 24, "brute force limited to tiny graphs");
    let edges: Vec<(u32, u32)> = g.edges().map(|(_, (u, v))| (u.0, v.0)).collect();
    let mut best = n;
    'outer: for mask in 0u32..(1 << n) {
        let size = mask.count_ones() as usize;
        if size >= best {
            continue;
        }
        for &(u, v) in &edges {
            if mask & (1 << u) == 0 && mask & (1 << v) == 0 {
                continue 'outer;
            }
        }
        best = size;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dima_graph::gen::{erdos_renyi_avg_degree, structured};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check(g: &Graph, seed: u64) -> VertexCoverResult {
        let r = vertex_cover(g, &ColoringConfig::seeded(seed)).unwrap();
        verify_vertex_cover(g, &r.in_cover).unwrap();
        assert_eq!(r.size, r.vertices().len());
        assert_eq!(r.size, 2 * r.matching.pairs.len());
        r
    }

    #[test]
    fn covers_structured_families() {
        for g in [
            structured::complete(8),
            structured::cycle(9),
            structured::star(10),
            structured::grid(4, 5),
            structured::petersen(),
            structured::balanced_binary_tree(4),
        ] {
            check(&g, 3);
        }
    }

    #[test]
    fn two_approximation_against_brute_force() {
        let fixtures = [
            structured::path(7),
            structured::cycle(8),
            structured::star(9),
            structured::petersen(),
            structured::complete(6),
            structured::grid(3, 4),
        ];
        for g in fixtures {
            let opt = brute_force_min_cover(&g);
            for seed in 0..3 {
                let r = check(&g, seed);
                assert!(
                    r.size <= 2 * opt,
                    "cover {} exceeds 2×OPT = {} on {} vertices",
                    r.size,
                    2 * opt,
                    g.num_vertices()
                );
            }
        }
    }

    #[test]
    fn random_graphs_covered() {
        let mut rng = SmallRng::seed_from_u64(13);
        for seed in 0..4 {
            let g = erdos_renyi_avg_degree(80, 5.0, &mut rng).unwrap();
            check(&g, seed);
        }
    }

    #[test]
    fn star_cover_is_tiny() {
        // One matched pair covers the whole star (hub + one leaf);
        // OPT = 1, ratio exactly 2.
        let g = structured::star(12);
        let r = check(&g, 1);
        assert_eq!(r.size, 2);
        assert!(r.in_cover[0], "hub must be covered via its matched edge");
    }

    #[test]
    fn edgeless_graph_has_empty_cover() {
        let g = Graph::empty(5);
        let r = check(&g, 1);
        assert_eq!(r.size, 0);
        assert!(verify_vertex_cover(&g, &r.in_cover).is_ok());
    }

    #[test]
    fn verify_rejects_uncovered_edge() {
        let g = structured::path(3);
        let err = verify_vertex_cover(&g, &[false, false, true]).unwrap_err();
        assert_eq!(err, (VertexId(0), VertexId(1)));
    }

    #[test]
    fn brute_force_known_values() {
        assert_eq!(brute_force_min_cover(&structured::star(9)), 1);
        assert_eq!(brute_force_min_cover(&structured::path(5)), 2);
        assert_eq!(brute_force_min_cover(&structured::cycle(6)), 3);
        assert_eq!(brute_force_min_cover(&structured::complete(5)), 4);
        assert_eq!(brute_force_min_cover(&structured::petersen()), 6);
        assert_eq!(brute_force_min_cover(&Graph::empty(4)), 0);
    }
}
