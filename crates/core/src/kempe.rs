//! Kempe-chain palette reduction — a distributed post-processing pass
//! that compresses a proper edge coloring toward `Δ+1` colors.
//!
//! DiMaEC guarantees at most `2Δ−1` colors and typically lands on
//! `Δ+1`/`Δ+2`; the related work (Ghaffari–Kuhn–Maus–Uitto, Bernshteyn)
//! shows `Δ+1` is the real target. This module runs *after* the main
//! coloring quiesces (and after each churn-batch repair commits): every
//! node holding an edge colored at or above the target threshold `T`
//! (default `Δ+1`) tries to move that edge below `T`, either by a
//! **trivial recolor** (a color `< T` free at both endpoints) or by
//! flipping a **Kempe chain** — the `(a, b)`-alternating path starting
//! at the initiator, which in a proper coloring is a simple path whose
//! flip preserves propriety and frees `b` at the initiator for the
//! over-threshold edge.
//!
//! ## Chain protocol
//!
//! For an over-threshold edge `e = (u, v)` (owned by the lower-id
//! endpoint `u`, colored `c ≥ T`):
//!
//! 1. `u` picks `a` = its lowest absent color and `b` = a color absent
//!    at `v` (by one-hop knowledge) but present at `u`, both `< T`, and
//!    sends `PairLock` to `v`. `v` validates against its *actual* state
//!    and locks, guaranteeing `b` stays absent and `e` stays `c`.
//! 2. `u` probes along its `b`-edge. Each visited node locks
//!    (first-request-wins; a locked, busy, or pinned-conflicting node
//!    answers `ProbeResult{ok: false}`), records its predecessor and
//!    successor chain ports, and forwards the probe along its
//!    alternating continuation edge. A node with no continuation is the
//!    chain end and acknowledges; a probe reaching `v` itself is the
//!    Vizing hard case and is refused (the owner retries with the next
//!    `b` candidate).
//! 3. On the relayed acknowledgment, `u` flips its own chain edge,
//!    recolors `e := b`, and sends `Flip` down the chain (each node
//!    swaps its two chain-edge colors, unlocks, and re-broadcasts its
//!    used set) plus `Commit` to `v`.
//!
//! ## Termination and determinism
//!
//! Every committed operation strictly decreases the number of
//! over-threshold edges (trivial and chain commits move `e` below `T`
//! and recolor chain edges among `{a, b} ⊂ [0, T)`), refusals cost a
//! bounded number of rounds, and each edge gets a finite attempt budget
//! with deterministic candidate cycling. Only **structural** refusals
//! consume the budget (hard case, pinned edge, over-long chain, a
//! refusal from an idle responder); refusals born of contention or
//! message loss carry `busy: true` and are refunded, so crowded regions
//! keep searching instead of parking early — the initiation deadline
//! derived from the round budget bounds those free retries, and an
//! id-staggered backoff breaks up repeated collisions so the pass winds
//! down cleanly before the engine's hard limit.
//! The protocol never touches the per-node RNG and reacts only to its
//! own state and the id-sorted inbox, so the sequential and parallel
//! engines are bit-identical by construction (pinned by proptests).
//!
//! ## Faulted inputs
//!
//! Edges with a crashed endpoint or without an agreed color are
//! **pinned**: they count in used sets but are never recolored, never
//! traversed by probes, and never initiate. Crashed nodes participate
//! as stubs that refuse every request.

use dima_graph::{Graph, VertexId};
use dima_sim::fault::FaultPlan;
use dima_sim::telemetry::{MetricsRegistry, NoopTracer, PaletteAction, Tracer};
use dima_sim::{NodeSeed, NodeStatus, Protocol, RoundCtx, Topology};

use crate::config::{ColorReduction, ColoringConfig, KempeConfig, Transport};
use crate::error::CoreError;
use crate::palette::{Color, ColorSet};
use crate::runner::run_protocol_traced;

/// Rounds a request sender waits for a response before retransmitting.
/// Under the bare reliable transport a received request is answered in
/// exactly 2 rounds, so silence past this window proves the request
/// evaporated into a node that parked in the very round it was sent (the
/// engine's wake machinery only catches sends to *already*-parked
/// nodes). Retransmitting is therefore never a duplicate: the original
/// was provably not processed.
const RETRY_INTERVAL: u64 = 3;

/// Retransmissions before a request is abandoned (the recipient kept
/// parking in the send round — possible but diminishing; give up and
/// release whatever the operation holds).
const MAX_RETRIES: u32 = 8;

/// Rounds an in-flight operation can still need after initiations stop:
/// every hop of a `max_chain`-long probe may burn its full retry budget
/// before resolving, plus slack for the flip/commit tail.
fn wind_down_margin(max_chain: usize) -> u64 {
    RETRY_INTERVAL * u64::from(MAX_RETRIES + 2) * max_chain as u64 + 64
}

/// Messages of the reduction pass. All unicast; everything except the
/// [`KMsg::Hello`] used-set refresh is wake-class, so parked nodes
/// re-enter to serve locks, relays and flips.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum KMsg {
    /// Full used-color set of the sender (round 0, and re-broadcast
    /// after every local recolor).
    Hello { used: Vec<Color> },
    /// Trivial recolor request for the edge (sender, receiver): change
    /// its color from `from_color` to `to_color`.
    Recolor { from_color: Color, to_color: Color },
    /// Reply to [`KMsg::Recolor`]; on `ok` the receiver has already
    /// applied the change on its side. `busy` marks a refusal caused by
    /// the receiver being mid-operation (transient — the attempt is
    /// refunded) rather than by the move being impossible as asked.
    RecolorAck { ok: bool, busy: bool },
    /// Chain-partner lock request: the sender wants to recolor the edge
    /// (sender, receiver) from `cur` to `b` after a chain flip; the
    /// receiver must keep `b` absent and the edge at `cur` until
    /// [`KMsg::Commit`] or [`KMsg::Unlock`].
    PairLock { b: Color, cur: Color },
    /// Reply to [`KMsg::PairLock`]; `busy` as in [`KMsg::RecolorAck`].
    PairResp { ok: bool, busy: bool },
    /// The owner abandons a granted [`KMsg::PairLock`].
    Unlock,
    /// Chain probe, traveling along the `(a, b)`-alternating path. The
    /// receiver was reached via its `enter`-colored edge and continues
    /// via the other color; `len` edges are on the chain so far.
    Probe { partner: VertexId, a: Color, b: Color, enter: Color, len: u32 },
    /// Hop receipt for a forwarded [`KMsg::Probe`]: the sender locked
    /// and forwarded it. The previous hop stops retransmitting (see the
    /// module docs on the parked-recipient race).
    ProbeAck,
    /// Probe outcome, relayed back along the chain toward the owner
    /// (`len` = final chain length). `ok: false` releases the relaying
    /// nodes' locks; `busy` marks a refusal by a mid-operation hop
    /// (transient) as opposed to a structural dead end (hard case,
    /// pinned edge, over-long chain).
    ProbeResult { ok: bool, busy: bool, len: u32 },
    /// Flip order, traveling forward along the locked chain; each node
    /// swaps its two chain-edge colors and unlocks.
    Flip,
    /// The owner's edge toward the receiver (the locked partner) is now
    /// `color`; apply and unlock.
    Commit { color: Color },
}

/// What the owner side of a node is currently doing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum OwnerOp {
    Idle,
    /// Sent [`KMsg::Recolor`] for the edge at `port`, awaiting the ack.
    AwaitRecolor {
        port: usize,
        to_color: Color,
    },
    /// Sent [`KMsg::PairLock`] for the edge at `port`, awaiting grant.
    AwaitPair {
        port: usize,
        a: Color,
        b: Color,
    },
    /// Probe launched along `chain_port`; on success `port` becomes `b`.
    Probing {
        port: usize,
        chain_port: usize,
        a: Color,
        b: Color,
    },
}

/// Responder-side lock, protecting state another node's operation
/// depends on. Any lock refuses all incoming requests.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum LockState {
    Free,
    /// Locked by a [`KMsg::PairLock`] from the neighbor at `port`.
    Partner {
        port: usize,
    },
    /// On a probed chain: entered via `pred` (colored `enter`),
    /// continuing via `succ` (colored `other`), if any. `partner`, `a`,
    /// `b` and `len` restate the forwarded probe so the hop can
    /// retransmit it until acknowledged.
    Chain {
        pred: usize,
        succ: Option<usize>,
        enter: Color,
        other: Color,
        partner: VertexId,
        a: Color,
        b: Color,
        len: u32,
    },
}

/// Per-node seed data for the pass (derived from the global coloring).
#[derive(Clone, Debug, Default)]
struct KempeInit {
    /// `(neighbor, color, pinned)` per port, sorted by neighbor id.
    ports: Vec<(VertexId, Option<Color>, bool)>,
    /// `true` when the node crashed in the main run: it never initiates
    /// and refuses every request.
    stub: bool,
}

/// Per-vertex automata state of the reduction pass.
pub(crate) struct KempeNode {
    me: VertexId,
    neighbors: Vec<VertexId>,
    edge_color: Vec<Option<Color>>,
    /// Pinned ports count in used sets but are never recolored or
    /// traversed.
    pinned: Vec<bool>,
    used_self: ColorSet,
    /// Per-port knowledge of the neighbor's used set, refreshed by
    /// [`KMsg::Hello`] (replaced wholesale — colors can be released).
    nbr_used: Vec<ColorSet>,
    /// Candidate-pair attempts consumed per owned port.
    attempts: Vec<u32>,
    /// Color indices `>= threshold` are over-threshold.
    threshold: u32,
    max_chain: u32,
    max_attempts: u32,
    /// No new operations start after this round — the wind-down margin
    /// keeps in-flight chains inside the engine budget.
    deadline: u64,
    stub: bool,
    op: OwnerOp,
    lock: LockState,
    /// Owner-side retry gate (id-staggered backoff after a refusal).
    retry_after: u64,
    /// Refusals since the last committed operation — drives the
    /// exponential backoff window.
    consec_aborts: u32,
    /// Round the pending owner request was (re)sent.
    op_sent_at: u64,
    /// Retransmissions consumed by the pending owner request.
    op_retries: u32,
    /// The launched probe's first hop confirmed receipt.
    probe_acked: bool,
    /// Round this hop's forwarded probe was (re)sent.
    fwd_sent_at: u64,
    /// Retransmissions consumed by the forwarded probe.
    fwd_retries: u32,
    /// The next hop confirmed receipt of the forwarded probe.
    fwd_acked: bool,
    trivial_recolors: u64,
    chains_flipped: u64,
    max_chain_len: u32,
    aborts: u64,
    state: &'static str,
}

impl KempeNode {
    fn new(
        seed: &NodeSeed<'_>,
        init: &KempeInit,
        threshold: u32,
        kcfg: &KempeConfig,
        deadline: u64,
    ) -> Self {
        debug_assert_eq!(
            init.ports.len(),
            seed.neighbors.len(),
            "init table misaligned with topology"
        );
        let degree = seed.neighbors.len();
        let mut edge_color = Vec::with_capacity(degree);
        let mut pinned = Vec::with_capacity(degree);
        let mut used_self = ColorSet::with_capacity(threshold as usize + degree);
        for (p, &(w, c, pin)) in init.ports.iter().enumerate() {
            debug_assert_eq!(w, seed.neighbors[p]);
            edge_color.push(c);
            pinned.push(pin);
            if let Some(c) = c {
                used_self.insert(c);
            }
        }
        KempeNode {
            me: seed.node,
            neighbors: seed.neighbors.to_vec(),
            edge_color,
            pinned,
            used_self,
            nbr_used: (0..degree).map(|_| ColorSet::new()).collect(),
            attempts: vec![0; degree],
            threshold,
            max_chain: kcfg.max_chain.min(u32::MAX as usize) as u32,
            max_attempts: kcfg.max_attempts,
            deadline,
            stub: init.stub,
            op: OwnerOp::Idle,
            lock: LockState::Free,
            retry_after: 0,
            consec_aborts: 0,
            op_sent_at: 0,
            op_retries: 0,
            probe_acked: false,
            fwd_sent_at: 0,
            fwd_retries: 0,
            fwd_acked: false,
            trivial_recolors: 0,
            chains_flipped: 0,
            max_chain_len: 0,
            aborts: 0,
            state: "C",
        }
    }

    fn port_of(&self, v: VertexId) -> Option<usize> {
        self.neighbors.binary_search(&v).ok()
    }

    /// The color this node holds for its edge toward `v`.
    fn color_toward(&self, v: VertexId) -> Option<Color> {
        self.port_of(v).and_then(|p| self.edge_color[p])
    }

    /// The port whose edge is colored `c`, if any (unique: proper).
    fn port_colored(&self, c: Color) -> Option<usize> {
        self.edge_color.iter().position(|&ec| ec == Some(c))
    }

    fn rebuild_used(&mut self) {
        let mut used = ColorSet::with_capacity(self.threshold as usize + self.neighbors.len());
        for c in self.edge_color.iter().flatten() {
            used.insert(*c);
        }
        self.used_self = used;
    }

    fn hello(&self, ctx: &mut RoundCtx<'_, KMsg>) {
        ctx.broadcast(KMsg::Hello { used: self.used_self.iter().collect() });
    }

    /// Responder-side availability: nothing in flight on either role.
    fn free(&self) -> bool {
        !self.stub && self.op == OwnerOp::Idle && self.lock == LockState::Free
    }

    /// Give back the attempt consumed by an operation that failed for a
    /// transient reason (the peer was mid-operation, or the request was
    /// lost to the parked-recipient race): contention must not eat the
    /// structural search budget, or crowded regions park with
    /// over-threshold edges still reducible. Termination still holds —
    /// refunded retries are bounded by the initiation deadline.
    fn refund(&mut self, port: usize) {
        self.attempts[port] = self.attempts[port].saturating_sub(1);
    }

    /// Deterministic backoff after a refusal. The quiet window doubles
    /// with every *consecutive* refusal (capped at 512 rounds) and is
    /// phase-shifted by node id: two owners livelocked against each
    /// other — directly, or through intersecting chains that refuse each
    /// other `busy` forever — grow their windows together until the id
    /// stagger hands one of them a window long enough to run
    /// uncontended, whose outcome (a flip, or a structural refusal that
    /// consumes an attempt) breaks the orbit. Purely a function of local
    /// state, so the engines stay bit-identical.
    /// `busy` distinguishes transient contention (the peer was
    /// mid-operation) from structural refusals that consumed an
    /// attempt — the split feeds the `kempe/aborts_*` counters.
    fn backoff(&mut self, ctx: &mut RoundCtx<'_, KMsg>, busy: bool) {
        ctx.metric_inc(if busy { "kempe/aborts_busy" } else { "kempe/aborts_structural" }, 1);
        self.aborts += 1;
        self.consec_aborts += 1;
        if (2..=9).contains(&self.consec_aborts) {
            // The quiet window actually doubled (it is capped past 9).
            ctx.metric_inc("kempe/backoff_widenings", 1);
        }
        let window = 1u64 << u64::from(self.consec_aborts.min(9));
        let stagger = (self.aborts * 3 + u64::from(self.me.0)) % window;
        self.retry_after = ctx.round() + 2 + window + stagger;
    }

    /// An operation committed: clear the consecutive-refusal streak so
    /// the next collision starts from a short backoff again.
    fn op_succeeded(&mut self, round: u64) {
        self.consec_aborts = 0;
        self.retry_after = round + 1;
    }

    /// The best over-threshold edge this node owns and may still try:
    /// highest color first, then lowest port (deterministic).
    fn best_candidate(&self) -> Option<(usize, Color)> {
        let mut best: Option<(usize, Color)> = None;
        for (p, &c) in self.edge_color.iter().enumerate() {
            let Some(c) = c else { continue };
            if c.0 < self.threshold
                || self.pinned[p]
                || self.neighbors[p] < self.me
                || self.attempts[p] >= self.max_attempts
            {
                continue;
            }
            if best.is_none_or(|(_, bc)| c > bc) {
                best = Some((p, c));
            }
        }
        best
    }

    /// Start one operation for the edge at `port` (colored `cur`).
    fn initiate(&mut self, ctx: &mut RoundCtx<'_, KMsg>, port: usize, cur: Color) {
        let partner = self.neighbors[port];
        // Trivial: a color < T free at both ends (by one-hop knowledge;
        // the partner re-validates, so staleness only costs a retry).
        let x = self.used_self.first_absent_in_union(&self.nbr_used[port]);
        if x.0 < self.threshold {
            self.attempts[port] += 1;
            self.op = OwnerOp::AwaitRecolor { port, to_color: x };
            self.op_sent_at = ctx.round();
            self.op_retries = 0;
            ctx.send(partner, KMsg::Recolor { from_color: cur, to_color: x });
            return;
        }
        // Chain: `a` absent here, `b` absent there but present here
        // (if it were absent at both, the trivial branch would have
        // fired). Cycle through the `b` candidates across attempts.
        let a = self.used_self.first_absent();
        let cands: Vec<Color> = self.nbr_used[port]
            .absent_below(self.threshold)
            .filter(|&b| self.port_colored(b).is_some_and(|pb| !self.pinned[pb]))
            .collect();
        if a.0 >= self.threshold || cands.is_empty() {
            // No legal pair from here (e.g. every b-edge pinned): give
            // this edge up for good.
            self.attempts[port] = self.max_attempts;
            return;
        }
        let b = cands[self.attempts[port] as usize % cands.len()];
        self.attempts[port] += 1;
        self.op = OwnerOp::AwaitPair { port, a, b };
        self.op_sent_at = ctx.round();
        self.op_retries = 0;
        ctx.send(partner, KMsg::PairLock { b, cur });
    }

    fn on_recolor(&mut self, ctx: &mut RoundCtx<'_, KMsg>, from: VertexId, fc: Color, tc: Color) {
        let ok = self.free()
            && self.port_of(from).is_some_and(|p| {
                !self.pinned[p] && self.edge_color[p] == Some(fc) && !self.used_self.contains(tc)
            });
        if ok {
            let p = self.port_of(from).expect("validated above");
            self.edge_color[p] = Some(tc);
            self.rebuild_used();
            ctx.trace_palette(PaletteAction::Released, fc.0, from);
            ctx.trace_palette(PaletteAction::Committed, tc.0, from);
            self.hello(ctx);
        }
        ctx.send(from, KMsg::RecolorAck { ok, busy: !self.free() });
    }

    fn on_pair_lock(&mut self, ctx: &mut RoundCtx<'_, KMsg>, from: VertexId, b: Color, cur: Color) {
        let ok = self.free()
            && self.port_of(from).is_some_and(|p| {
                !self.pinned[p] && self.edge_color[p] == Some(cur) && !self.used_self.contains(b)
            });
        let busy = !ok && !self.free();
        if ok {
            let p = self.port_of(from).expect("validated above");
            self.lock = LockState::Partner { port: p };
        }
        ctx.send(from, KMsg::PairResp { ok, busy });
    }

    // A probe carries the full chain identity (owner pair, color pair,
    // entry color, length); splitting it into a struct would only move
    // the field list.
    #[allow(clippy::too_many_arguments)]
    fn on_probe(
        &mut self,
        ctx: &mut RoundCtx<'_, KMsg>,
        from: VertexId,
        partner: VertexId,
        a: Color,
        b: Color,
        enter: Color,
        len: u32,
    ) {
        let valid = self.free()
            && self
                .port_of(from)
                .is_some_and(|p| !self.pinned[p] && self.edge_color[p] == Some(enter));
        if !valid {
            ctx.send(from, KMsg::ProbeResult { ok: false, busy: !self.free(), len });
            return;
        }
        let pred = self.port_of(from).expect("validated above");
        let other = if enter == b { a } else { b };
        match self.port_colored(other) {
            None => {
                // Chain end: lock and acknowledge back toward the owner
                // (the result doubles as the hop receipt).
                self.lock = LockState::Chain { pred, succ: None, enter, other, partner, a, b, len };
                ctx.send(from, KMsg::ProbeResult { ok: true, busy: false, len });
            }
            Some(pc) => {
                if self.neighbors[pc] == partner || self.pinned[pc] || len >= self.max_chain {
                    // Vizing hard case (the chain would end at the
                    // partner), an unflippable pinned edge, or an
                    // over-long chain: refuse without locking. These are
                    // structural — the owner's attempt stands spent.
                    ctx.send(from, KMsg::ProbeResult { ok: false, busy: false, len });
                } else {
                    let len = len + 1;
                    self.lock =
                        LockState::Chain { pred, succ: Some(pc), enter, other, partner, a, b, len };
                    self.fwd_sent_at = ctx.round();
                    self.fwd_retries = 0;
                    self.fwd_acked = false;
                    ctx.send(from, KMsg::ProbeAck);
                    ctx.send(self.neighbors[pc], KMsg::Probe { partner, a, b, enter: other, len });
                }
            }
        }
    }

    fn on_probe_result(
        &mut self,
        ctx: &mut RoundCtx<'_, KMsg>,
        from: VertexId,
        ok: bool,
        busy: bool,
        len: u32,
    ) {
        if let OwnerOp::Probing { port, chain_port, a, b } = self.op {
            if self.neighbors[chain_port] == from {
                if ok {
                    // Commit: flip the owner's own chain edge (b -> a)
                    // and move the edge below the threshold.
                    let old = self.edge_color[port].expect("owned edge is colored");
                    self.edge_color[chain_port] = Some(a);
                    self.edge_color[port] = Some(b);
                    self.rebuild_used();
                    self.chains_flipped += 1;
                    self.max_chain_len = self.max_chain_len.max(len);
                    ctx.metric_inc("kempe/chains_flipped", 1);
                    ctx.metric_observe("kempe/chain_len", u64::from(len));
                    ctx.trace_palette(PaletteAction::Released, old.0, self.neighbors[port]);
                    ctx.trace_palette(PaletteAction::Committed, b.0, self.neighbors[port]);
                    self.hello(ctx);
                    ctx.send(self.neighbors[chain_port], KMsg::Flip);
                    ctx.send(self.neighbors[port], KMsg::Commit { color: b });
                    self.op = OwnerOp::Idle;
                    self.op_succeeded(ctx.round());
                } else {
                    if busy {
                        self.refund(port);
                    }
                    ctx.send(self.neighbors[port], KMsg::Unlock);
                    self.op = OwnerOp::Idle;
                    self.backoff(ctx, busy);
                }
                return;
            }
        }
        // Chain relay: pass the verdict back toward the owner; a
        // refusal releases this node's lock on the way through. Either
        // verdict proves the next hop saw the probe — stop
        // retransmitting it.
        if let LockState::Chain { pred, succ: Some(s), .. } = self.lock {
            if self.neighbors[s] == from {
                self.fwd_acked = true;
                ctx.send(self.neighbors[pred], KMsg::ProbeResult { ok, busy, len });
                if !ok {
                    self.lock = LockState::Free;
                }
            }
        }
    }

    fn on_probe_ack(&mut self, from: VertexId) {
        if let OwnerOp::Probing { chain_port, .. } = self.op {
            if self.neighbors[chain_port] == from {
                self.probe_acked = true;
            }
        }
        if let LockState::Chain { succ: Some(s), .. } = self.lock {
            if self.neighbors[s] == from {
                self.fwd_acked = true;
            }
        }
    }

    fn on_flip(&mut self, ctx: &mut RoundCtx<'_, KMsg>, from: VertexId) {
        if let LockState::Chain { pred, succ, enter, other, .. } = self.lock {
            if self.neighbors[pred] == from {
                self.edge_color[pred] = Some(other);
                if let Some(s) = succ {
                    self.edge_color[s] = Some(enter);
                    ctx.send(self.neighbors[s], KMsg::Flip);
                }
                self.rebuild_used();
                ctx.trace_palette(PaletteAction::Committed, other.0, from);
                self.hello(ctx);
                self.lock = LockState::Free;
            }
        }
    }

    fn on_commit(&mut self, ctx: &mut RoundCtx<'_, KMsg>, from: VertexId, color: Color) {
        if let LockState::Partner { port } = self.lock {
            if self.neighbors[port] == from {
                let old = self.edge_color[port];
                self.edge_color[port] = Some(color);
                self.rebuild_used();
                if let Some(old) = old {
                    ctx.trace_palette(PaletteAction::Released, old.0, from);
                }
                ctx.trace_palette(PaletteAction::Committed, color.0, from);
                self.hello(ctx);
                self.lock = LockState::Free;
            }
        }
    }

    fn on_recolor_ack(
        &mut self,
        ctx: &mut RoundCtx<'_, KMsg>,
        from: VertexId,
        ok: bool,
        busy: bool,
    ) {
        if let OwnerOp::AwaitRecolor { port, to_color } = self.op {
            if self.neighbors[port] == from {
                if ok {
                    let old = self.edge_color[port].expect("owned edge is colored");
                    self.edge_color[port] = Some(to_color);
                    self.rebuild_used();
                    self.trivial_recolors += 1;
                    ctx.metric_inc("kempe/trivial_recolors", 1);
                    ctx.trace_palette(PaletteAction::Released, old.0, from);
                    ctx.trace_palette(PaletteAction::Committed, to_color.0, from);
                    self.hello(ctx);
                    self.op = OwnerOp::Idle;
                    self.op_succeeded(ctx.round());
                } else {
                    if busy {
                        self.refund(port);
                    }
                    self.op = OwnerOp::Idle;
                    self.backoff(ctx, busy);
                }
            }
        }
    }

    fn on_pair_resp(&mut self, ctx: &mut RoundCtx<'_, KMsg>, from: VertexId, ok: bool, busy: bool) {
        if let OwnerOp::AwaitPair { port, a, b } = self.op {
            if self.neighbors[port] == from {
                if !ok {
                    if busy {
                        self.refund(port);
                    }
                    self.op = OwnerOp::Idle;
                    self.backoff(ctx, busy);
                    return;
                }
                match self.port_colored(b).filter(|&pb| !self.pinned[pb]) {
                    Some(pb) => {
                        self.op = OwnerOp::Probing { port, chain_port: pb, a, b };
                        self.op_sent_at = ctx.round();
                        self.op_retries = 0;
                        self.probe_acked = false;
                        ctx.send(
                            self.neighbors[pb],
                            KMsg::Probe { partner: self.neighbors[port], a, b, enter: b, len: 1 },
                        );
                    }
                    None => {
                        // The b-edge vanished between selection and
                        // grant (it cannot here — the owner is busy the
                        // whole time — but degrade instead of panicking).
                        ctx.send(self.neighbors[port], KMsg::Unlock);
                        self.op = OwnerOp::Idle;
                        self.backoff(ctx, false);
                    }
                }
            }
        }
    }
}

impl Protocol for KempeNode {
    type Msg = KMsg;

    fn kind_of(msg: &KMsg) -> &'static str {
        match msg {
            KMsg::Hello { .. } => "hello",
            KMsg::Recolor { .. } => "recolor",
            KMsg::RecolorAck { .. } => "recolor-ack",
            KMsg::PairLock { .. } => "pair-lock",
            KMsg::PairResp { .. } => "pair-resp",
            KMsg::Unlock => "unlock",
            KMsg::Probe { .. } => "probe",
            KMsg::ProbeAck => "probe-ack",
            KMsg::ProbeResult { .. } => "probe-result",
            KMsg::Flip => "flip",
            KMsg::Commit { .. } => "commit",
        }
    }

    fn wakes(msg: &KMsg) -> bool {
        // Every operational message must reach parked nodes (locks,
        // relays, flips); the Hello refresh is advisory knowledge only —
        // responders validate against their actual state.
        !matches!(msg, KMsg::Hello { .. })
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, KMsg>) -> NodeStatus {
        if self.stub {
            // Crashed in the main run: refuse everything, stay parked.
            let requests: Vec<(VertexId, KMsg)> =
                ctx.inbox().iter().map(|e| (e.from, e.msg().clone())).collect();
            for (from, msg) in requests {
                match msg {
                    KMsg::Recolor { .. } => {
                        ctx.send(from, KMsg::RecolorAck { ok: false, busy: false })
                    }
                    KMsg::PairLock { .. } => {
                        ctx.send(from, KMsg::PairResp { ok: false, busy: false })
                    }
                    KMsg::Probe { len, .. } => {
                        ctx.send(from, KMsg::ProbeResult { ok: false, busy: false, len })
                    }
                    _ => {}
                }
            }
            self.state = "D";
            return NodeStatus::Done;
        }
        if ctx.round() == 0 {
            // Prime every neighbor's knowledge before anyone initiates.
            self.hello(ctx);
            self.state = "C";
            return NodeStatus::Active;
        }
        let inbox: Vec<(VertexId, KMsg)> =
            ctx.inbox().iter().map(|e| (e.from, e.msg().clone())).collect();
        // Knowledge refreshes first, then operations in sender order
        // (lowest id wins contended locks — deterministic).
        for (from, msg) in &inbox {
            if let KMsg::Hello { used } = msg {
                if let Some(p) = self.port_of(*from) {
                    self.nbr_used[p] = used.iter().copied().collect();
                }
            }
        }
        for (from, msg) in inbox {
            match msg {
                KMsg::Hello { .. } => {}
                KMsg::Recolor { from_color, to_color } => {
                    self.on_recolor(ctx, from, from_color, to_color)
                }
                KMsg::RecolorAck { ok, busy } => self.on_recolor_ack(ctx, from, ok, busy),
                KMsg::PairLock { b, cur } => self.on_pair_lock(ctx, from, b, cur),
                KMsg::PairResp { ok, busy } => self.on_pair_resp(ctx, from, ok, busy),
                KMsg::Unlock => {
                    if let LockState::Partner { port } = self.lock {
                        if self.neighbors[port] == from {
                            self.lock = LockState::Free;
                        }
                    }
                }
                KMsg::Probe { partner, a, b, enter, len } => {
                    self.on_probe(ctx, from, partner, a, b, enter, len)
                }
                KMsg::ProbeAck => self.on_probe_ack(from),
                KMsg::ProbeResult { ok, busy, len } => {
                    self.on_probe_result(ctx, from, ok, busy, len)
                }
                KMsg::Flip => self.on_flip(ctx, from),
                KMsg::Commit { color } => self.on_commit(ctx, from, color),
            }
        }
        // Retransmit unanswered requests (see RETRY_INTERVAL: silence
        // proves the request evaporated into a node parking in the send
        // round, so a re-send can never duplicate). Past the budget,
        // abandon the operation and release whatever it holds — for
        // never-acknowledged requests the peer provably holds nothing.
        let round = ctx.round();
        if round.saturating_sub(self.op_sent_at) >= RETRY_INTERVAL {
            match self.op {
                OwnerOp::AwaitRecolor { port, to_color } => {
                    if self.op_retries >= MAX_RETRIES {
                        self.refund(port);
                        self.op = OwnerOp::Idle;
                        self.backoff(ctx, true);
                    } else if let Some(cur) = self.edge_color[port] {
                        self.op_retries += 1;
                        self.op_sent_at = round;
                        ctx.send(self.neighbors[port], KMsg::Recolor { from_color: cur, to_color });
                    }
                }
                OwnerOp::AwaitPair { port, b, .. } => {
                    if self.op_retries >= MAX_RETRIES {
                        self.refund(port);
                        self.op = OwnerOp::Idle;
                        self.backoff(ctx, true);
                    } else if let Some(cur) = self.edge_color[port] {
                        self.op_retries += 1;
                        self.op_sent_at = round;
                        ctx.send(self.neighbors[port], KMsg::PairLock { b, cur });
                    }
                }
                OwnerOp::Probing { port, chain_port, a, b } if !self.probe_acked => {
                    if self.op_retries >= MAX_RETRIES {
                        self.refund(port);
                        ctx.send(self.neighbors[port], KMsg::Unlock);
                        self.op = OwnerOp::Idle;
                        self.backoff(ctx, true);
                    } else {
                        self.op_retries += 1;
                        self.op_sent_at = round;
                        ctx.send(
                            self.neighbors[chain_port],
                            KMsg::Probe { partner: self.neighbors[port], a, b, enter: b, len: 1 },
                        );
                    }
                }
                _ => {}
            }
        }
        if let LockState::Chain { pred, succ: Some(pc), other, partner, a, b, len, .. } = self.lock
        {
            if !self.fwd_acked && round.saturating_sub(self.fwd_sent_at) >= RETRY_INTERVAL {
                if self.fwd_retries >= MAX_RETRIES {
                    ctx.send(
                        self.neighbors[pred],
                        KMsg::ProbeResult { ok: false, busy: true, len },
                    );
                    self.lock = LockState::Free;
                } else {
                    self.fwd_retries += 1;
                    self.fwd_sent_at = round;
                    ctx.send(self.neighbors[pc], KMsg::Probe { partner, a, b, enter: other, len });
                }
            }
        }
        // Initiate at most one operation when idle, unlocked, past the
        // backoff gate and before the wind-down deadline.
        if self.free() && ctx.round() >= self.retry_after && ctx.round() <= self.deadline {
            if let Some((port, cur)) = self.best_candidate() {
                self.initiate(ctx, port, cur);
            }
        }
        if self.op != OwnerOp::Idle {
            self.state = "O";
            ctx.trace_state("O", "owner-op");
            NodeStatus::Active
        } else if self.lock != LockState::Free {
            self.state = "L";
            ctx.trace_state("L", "locked");
            NodeStatus::Active
        } else if self.best_candidate().is_some() && ctx.round() <= self.deadline {
            self.state = "C";
            NodeStatus::Active
        } else {
            self.state = "D";
            ctx.trace_state("D", "reduced");
            NodeStatus::Done
        }
    }
}

impl dima_sim::trace::StateLabel for KempeNode {
    fn state_label(&self) -> &'static str {
        self.state
    }
}

/// What the reduction pass did to the palette.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KempeReport {
    /// Distinct colors before the pass.
    pub colors_before: usize,
    /// Distinct colors after the pass.
    pub colors_after: usize,
    /// Largest color index before, if any edge was colored.
    pub max_color_before: Option<Color>,
    /// Largest color index after.
    pub max_color_after: Option<Color>,
    /// The threshold the pass compressed toward (`Δ+1` by default).
    pub target_colors: u32,
    /// Communication rounds the pass ran for (0 when nothing was over
    /// the threshold and the pass was skipped).
    pub comm_rounds: u64,
    /// Messages the pass sent.
    pub messages_sent: u64,
    /// Over-threshold edges fixed by a single-edge recolor.
    pub trivial_recolors: u64,
    /// Over-threshold edges fixed by a chain flip.
    pub chains_flipped: u64,
    /// Longest chain flipped (edges).
    pub max_chain_len: u32,
    /// Refused operations (lock conflicts, hard cases, stale knowledge).
    pub aborts: u64,
}

impl KempeReport {
    /// Colors retired by the pass.
    pub fn colors_saved(&self) -> usize {
        self.colors_before.saturating_sub(self.colors_after)
    }
}

/// [`reduce_palette_traced`] without telemetry.
pub fn reduce_palette(
    g: &Graph,
    colors: &mut [Option<Color>],
    alive: &[bool],
    kcfg: &KempeConfig,
    base: &ColoringConfig,
) -> Result<KempeReport, CoreError> {
    reduce_palette_traced(g, colors, alive, kcfg, base, &mut NoopTracer)
}

/// [`reduce_palette_metered`] dropping the metrics registry.
pub fn reduce_palette_traced<T: Tracer + Sync>(
    g: &Graph,
    colors: &mut [Option<Color>],
    alive: &[bool],
    kcfg: &KempeConfig,
    base: &ColoringConfig,
    tracer: &mut T,
) -> Result<KempeReport, CoreError> {
    reduce_palette_metered(g, colors, alive, kcfg, base, tracer).map(|(report, _)| report)
}

/// Run the Kempe-chain reduction pass over a proper (partial) edge
/// coloring of `g`, rewriting `colors` in place and reporting what
/// changed. `alive[v] == false` pins every edge at `v` (residual
/// colorings of crashed runs stay untouched there). `base` supplies the
/// engine, seed and send-validation settings; the pass itself always
/// runs on the bare reliable transport (it is a post-processing phase,
/// not part of the paper's fault model).
///
/// The second return is the pass's own metrics registry (the `kempe/`
/// family) when `base.collect_metrics` is on — [`KempeReport`] is
/// `Copy` and stays that way, so the registry travels beside it for
/// callers that fold it into a run-level registry.
pub fn reduce_palette_metered<T: Tracer + Sync>(
    g: &Graph,
    colors: &mut [Option<Color>],
    alive: &[bool],
    kcfg: &KempeConfig,
    base: &ColoringConfig,
    tracer: &mut T,
) -> Result<(KempeReport, Option<Box<MetricsRegistry>>), CoreError> {
    if colors.len() != g.num_edges() {
        return Err(CoreError::Config(format!(
            "reduce_palette: {} colors for {} edges",
            colors.len(),
            g.num_edges()
        )));
    }
    if alive.len() != g.num_vertices() {
        return Err(CoreError::Config(format!(
            "reduce_palette: {} alive flags for {} vertices",
            alive.len(),
            g.num_vertices()
        )));
    }
    let delta = g.max_degree();
    let threshold = kcfg.target_colors.unwrap_or(delta as u32 + 1).max(1);
    let before: ColorSet = colors.iter().flatten().copied().collect();
    let mut report = KempeReport {
        colors_before: before.len(),
        colors_after: before.len(),
        max_color_before: before.max(),
        max_color_after: before.max(),
        target_colors: threshold,
        comm_rounds: 0,
        messages_sent: 0,
        trivial_recolors: 0,
        chains_flipped: 0,
        max_chain_len: 0,
        aborts: 0,
    };
    // Nothing over the threshold: the pass would start and immediately
    // quiesce — skip the engine run entirely.
    if before.max().is_none_or(|m| m.0 < threshold) {
        return Ok((report, None));
    }
    let n = g.num_vertices();
    let mut init: Vec<KempeInit> = vec![KempeInit::default(); n];
    for (e, (u, v)) in g.edges() {
        let c = colors[e.index()];
        let pin = c.is_none() || !alive[u.index()] || !alive[v.index()];
        init[u.index()].ports.push((v, c, pin));
        init[v.index()].ports.push((u, c, pin));
    }
    for (i, ni) in init.iter_mut().enumerate() {
        ni.ports.sort_by_key(|&(w, _, _)| w);
        ni.stub = !alive[i];
        let mut seen = ColorSet::with_capacity(threshold as usize + ni.ports.len());
        for &(_, c, pin) in &ni.ports {
            if let (Some(c), false) = (c, pin) {
                if !seen.insert(c) {
                    return Err(CoreError::Config(format!(
                        "reduce_palette needs a proper input coloring \
                         (color {c} appears twice at node {i})"
                    )));
                }
            }
        }
    }
    let run_cfg = ColoringConfig {
        transport: Transport::Bare,
        faults: FaultPlan::reliable(),
        reduction: ColorReduction::Off,
        collect_round_stats: false,
        ..base.clone()
    };
    let max_chain = kcfg.max_chain.max(1);
    let margin = wind_down_margin(max_chain);
    // Default round budget: the serial chain work scales with Δ (chain
    // lengths, candidate cycling) but the *contention* drain scales with
    // graph size — dense over-threshold regions serialize through locks
    // a handful of operations at a time, and busy refusals are refunded
    // rather than charged to the attempt budget, so the initiation
    // window is what actually bounds them.
    let max_rounds = kcfg
        .max_rounds
        .unwrap_or(64 * delta as u64 + 16 * g.num_vertices() as u64 + margin + 1024)
        .max(8);
    let deadline = max_rounds.saturating_sub(margin);
    let kcfg = KempeConfig { max_chain, max_attempts: kcfg.max_attempts.max(1), ..*kcfg };
    let topo = Topology::from_graph(g);
    let factory = |seed: NodeSeed<'_>| {
        KempeNode::new(&seed, &init[seed.node.index()], threshold, &kcfg, deadline)
    };
    let mut run = run_protocol_traced(&topo, &run_cfg, max_rounds, factory, tracer)?;
    // Write the negotiated colors back into the global table. Both
    // endpoints of every live edge agree (the commit protocol updates
    // them within one operation); pinned edges kept their input color.
    for (e, (u, v)) in g.edges() {
        let nu = &run.nodes[u.index()];
        let nv = &run.nodes[v.index()];
        if !nu.stub {
            debug_assert!(
                nv.stub || nu.color_toward(v) == nv.color_toward(u),
                "edge ({u:?}, {v:?}) endpoints disagree after reduction"
            );
            colors[e.index()] = nu.color_toward(v);
        } else if !nv.stub {
            colors[e.index()] = nv.color_toward(u);
        }
    }
    let after: ColorSet = colors.iter().flatten().copied().collect();
    report.colors_after = after.len();
    report.max_color_after = after.max();
    report.comm_rounds = run.stats.rounds;
    report.messages_sent = run.stats.messages_sent;
    for node in &run.nodes {
        report.trivial_recolors += node.trivial_recolors;
        report.chains_flipped += node.chains_flipped;
        report.max_chain_len = report.max_chain_len.max(node.max_chain_len);
        report.aborts += node.aborts;
    }
    Ok((report, run.stats.metrics.take()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Engine;
    use crate::edge_coloring::color_edges;
    use crate::verify::{count_colors, verify_edge_coloring};
    use dima_graph::gen::{erdos_renyi_avg_degree, structured};
    use dima_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn reduce(g: &Graph, colors: &mut [Option<Color>], seed: u64) -> KempeReport {
        let alive = vec![true; g.num_vertices()];
        reduce_palette(g, colors, &alive, &KempeConfig::default(), &ColoringConfig::seeded(seed))
            .unwrap()
    }

    #[test]
    fn already_tight_coloring_skips_the_run() {
        let g = structured::star(6);
        let mut r = color_edges(&g, &ColoringConfig::seeded(1)).unwrap();
        // A star colors with exactly Δ colors — nothing over Δ+1.
        let before = r.colors.clone();
        let report = reduce(&g, &mut r.colors, 1);
        assert_eq!(r.colors, before);
        assert_eq!(report.comm_rounds, 0);
        assert_eq!(report.colors_saved(), 0);
    }

    #[test]
    fn reduces_a_handmade_overful_coloring() {
        // Path a-b-c-d: Δ = 2, threshold 3; color the edges 0, 5, 0.
        // Edge (b, c) is over the threshold and a trivial recolor (to 1)
        // fixes it.
        let g = structured::path(4);
        let mut colors = vec![Some(Color(0)), Some(Color(5)), Some(Color(0))];
        let report = reduce(&g, &mut colors, 7);
        verify_edge_coloring(&g, &colors).unwrap();
        assert_eq!(count_colors(&colors), 2);
        assert_eq!(report.colors_before, 2);
        assert_eq!(report.colors_after, 2);
        assert_eq!(report.max_color_after, Some(Color(1)));
        assert_eq!(report.trivial_recolors, 1);
        assert_eq!(report.chains_flipped, 0);
    }

    #[test]
    fn reduces_via_a_chain_when_no_trivial_recolor_exists() {
        // Double star forcing a chain: u = 0 and v = 1 joined by an
        // over-threshold edge (color 9), u's pendant edges colored
        // {0, 1}, v's colored {2, 3}. Δ = 3, threshold 4; the endpoints
        // jointly use every color below the threshold, so no trivial
        // recolor exists. The (a = 2, b = 0) chain is u's 0-edge alone:
        // flipping it to 2 frees 0 for the 9-edge.
        let mut b = GraphBuilder::with_capacity(6, 5);
        b.add_edge(VertexId(0), VertexId(1)) // -> 9
            .add_edge(VertexId(0), VertexId(2)) // -> 0
            .add_edge(VertexId(0), VertexId(3)) // -> 1
            .add_edge(VertexId(1), VertexId(4)) // -> 2
            .add_edge(VertexId(1), VertexId(5)); // -> 3
        let g = b.build().unwrap();
        let mut colors = [9u32, 0, 1, 2, 3].map(|c| Some(Color(c))).to_vec();
        let report = reduce(&g, &mut colors, 3);
        verify_edge_coloring(&g, &colors).unwrap();
        assert!(colors.iter().flatten().all(|c| c.0 < 4), "still over threshold: {colors:?}");
        assert_eq!(report.trivial_recolors, 0, "{report:?}");
        assert_eq!(report.chains_flipped, 1, "{report:?}");
        assert_eq!(report.colors_before, 5);
        assert_eq!(report.colors_after, 4);
        assert_eq!(report.max_chain_len, 1);
    }

    #[test]
    fn never_grows_the_palette_and_preserves_propriety() {
        let mut rng = SmallRng::seed_from_u64(99);
        for seed in 0..8 {
            let g = erdos_renyi_avg_degree(80, 7.0, &mut rng).unwrap();
            let r = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
            let mut colors = r.colors.clone();
            let report = reduce(&g, &mut colors, seed);
            verify_edge_coloring(&g, &colors).unwrap();
            assert!(report.colors_after <= report.colors_before, "{report:?}");
            assert_eq!(count_colors(&colors), report.colors_after);
            if r.colors_used > g.max_degree() + 1 {
                assert!(
                    report.colors_after < r.colors_used,
                    "seed {seed}: {} -> {} (Δ = {})",
                    r.colors_used,
                    report.colors_after,
                    g.max_degree()
                );
            }
        }
    }

    #[test]
    fn engines_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(41);
        let g = erdos_renyi_avg_degree(60, 6.0, &mut rng).unwrap();
        let r = color_edges(&g, &ColoringConfig::seeded(5)).unwrap();
        let alive = vec![true; g.num_vertices()];
        let mut seq = r.colors.clone();
        let seq_report = reduce_palette(
            &g,
            &mut seq,
            &alive,
            &KempeConfig::default(),
            &ColoringConfig::seeded(5),
        )
        .unwrap();
        for threads in [2, 4] {
            let mut par = r.colors.clone();
            let cfg = ColoringConfig {
                engine: Engine::Parallel { threads },
                ..ColoringConfig::seeded(5)
            };
            let par_report =
                reduce_palette(&g, &mut par, &alive, &KempeConfig::default(), &cfg).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
            assert_eq!(seq_report, par_report);
        }
    }

    #[test]
    fn pinned_edges_survive_untouched() {
        // Crash one endpoint: every edge at it keeps its input color.
        let g = structured::complete(5);
        let r = color_edges(&g, &ColoringConfig::seeded(2)).unwrap();
        let mut colors = r.colors.clone();
        // Bump a non-pinned edge over the threshold so the pass runs.
        let mut alive = vec![true; g.num_vertices()];
        alive[0] = false;
        let pinned: Vec<(usize, Option<Color>)> = g
            .edges()
            .filter(|&(_, (u, v))| u.index() == 0 || v.index() == 0)
            .map(|(e, _)| (e.index(), colors[e.index()]))
            .collect();
        let report = reduce_palette(
            &g,
            &mut colors,
            &alive,
            &KempeConfig::default(),
            &ColoringConfig::seeded(2),
        )
        .unwrap();
        for (e, c) in pinned {
            assert_eq!(colors[e], c, "pinned edge {e} was recolored");
        }
        assert!(report.colors_after <= report.colors_before);
    }

    #[test]
    fn improper_input_rejected() {
        let g = structured::path(3);
        // Both edges share vertex 1 but carry the same color.
        let mut colors = vec![Some(Color(9)), Some(Color(9))];
        let alive = vec![true; 3];
        let err = reduce_palette(
            &g,
            &mut colors,
            &alive,
            &KempeConfig::default(),
            &ColoringConfig::seeded(0),
        );
        assert!(matches!(err, Err(CoreError::Config(_))), "{err:?}");
    }

    #[test]
    fn length_mismatches_rejected() {
        let g = structured::path(3);
        let mut colors = vec![Some(Color(0))]; // 2 edges expected
        let alive = vec![true; 3];
        assert!(reduce_palette(
            &g,
            &mut colors,
            &alive,
            &KempeConfig::default(),
            &ColoringConfig::seeded(0)
        )
        .is_err());
        let mut colors = vec![Some(Color(0)), Some(Color(1))];
        let alive = vec![true; 2]; // 3 vertices expected
        assert!(reduce_palette(
            &g,
            &mut colors,
            &alive,
            &KempeConfig::default(),
            &ColoringConfig::seeded(0)
        )
        .is_err());
    }
}
