//! Independent verification of matchings and colorings.
//!
//! Every experiment binary and test verifies algorithm output with these
//! direct neighborhood checks; the integration tests additionally
//! cross-check them against the conflict-graph constructions in
//! [`dima_graph::conflict`] (vertex-coloring view), so the two
//! implementations of each constraint guard each other.

use std::fmt;

use dima_graph::{ArcId, Digraph, EdgeId, Graph, VertexId};

use crate::palette::Color;

/// A verification failure, carrying a concrete witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An edge/arc was left uncolored.
    Uncolored {
        /// Index of the uncolored edge or arc.
        index: u32,
    },
    /// Two adjacent edges share a color.
    AdjacentSameColor {
        /// First edge.
        e1: EdgeId,
        /// Second edge.
        e2: EdgeId,
        /// The shared color.
        color: Color,
        /// The shared endpoint.
        at: VertexId,
    },
    /// Two arcs in distance-2 conflict share a color.
    StrongConflict {
        /// First arc.
        a1: ArcId,
        /// Second arc.
        a2: ArcId,
        /// The shared color.
        color: Color,
    },
    /// Two matching edges share an endpoint.
    NotAMatching {
        /// The vertex covered twice.
        at: VertexId,
    },
    /// A matched pair is not an edge of the graph.
    NotAnEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// An edge joins two surviving unmatched vertices (the residual
    /// matching is not maximal).
    NotMaximal {
        /// First unmatched endpoint.
        u: VertexId,
        /// Second unmatched endpoint.
        v: VertexId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Uncolored { index } => write!(f, "edge/arc {index} is uncolored"),
            Violation::AdjacentSameColor { e1, e2, color, at } => {
                write!(f, "edges {e1:?} and {e2:?} both use color {color} at vertex {at}")
            }
            Violation::StrongConflict { a1, a2, color } => write!(
                f,
                "arcs {a1:?} and {a2:?} are in distance-2 conflict but share color {color}"
            ),
            Violation::NotAMatching { at } => {
                write!(f, "vertex {at} is covered by two matching edges")
            }
            Violation::NotAnEdge { u, v } => {
                write!(f, "pair ({u}, {v}) is not an edge of the graph")
            }
            Violation::NotMaximal { u, v } => {
                write!(f, "edge ({u}, {v}) joins two surviving unmatched vertices")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Check that `colors` is a complete proper edge coloring of `g`:
/// every edge colored, no two adjacent edges sharing a color.
pub fn verify_edge_coloring(g: &Graph, colors: &[Option<Color>]) -> Result<(), Violation> {
    assert_eq!(colors.len(), g.num_edges(), "color vector length mismatch");
    for (e, _) in g.edges() {
        if colors[e.index()].is_none() {
            return Err(Violation::Uncolored { index: e.0 });
        }
    }
    verify_partial_edge_coloring(g, colors)
}

/// Check properness only (uncolored edges allowed) — used on
/// fault-corrupted runs and mid-run snapshots.
pub fn verify_partial_edge_coloring(g: &Graph, colors: &[Option<Color>]) -> Result<(), Violation> {
    assert_eq!(colors.len(), g.num_edges(), "color vector length mismatch");
    for v in g.vertices() {
        let inc = g.neighbors(v);
        for i in 0..inc.len() {
            let e1 = inc[i].1;
            let Some(c1) = colors[e1.index()] else { continue };
            for &(_, e2) in &inc[i + 1..] {
                if colors[e2.index()] == Some(c1) {
                    return Err(Violation::AdjacentSameColor { e1, e2, color: c1, at: v });
                }
            }
        }
    }
    Ok(())
}

/// Check that `colors` is a complete strong (distance-2, Definition 2)
/// edge coloring of the symmetric digraph `d`.
///
/// The conflict set of arc `e = (u → v)` is: the reverse arc, every arc
/// entering `v`, and every arc leaving an in-neighbor of `v`
/// (symmetrised). This scans neighborhoods directly; the test suite
/// cross-checks it against
/// [`dima_graph::conflict::digraph_strong_conflicts`].
pub fn verify_strong_coloring(d: &Digraph, colors: &[Option<Color>]) -> Result<(), Violation> {
    assert_eq!(colors.len(), d.num_arcs(), "color vector length mismatch");
    for (a, _) in d.arcs() {
        if colors[a.index()].is_none() {
            return Err(Violation::Uncolored { index: a.0 });
        }
    }
    verify_partial_strong_coloring(d, colors)
}

/// Properness of a partial strong coloring (uncolored arcs allowed).
pub fn verify_partial_strong_coloring(
    d: &Digraph,
    colors: &[Option<Color>],
) -> Result<(), Violation> {
    assert_eq!(colors.len(), d.num_arcs(), "color vector length mismatch");
    let conflict = |a1: ArcId, a2: ArcId| -> Option<Violation> {
        if a1 == a2 {
            return None;
        }
        let (c1, c2) = (colors[a1.index()]?, colors[a2.index()]?);
        if c1 == c2 {
            let (x, y) = if a1 < a2 { (a1, a2) } else { (a2, a1) };
            Some(Violation::StrongConflict { a1: x, a2: y, color: c1 })
        } else {
            None
        }
    };
    for (e, (u, v)) in d.arcs() {
        // Reverse arc.
        if let Some(r) = d.arc_between(v, u) {
            if let Some(viol) = conflict(e, r) {
                return Err(viol);
            }
        }
        // Arcs entering v.
        for &(_, f) in d.in_neighbors(v) {
            if let Some(viol) = conflict(e, f) {
                return Err(viol);
            }
        }
        // Arcs leaving in-neighbors of v.
        for &(w, _) in d.in_neighbors(v) {
            for &(_, f) in d.out_neighbors(w) {
                if let Some(viol) = conflict(e, f) {
                    return Err(viol);
                }
            }
        }
    }
    Ok(())
}

/// Check a **residual** edge coloring — the output of a run in which the
/// nodes *not* marked in `alive` crash-stopped (see
/// [`crate::Transport::Reliable`]). The coloring must be proper
/// everywhere, and complete on every edge whose both endpoints survived;
/// edges touching a crashed node may legitimately be uncolored.
pub fn verify_residual_edge_coloring(
    g: &Graph,
    colors: &[Option<Color>],
    alive: &[bool],
) -> Result<(), Violation> {
    assert_eq!(alive.len(), g.num_vertices(), "alive vector length mismatch");
    assert_eq!(colors.len(), g.num_edges(), "color vector length mismatch");
    for (e, (u, v)) in g.edges() {
        if alive[u.index()] && alive[v.index()] && colors[e.index()].is_none() {
            return Err(Violation::Uncolored { index: e.0 });
        }
    }
    verify_partial_edge_coloring(g, colors)
}

/// Check a **residual** strong coloring: proper everywhere, complete on
/// every arc whose both endpoints survived.
pub fn verify_residual_strong_coloring(
    d: &Digraph,
    colors: &[Option<Color>],
    alive: &[bool],
) -> Result<(), Violation> {
    assert_eq!(alive.len(), d.num_vertices(), "alive vector length mismatch");
    assert_eq!(colors.len(), d.num_arcs(), "color vector length mismatch");
    for (a, (u, v)) in d.arcs() {
        if alive[u.index()] && alive[v.index()] && colors[a.index()].is_none() {
            return Err(Violation::Uncolored { index: a.0 });
        }
    }
    verify_partial_strong_coloring(d, colors)
}

/// Check a **residual** maximal matching: `pairs` must be a matching of
/// `g`, and maximal among the survivors — no edge may join two alive,
/// unmatched vertices (a vertex matched to a since-crashed partner counts
/// as matched; it has left the pool for good).
pub fn verify_residual_matching(
    g: &Graph,
    pairs: &[(VertexId, VertexId)],
    alive: &[bool],
) -> Result<(), Violation> {
    assert_eq!(alive.len(), g.num_vertices(), "alive vector length mismatch");
    verify_matching(g, pairs)?;
    let mut covered = vec![false; g.num_vertices()];
    for &(u, v) in pairs {
        covered[u.index()] = true;
        covered[v.index()] = true;
    }
    for (_, (u, v)) in g.edges() {
        if alive[u.index()] && alive[v.index()] && !covered[u.index()] && !covered[v.index()] {
            return Err(Violation::NotMaximal { u, v });
        }
    }
    Ok(())
}

/// Check that `pairs` is a matching of `g`: every pair an edge, no vertex
/// covered twice.
pub fn verify_matching(g: &Graph, pairs: &[(VertexId, VertexId)]) -> Result<(), Violation> {
    let mut covered = vec![false; g.num_vertices()];
    for &(u, v) in pairs {
        if g.edge_between(u, v).is_none() {
            return Err(Violation::NotAnEdge { u, v });
        }
        for w in [u, v] {
            if covered[w.index()] {
                return Err(Violation::NotAMatching { at: w });
            }
            covered[w.index()] = true;
        }
    }
    Ok(())
}

/// Count distinct colors in a coloring.
pub fn count_colors(colors: &[Option<Color>]) -> usize {
    let mut set = crate::palette::ColorSet::new();
    for c in colors.iter().flatten() {
        set.insert(*c);
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dima_graph::gen::structured;

    fn c(i: u32) -> Option<Color> {
        Some(Color(i))
    }

    #[test]
    fn accepts_proper_coloring_of_path() {
        let g = structured::path(4); // edges 0-1,1-2,2-3
        assert!(verify_edge_coloring(&g, &[c(0), c(1), c(0)]).is_ok());
    }

    #[test]
    fn rejects_adjacent_same_color() {
        let g = structured::path(4);
        let err = verify_edge_coloring(&g, &[c(0), c(0), c(1)]).unwrap_err();
        match err {
            Violation::AdjacentSameColor { color, at, .. } => {
                assert_eq!(color, Color(0));
                assert_eq!(at, VertexId(1));
            }
            other => panic!("wrong violation {other:?}"),
        }
    }

    #[test]
    fn rejects_uncolored_edge() {
        let g = structured::path(3);
        let err = verify_edge_coloring(&g, &[c(0), None]).unwrap_err();
        assert_eq!(err, Violation::Uncolored { index: 1 });
        // Partial check is fine with the same input.
        assert!(verify_partial_edge_coloring(&g, &[c(0), None]).is_ok());
    }

    #[test]
    fn partial_check_still_catches_conflicts() {
        let g = structured::star(4);
        let err = verify_partial_edge_coloring(&g, &[c(2), None, c(2)]).unwrap_err();
        assert!(matches!(err, Violation::AdjacentSameColor { .. }));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let g = structured::path(3);
        let _ = verify_edge_coloring(&g, &[c(0)]);
    }

    #[test]
    fn strong_coloring_path_cases() {
        // Symmetric P3: arcs 0:(0→1) 1:(1→0) 2:(1→2) 3:(2→1).
        let g = structured::path(3);
        let d = Digraph::symmetric_closure(&g);
        // All distinct: fine.
        assert!(verify_strong_coloring(&d, &[c(0), c(1), c(2), c(3)]).is_ok());
        // Reverse arcs sharing a color: violation.
        let err = verify_strong_coloring(&d, &[c(0), c(0), c(1), c(2)]).unwrap_err();
        assert!(matches!(err, Violation::StrongConflict { .. }));
        // Arcs into the same head sharing a color: violation.
        let err = verify_strong_coloring(&d, &[c(0), c(1), c(2), c(0)]).unwrap_err();
        assert!(matches!(err, Violation::StrongConflict { color: Color(0), .. }));
        // (0→1) and (1→2) do NOT conflict under Definition 2 (see the
        // conflict-graph tests): sharing a color is legal.
        assert!(verify_strong_coloring(&d, &[c(0), c(1), c(0), c(2)]).is_ok());
        // Missing arc color.
        let err = verify_strong_coloring(&d, &[c(0), None, c(1), c(2)]).unwrap_err();
        assert_eq!(err, Violation::Uncolored { index: 1 });
    }

    #[test]
    fn strong_verifier_agrees_with_conflict_graph() {
        // Brute-force cross-check on a small digraph: a coloring is
        // accepted iff it is a proper vertex coloring of the conflict
        // graph.
        let g = structured::cycle(4);
        let d = Digraph::symmetric_closure(&g);
        let cg = dima_graph::conflict::digraph_strong_conflicts(&d);
        // Try a handful of assignments with 3 colors over 8 arcs.
        for trial in 0u64..200 {
            let colors: Vec<Option<Color>> =
                (0..d.num_arcs()).map(|i| c(((trial >> (i * 2)) % 3) as u32)).collect();
            let direct = verify_strong_coloring(&d, &colors).is_ok();
            let via_graph = cg.edges().all(|(_, (a, b))| colors[a.index()] != colors[b.index()]);
            assert_eq!(direct, via_graph, "trial {trial}");
        }
    }

    #[test]
    fn matching_checks() {
        let g = structured::cycle(5);
        assert!(
            verify_matching(&g, &[(VertexId(0), VertexId(1)), (VertexId(2), VertexId(3))]).is_ok()
        );
        let err = verify_matching(&g, &[(VertexId(0), VertexId(2))]).unwrap_err();
        assert!(matches!(err, Violation::NotAnEdge { .. }));
        let err = verify_matching(&g, &[(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))])
            .unwrap_err();
        assert_eq!(err, Violation::NotAMatching { at: VertexId(1) });
        assert!(verify_matching(&g, &[]).is_ok());
    }

    #[test]
    fn residual_edge_coloring_checks() {
        let g = structured::path(4); // edges 0-1, 1-2, 2-3
        let alive = [true, true, true, false];
        // Edge 2-3 touches the crashed vertex 3: may stay uncolored.
        assert!(verify_residual_edge_coloring(&g, &[c(0), c(1), None], &alive).is_ok());
        // Edge 0-1 joins two survivors: must be colored.
        let err = verify_residual_edge_coloring(&g, &[None, c(1), None], &alive).unwrap_err();
        assert_eq!(err, Violation::Uncolored { index: 0 });
        // Properness still enforced even on crash-adjacent edges.
        let err = verify_residual_edge_coloring(&g, &[c(0), c(1), c(1)], &alive).unwrap_err();
        assert!(matches!(err, Violation::AdjacentSameColor { .. }));
    }

    #[test]
    fn residual_strong_coloring_checks() {
        let g = structured::path(3);
        let d = Digraph::symmetric_closure(&g);
        // Arcs 0:(0→1) 1:(1→0) 2:(1→2) 3:(2→1); vertex 2 crashed.
        let alive = [true, true, false];
        assert!(verify_residual_strong_coloring(&d, &[c(0), c(1), None, None], &alive).is_ok());
        let err =
            verify_residual_strong_coloring(&d, &[None, c(1), None, None], &alive).unwrap_err();
        assert_eq!(err, Violation::Uncolored { index: 0 });
        let err =
            verify_residual_strong_coloring(&d, &[c(0), c(0), None, None], &alive).unwrap_err();
        assert!(matches!(err, Violation::StrongConflict { .. }));
    }

    #[test]
    fn residual_matching_checks() {
        let g = structured::path(4); // edges 0-1, 1-2, 2-3
                                     // 0-1 matched; 2 and 3 unmatched but 3 crashed: maximal residually.
        let pairs = [(VertexId(0), VertexId(1))];
        assert!(verify_residual_matching(&g, &pairs, &[true, true, true, false]).is_ok());
        // With 3 alive too, edge 2-3 joins two alive unmatched vertices.
        let err = verify_residual_matching(&g, &pairs, &[true, true, true, true]).unwrap_err();
        assert_eq!(err, Violation::NotMaximal { u: VertexId(2), v: VertexId(3) });
        // Matching validity still enforced.
        let bad = [(VertexId(0), VertexId(2))];
        assert!(verify_residual_matching(&g, &bad, &[true; 4]).is_err());
    }

    #[test]
    fn count_colors_counts_distinct() {
        assert_eq!(count_colors(&[c(0), c(2), c(0), None]), 2);
        assert_eq!(count_colors(&[]), 0);
    }

    #[test]
    fn violations_display() {
        assert!(Violation::Uncolored { index: 3 }.to_string().contains("uncolored"));
        let v = Violation::AdjacentSameColor {
            e1: EdgeId(0),
            e2: EdgeId(1),
            color: Color(2),
            at: VertexId(5),
        };
        assert!(v.to_string().contains("vertex 5"));
        let v = Violation::StrongConflict { a1: ArcId(0), a2: ArcId(1), color: Color(0) };
        assert!(v.to_string().contains("distance-2"));
        assert!(Violation::NotAMatching { at: VertexId(1) }.to_string().contains("covered"));
        assert!(Violation::NotAnEdge { u: VertexId(0), v: VertexId(9) }
            .to_string()
            .contains("not an edge"));
        assert!(Violation::NotMaximal { u: VertexId(2), v: VertexId(3) }
            .to_string()
            .contains("unmatched"));
    }
}
