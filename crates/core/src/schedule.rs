//! TDMA schedules from colorings — the semantic layer of the paper's
//! motivating application.
//!
//! Edge colorings and strong colorings are *means*; the end is a
//! collision-free transmission schedule (Gandham et al., Barrett et al.,
//! both cited by the paper). This module turns colorings into explicit
//! slot tables and — crucially — provides an **independent, semantic
//! verifier** ([`verify_half_duplex`], [`verify_interference_free`]) that
//! checks radio constraints directly, without reference to coloring
//! theory. A bug in the coloring verifiers cannot hide here, and vice
//! versa.

use dima_graph::{ArcId, Digraph, EdgeId, Graph, VertexId};

use crate::palette::Color;

/// A TDMA frame for an undirected graph: slot `s` carries the edges
/// colored `s`. Built from a complete proper edge coloring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeSchedule {
    /// `slots[s]` — the edges transmitting in slot `s`.
    pub slots: Vec<Vec<EdgeId>>,
}

impl EdgeSchedule {
    /// Build the frame from a complete coloring.
    ///
    /// # Panics
    /// Panics if any edge is uncolored (run the coloring verifier first).
    pub fn from_coloring(colors: &[Option<Color>]) -> EdgeSchedule {
        let frame_len = colors
            .iter()
            .map(|c| c.expect("schedule needs a complete coloring").0 + 1)
            .max()
            .unwrap_or(0) as usize;
        let mut slots = vec![Vec::new(); frame_len];
        for (i, c) in colors.iter().enumerate() {
            slots[c.expect("checked above").index()].push(EdgeId(i as u32));
        }
        EdgeSchedule { slots }
    }

    /// Frame length (number of slots).
    pub fn frame_len(&self) -> usize {
        self.slots.len()
    }

    /// Total scheduled transmissions (= number of edges).
    pub fn num_transmissions(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Average slot utilisation (`edges / (slots × max slot size)` is
    /// fragile; we report transmissions per slot).
    pub fn avg_slot_size(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            self.num_transmissions() as f64 / self.slots.len() as f64
        }
    }
}

/// Semantic check for half-duplex radio: within every slot, no node is
/// an endpoint of two scheduled edges (it cannot take part in two
/// conversations at once). Returns the first offending
/// `(slot, node)` pair.
pub fn verify_half_duplex(g: &Graph, sched: &EdgeSchedule) -> Result<(), (usize, VertexId)> {
    let mut busy = vec![usize::MAX; g.num_vertices()];
    for (slot, edges) in sched.slots.iter().enumerate() {
        for &e in edges {
            let (u, v) = g.endpoints(e);
            for w in [u, v] {
                if busy[w.index()] == slot {
                    return Err((slot, w));
                }
                busy[w.index()] = slot;
            }
        }
    }
    Ok(())
}

/// A TDMA frame for a symmetric digraph: slot `s` carries the directed
/// transmissions (arcs) with channel `s`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArcSchedule {
    /// `slots[s]` — the arcs transmitting in slot `s`.
    pub slots: Vec<Vec<ArcId>>,
}

impl ArcSchedule {
    /// Build the frame from a complete strong coloring.
    ///
    /// # Panics
    /// Panics if any arc is uncolored.
    pub fn from_coloring(colors: &[Option<Color>]) -> ArcSchedule {
        let frame_len = colors
            .iter()
            .map(|c| c.expect("schedule needs a complete coloring").0 + 1)
            .max()
            .unwrap_or(0) as usize;
        let mut slots = vec![Vec::new(); frame_len];
        for (i, c) in colors.iter().enumerate() {
            slots[c.expect("checked above").index()].push(ArcId(i as u32));
        }
        ArcSchedule { slots }
    }

    /// Frame length (number of slots/channels).
    pub fn frame_len(&self) -> usize {
        self.slots.len()
    }
}

/// Semantic check for interference-free reception: within a slot, for
/// every scheduled transmission `u → v`, no *other* scheduled sender may
/// be audible at `v` (equal to `v` — half-duplex — or adjacent to it).
///
/// Note this is **strictly stronger** than the paper's Definition 2: the
/// definition does not forbid a node from transmitting on the channel it
/// is simultaneously receiving (arcs `(u→v)` and `(v→x)`, `x ≠ u`, are
/// not in its conflict set). DiMa2ED's conservative one-hop palette —
/// a node never reuses any color heard in its neighborhood — happens to
/// satisfy the stronger property anyway (tested), but a coloring that is
/// merely Definition-2-proper may fail here. A reproduction-worthy
/// finding: the definition under-specifies half-duplex radio.
/// Returns the first offending `(slot, receiver, interfering sender)`.
pub fn verify_interference_free(
    d: &Digraph,
    sched: &ArcSchedule,
) -> Result<(), (usize, VertexId, VertexId)> {
    for (slot, arcs) in sched.slots.iter().enumerate() {
        let senders: Vec<VertexId> = arcs.iter().map(|&a| d.arc(a).0).collect();
        for &a in arcs {
            let (_tx, rx) = d.arc(a);
            for (&b, &sender) in arcs.iter().zip(&senders) {
                if b == a {
                    continue;
                }
                // Any *other* same-slot sender audible at this receiver
                // collides (including the own sender transmitting a
                // second arc — the receiver hears both frames).
                if sender == rx || d.arc_between(sender, rx).is_some() {
                    return Err((slot, rx, sender));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ColoringConfig;
    use crate::edge_coloring::color_edges;
    use crate::strong_coloring::strong_color_digraph;
    use dima_graph::gen::structured;

    #[test]
    fn edge_schedule_from_dimaec_is_half_duplex() {
        let g = structured::grid(5, 5);
        let r = color_edges(&g, &ColoringConfig::seeded(3)).unwrap();
        let sched = EdgeSchedule::from_coloring(&r.colors);
        assert_eq!(sched.num_transmissions(), g.num_edges());
        assert_eq!(sched.frame_len(), r.max_color.unwrap().index() + 1);
        verify_half_duplex(&g, &sched).unwrap();
        assert!(sched.avg_slot_size() > 0.0);
    }

    #[test]
    fn half_duplex_detects_conflicts() {
        // P3: both edges share vertex 1; same slot must be rejected.
        let g = structured::path(3);
        let sched = EdgeSchedule { slots: vec![vec![EdgeId(0), EdgeId(1)]] };
        assert_eq!(verify_half_duplex(&g, &sched), Err((0, VertexId(1))));
        // Distinct slots pass.
        let sched = EdgeSchedule { slots: vec![vec![EdgeId(0)], vec![EdgeId(1)]] };
        assert!(verify_half_duplex(&g, &sched).is_ok());
    }

    #[test]
    fn arc_schedule_from_dima2ed_is_interference_free() {
        let g = structured::grid(4, 4);
        let d = Digraph::symmetric_closure(&g);
        let r = strong_color_digraph(&d, &ColoringConfig::seeded(4)).unwrap();
        let sched = ArcSchedule::from_coloring(&r.colors);
        assert_eq!(sched.frame_len(), r.max_color.unwrap().index() + 1);
        verify_interference_free(&d, &sched).unwrap();
    }

    #[test]
    fn interference_detects_audible_second_sender() {
        // Symmetric P3 (0-1-2): transmissions 0→1 and 2→1 in the same
        // slot collide at receiver 1.
        let g = structured::path(3);
        let d = Digraph::symmetric_closure(&g);
        let a01 = d.arc_between(VertexId(0), VertexId(1)).unwrap();
        let a21 = d.arc_between(VertexId(2), VertexId(1)).unwrap();
        let sched = ArcSchedule { slots: vec![vec![a01, a21]] };
        let err = verify_interference_free(&d, &sched).unwrap_err();
        assert_eq!(err.0, 0);
        assert_eq!(err.1, VertexId(1));
        // 0→1 and 1→2 also collide: receiver 1's own partner... receiver
        // 2 hears sender... sender 1 transmits to 2 while receiving from
        // 0: the reverse/entering constraint catches it at receiver 1
        // (sender 1 == receiver 1).
        let a12 = d.arc_between(VertexId(1), VertexId(2)).unwrap();
        let sched = ArcSchedule { slots: vec![vec![a01, a12]] };
        assert!(verify_interference_free(&d, &sched).is_err());
        // Disjoint faraway arcs in one slot are fine: use P4.
        let g = structured::path(5);
        let d = Digraph::symmetric_closure(&g);
        let a01 = d.arc_between(VertexId(0), VertexId(1)).unwrap();
        let a43 = d.arc_between(VertexId(4), VertexId(3)).unwrap();
        let sched = ArcSchedule { slots: vec![vec![a01, a43]] };
        assert!(verify_interference_free(&d, &sched).is_ok());
    }

    #[test]
    fn definition2_alone_does_not_imply_half_duplex() {
        // Symmetric P3: arcs (0→1) and (1→2) are *not* in Definition-2
        // conflict (see the verifier tests), so a Def-2-proper coloring
        // may give them one channel — yet node 1 would then transmit and
        // receive simultaneously. The semantic check catches it.
        let g = structured::path(3);
        let d = Digraph::symmetric_closure(&g);
        let a01 = d.arc_between(VertexId(0), VertexId(1)).unwrap();
        let a10 = d.arc_between(VertexId(1), VertexId(0)).unwrap();
        let a12 = d.arc_between(VertexId(1), VertexId(2)).unwrap();
        let a21 = d.arc_between(VertexId(2), VertexId(1)).unwrap();
        let mut colors = vec![None; d.num_arcs()];
        colors[a01.index()] = Some(Color(0));
        colors[a12.index()] = Some(Color(0)); // legal per Definition 2
        colors[a10.index()] = Some(Color(1));
        colors[a21.index()] = Some(Color(2));
        crate::verify::verify_strong_coloring(&d, &colors).unwrap(); // Def 2 OK
        let sched = ArcSchedule::from_coloring(&colors);
        assert!(verify_interference_free(&d, &sched).is_err()); // radio not OK
    }

    #[test]
    fn empty_schedules() {
        let sched = EdgeSchedule::from_coloring(&[]);
        assert_eq!(sched.frame_len(), 0);
        assert_eq!(sched.avg_slot_size(), 0.0);
        let sched = ArcSchedule::from_coloring(&[]);
        assert_eq!(sched.frame_len(), 0);
    }

    #[test]
    #[should_panic(expected = "complete coloring")]
    fn incomplete_coloring_panics() {
        let _ = EdgeSchedule::from_coloring(&[Some(Color(0)), None]);
    }
}
