//! **Algorithm 2 (DiMa2ED)** — distributed matching-based distance-2 edge
//! coloring of symmetric digraphs.
//!
//! The model for channel / time-slot assignment in ad-hoc radio networks:
//! each directed link needs a channel distinct from every transmission
//! whose sender lies in interference range of its receiver (the paper's
//! Definition 2). The automata skeleton is Algorithm 1's, with two
//! crucial additions from Procedures 2-a/b/c:
//!
//! * each node's *usable* palette excludes every color used within one
//!   hop — its own colors plus everything its neighbors have announced
//!   (`UpdateColors`), and
//! * a responder in the `R` state filters the invitations addressed to it
//!   against the colors proposed in **overheard** invitations addressed
//!   to others (Procedure 2-b, line 8): because the digraph is symmetric,
//!   every same-round Definition-2 conflict is overheard by at least one
//!   of the two responders involved — that is exactly the paper's
//!   Proposition 5, Case 2.
//!
//! One computation round colors at most one *out*-arc per invitor (and
//! the corresponding in-arc at the responder); a node is done when all
//! its out- **and** in-arcs are colored (paper line 2.28).

use dima_graph::{ArcId, Digraph, VertexId};
use dima_sim::{NodeSeed, NodeStatus, Protocol, RoundCtx, RunStats, Topology};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::automata::{choose_role, pick_uniform, Phase, Role};
use crate::config::{ColorPolicy, ColoringConfig, ResponsePolicy};
use crate::error::CoreError;
use crate::palette::{Color, ColorSet};
use crate::runner::run_protocol;

/// Messages of Algorithm 2. All broadcast — overhearing is what makes the
/// same-round conflict detection of Procedure 2-b work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrongMsg {
    /// Procedure 2-a's `⟨φ, v, u⟩`: sender proposes candidate channels
    /// for the arc `sender → to`. The paper sends exactly one channel
    /// (`proposal_width = 1`, the default); wider proposals are the ABL3
    /// extension.
    Invite {
        /// Intended responder (head of the arc).
        to: VertexId,
        /// Proposed channels, lowest first.
        colors: Vec<Color>,
    },
    /// Procedure 2-b's reply: sender (the responder) echoes the chosen
    /// invitation back to invitor `to`.
    Accept {
        /// The invitor whose proposal is accepted.
        to: VertexId,
        /// The agreed channel.
        color: Color,
    },
    /// `UpdateColors`: the sender has newly used `color`; neighbors must
    /// remove it from their usable lists.
    Used {
        /// The newly used channel.
        color: Color,
    },
}

#[derive(Clone, Debug)]
struct Proposal {
    port: usize,
    colors: Vec<Color>,
}

/// Per-vertex automata state for Algorithm 2.
#[derive(Debug)]
pub struct StrongColoringNode {
    me: VertexId,
    /// Sorted (underlying) neighbor ids.
    neighbors: Vec<VertexId>,
    /// Out-arc `me → neighbors[p]`.
    out_arcs: Vec<ArcId>,
    /// In-arc `neighbors[p] → me`.
    in_arcs: Vec<ArcId>,
    out_color: Vec<Option<Color>>,
    in_color: Vec<Option<Color>>,
    /// Ports with uncolored out-arcs (what this node can still invite
    /// for).
    uncolored_out: Vec<usize>,
    /// In-arcs still uncolored (counted for termination).
    uncolored_in: usize,
    /// Ports whose link was declared dead (peer presumed crashed); their
    /// arcs are written off for termination purposes.
    link_down: Vec<bool>,
    /// Colors unusable here: own used ∪ everything neighbors announced.
    forbidden: ColorSet,
    /// Per-port retry memory: colors this node proposed on the port while
    /// the partner was a *silent listener* — i.e. the partner provably
    /// received the invitation, was in the `L`/`R` states, and accepted
    /// nothing, which (Procedure 2-b) means the color was unusable at the
    /// partner or collided with an overheard proposal. One-hop knowledge
    /// cannot reveal *which* colors a two-hops-away node holds, so
    /// without this memory the lowest-available rule can re-propose the
    /// same doomed color forever (a genuine livelock of the paper's
    /// pseudocode as written; see `DESIGN.md`).
    tried: Vec<ColorSet>,
    role: Role,
    proposal: Option<Proposal>,
    /// Whether the current round partner was overheard inviting (set in
    /// the wait step; an inviting partner was not listening, so a missing
    /// reply says nothing about the proposed color).
    partner_was_inviting: bool,
    newly_used: Option<Color>,
    invite_probability: f64,
    color_policy: ColorPolicy,
    response_policy: ResponsePolicy,
    proposal_width: usize,
    /// Automata state after the last round (for state censuses).
    state: &'static str,
}

impl StrongColoringNode {
    fn new(seed: &NodeSeed<'_>, d: &Digraph, cfg: &ColoringConfig) -> Self {
        let me = seed.node;
        let out_arcs: Vec<ArcId> = seed
            .neighbors
            .iter()
            .map(|&w| d.arc_between(me, w).expect("digraph is symmetric"))
            .collect();
        let in_arcs: Vec<ArcId> = seed
            .neighbors
            .iter()
            .map(|&w| d.arc_between(w, me).expect("digraph is symmetric"))
            .collect();
        let degree = seed.neighbors.len();
        StrongColoringNode {
            me,
            neighbors: seed.neighbors.to_vec(),
            out_arcs,
            in_arcs,
            out_color: vec![None; degree],
            in_color: vec![None; degree],
            uncolored_out: (0..degree).collect(),
            uncolored_in: degree,
            link_down: vec![false; degree],
            forbidden: ColorSet::new(),
            tried: vec![ColorSet::new(); degree],
            role: Role::Listener,
            proposal: None,
            partner_was_inviting: false,
            newly_used: None,
            invite_probability: cfg.invite_probability,
            color_policy: cfg.color_policy,
            response_policy: cfg.response_policy,
            proposal_width: cfg.proposal_width,
            state: "C",
        }
    }

    fn port_of(&self, v: VertexId) -> Option<usize> {
        self.neighbors.binary_search(&v).ok()
    }

    fn is_finished(&self) -> bool {
        self.uncolored_out.is_empty() && self.uncolored_in == 0
    }

    /// "Choose an open channel φ for v" (Procedure 2-a), generalised to
    /// `proposal_width` candidates: the lowest colors neither forbidden
    /// here nor already refused on this port (or random legal ones under
    /// the ablation policy).
    fn propose_colors(&self, port: usize, rng: &mut SmallRng) -> Vec<Color> {
        let width = self.proposal_width.max(1);
        match self.color_policy {
            ColorPolicy::LowestIndex => {
                let mut out = Vec::with_capacity(width);
                let mut scratch = self.tried[port].clone();
                for _ in 0..width {
                    let c = self.forbidden.first_absent_in_union(&scratch);
                    scratch.insert(c);
                    out.push(c);
                }
                out
            }
            ColorPolicy::RandomLegal => {
                let bound = self
                    .forbidden
                    .max()
                    .into_iter()
                    .chain(self.tried[port].max())
                    .map(|c| c.0 + 1 + width as u32)
                    .max()
                    .unwrap_or(width as u32);
                let mut legal: Vec<Color> = (0..bound)
                    .map(Color)
                    .filter(|&c| !self.forbidden.contains(c) && !self.tried[port].contains(c))
                    .collect();
                let mut out = Vec::with_capacity(width);
                for _ in 0..width.min(legal.len().max(1)) {
                    if legal.is_empty() {
                        break;
                    }
                    let i = rng.random_range(0..legal.len());
                    out.push(legal.swap_remove(i));
                }
                if out.is_empty() {
                    out.push(self.forbidden.first_absent_in_union(&self.tried[port]));
                }
                out.sort_unstable();
                out
            }
        }
    }

    fn use_color(&mut self, color: Color) {
        self.forbidden.insert(color);
        self.newly_used = Some(color);
    }
}

impl Protocol for StrongColoringNode {
    type Msg = StrongMsg;

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, StrongMsg>) -> NodeStatus {
        match Phase::of_round(ctx.round()) {
            Phase::InviteStep => {
                // `UpdateColors` ingestion from the previous exchange.
                for env in ctx.inbox() {
                    if let StrongMsg::Used { color } = env.msg {
                        self.forbidden.insert(color);
                    }
                }
                if self.is_finished() {
                    // Only reachable by isolated vertices in round 0.
                    self.state = "D";
                    return NodeStatus::Done;
                }
                self.proposal = None;
                self.partner_was_inviting = false;
                self.newly_used = None;
                // A node with nothing left to invite for still listens —
                // its remaining in-arcs are colored by its neighbors'
                // invitations.
                self.role = if self.uncolored_out.is_empty() {
                    Role::Listener
                } else {
                    choose_role(ctx.rng(), self.invite_probability)
                };
                if self.role == Role::Invitor {
                    let &port = pick_uniform(ctx.rng(), &self.uncolored_out)
                        .expect("invitor has an uncolored out-arc");
                    let colors = self.propose_colors(port, ctx.rng());
                    self.proposal = Some(Proposal { port, colors: colors.clone() });
                    ctx.broadcast(StrongMsg::Invite { to: self.neighbors[port], colors });
                }
                self.state = if self.role == Role::Invitor { "I" } else { "L" };
                NodeStatus::Active
            }
            Phase::RespondStep => {
                if self.role == Role::Invitor {
                    // W state: while waiting, overhear whether the round
                    // partner itself invited (then it was not listening
                    // and a missing reply carries no color information).
                    if let Some(Proposal { port, .. }) = &self.proposal {
                        let partner = self.neighbors[*port];
                        self.partner_was_inviting = ctx.inbox().iter().any(|env| {
                            env.from == partner && matches!(env.msg, StrongMsg::Invite { .. })
                        });
                    }
                }
                if self.role == Role::Listener {
                    let me = self.me;
                    // Procedure 2-b: split into mine[] and other[].
                    let mut mine: Vec<(VertexId, &Vec<Color>)> = Vec::new();
                    let mut other_colors = ColorSet::new();
                    for env in ctx.inbox() {
                        if let StrongMsg::Invite { to, colors } = &env.msg {
                            if *to == me {
                                mine.push((env.from, colors));
                            } else {
                                for &c in colors {
                                    other_colors.insert(c);
                                }
                            }
                        }
                    }
                    // For each invitation keep its lowest channel that is
                    // usable here *and* free of overheard collisions
                    // (line 2-b.8). The in-arc guard is vacuous under
                    // reliable delivery; it keeps fault-injected desyncs
                    // from double-coloring.
                    let candidates: Vec<(VertexId, Color)> = mine
                        .into_iter()
                        .filter_map(|(from, colors)| {
                            if !self
                                .port_of(from)
                                .is_some_and(|p| self.in_color[p].is_none() && !self.link_down[p])
                            {
                                return None;
                            }
                            colors
                                .iter()
                                .copied()
                                .find(|&c| !self.forbidden.contains(c) && !other_colors.contains(c))
                                .map(|c| (from, c))
                        })
                        .collect();
                    let chosen = match self.response_policy {
                        ResponsePolicy::Random => pick_uniform(ctx.rng(), &candidates).copied(),
                        ResponsePolicy::FirstSender => candidates.first().copied(),
                        ResponsePolicy::LowestColor => {
                            candidates.iter().copied().min_by_key(|&(_, c)| c)
                        }
                    };
                    if let Some((partner, color)) = chosen {
                        ctx.broadcast(StrongMsg::Accept { to: partner, color });
                        // U_i: color the incoming arc from the round
                        // partner.
                        let port = self.port_of(partner).expect("invitor is a neighbor");
                        debug_assert!(self.in_color[port].is_none());
                        self.in_color[port] = Some(color);
                        self.uncolored_in -= 1;
                        self.use_color(color);
                    }
                }
                self.state = if self.role == Role::Invitor { "W" } else { "R" };
                NodeStatus::Active
            }
            Phase::ExchangeStep => {
                // U_o: the invitor looks for the echo of its proposal.
                if self.role == Role::Invitor {
                    if let Some(Proposal { port, colors }) = self.proposal.take() {
                        let partner = self.neighbors[port];
                        let me = self.me;
                        let accepted = ctx.inbox().iter().find_map(|env| {
                            if env.from != partner {
                                return None;
                            }
                            match env.msg {
                                StrongMsg::Accept { to, color: c }
                                    if to == me && colors.contains(&c) =>
                                {
                                    Some(c)
                                }
                                _ => None,
                            }
                        });
                        if let Some(color) = accepted {
                            debug_assert!(self.out_color[port].is_none());
                            self.out_color[port] = Some(color);
                            self.uncolored_out.retain(|&p| p != port);
                            self.use_color(color);
                        } else {
                            // No reply. If the partner was overheard
                            // accepting someone else's invitation this
                            // round, or was inviting itself, the failure
                            // is pure contention — retry the same colors
                            // later. If the partner was a *silent
                            // listener*, Procedure 2-b rejected every
                            // proposed channel at the partner (unusable
                            // there, or overheard collisions): remember
                            // them per port so the next proposal makes
                            // progress.
                            let partner_accepted_other = ctx.inbox().iter().any(|env| {
                                env.from == partner
                                    && matches!(env.msg, StrongMsg::Accept { to, .. } if to != me)
                            });
                            if !self.partner_was_inviting && !partner_accepted_other {
                                for &c in &colors {
                                    self.tried[port].insert(c);
                                }
                            }
                        }
                    }
                }
                if let Some(color) = self.newly_used {
                    ctx.broadcast(StrongMsg::Used { color });
                }
                if self.is_finished() {
                    self.state = "D";
                    NodeStatus::Done
                } else {
                    self.state = "E";
                    NodeStatus::Active
                }
            }
        }
    }

    fn on_link_down(&mut self, neighbor: VertexId) {
        // Both arcs of the dead link can never complete a handshake:
        // write them off so the node can finish its residual arcs and
        // terminate (paper line 2.28 counts only colorable arcs).
        let Some(p) = self.port_of(neighbor) else { return };
        if self.link_down[p] {
            return;
        }
        self.link_down[p] = true;
        if self.out_color[p].is_none() {
            self.uncolored_out.retain(|&q| q != p);
        }
        if self.in_color[p].is_none() {
            self.uncolored_in -= 1;
        }
    }
}

impl dima_sim::trace::StateLabel for StrongColoringNode {
    fn state_label(&self) -> &'static str {
        self.state
    }
}

/// The outcome of a strong-coloring run.
#[derive(Clone, Debug)]
pub struct StrongColoringResult {
    /// Channel per arc (indexed by [`ArcId`]), as committed by the tail.
    pub colors: Vec<Option<Color>>,
    /// Number of distinct channels used.
    pub colors_used: usize,
    /// Largest channel index used.
    pub max_color: Option<Color>,
    /// Computation rounds until the last node finished.
    pub compute_rounds: u64,
    /// Communication rounds (3 per computation round).
    pub comm_rounds: u64,
    /// Maximum degree Δ of the *underlying* graph (the paper's Δ).
    pub max_degree: usize,
    /// `true` iff tail and head committed the same channel on every arc
    /// (with crash faults, checked between surviving endpoints only).
    pub endpoint_agreement: bool,
    /// Simulator statistics.
    pub stats: RunStats,
    /// `alive[v]` iff node `v` was not crash-stopped by the fault plan.
    /// Verify residual colorings (crashed runs) with
    /// [`crate::verify::verify_residual_strong_coloring`].
    pub alive: Vec<bool>,
    /// Engine rounds spent by the reliable transport on retransmission
    /// and synchronization, on top of
    /// [`StrongColoringResult::comm_rounds`] (0 under
    /// [`crate::Transport::Bare`]).
    pub transport_overhead_rounds: u64,
}

/// Run Algorithm 2 on the symmetric digraph `d`.
///
/// Returns [`CoreError::Graph`] if `d` is not symmetric — the paper's
/// Proposition 5 (Case 2) relies on responders overhearing competing
/// invitations through the reverse arcs.
pub fn strong_color_digraph(
    d: &Digraph,
    cfg: &ColoringConfig,
) -> Result<StrongColoringResult, CoreError> {
    cfg.validate()?;
    d.require_symmetric()?;
    let delta = d.max_underlying_degree();
    let topo = Topology::from_digraph(d);
    let max_rounds = 3 * cfg.compute_round_budget(delta);
    let factory = |seed: NodeSeed<'_>| StrongColoringNode::new(&seed, d, cfg);
    let run = run_protocol(&topo, cfg, max_rounds, factory)?;
    let alive = run.alive();

    // Residual assembly: each arc takes its *tail's* committed channel
    // when the tail survived, the head's view when only the head did.
    // Tail/head agreement is meaningful between survivors only.
    let mut tail_view: Vec<Option<Color>> = vec![None; d.num_arcs()];
    let mut head_view: Vec<Option<Color>> = vec![None; d.num_arcs()];
    for node in &run.nodes {
        for (port, &c) in node.out_color.iter().enumerate() {
            tail_view[node.out_arcs[port].index()] = c;
        }
        for (port, &c) in node.in_color.iter().enumerate() {
            head_view[node.in_arcs[port].index()] = c;
        }
    }
    let mut colors: Vec<Option<Color>> = vec![None; d.num_arcs()];
    let mut endpoint_agreement = true;
    for (a, (u, v)) in d.arcs() {
        let (tail, head) = (tail_view[a.index()], head_view[a.index()]);
        // Arcs touching a crashed node are *withdrawn*, even if a
        // surviving endpoint had committed a channel: distance-2
        // conflicts are policed by the crashed node's `UpdateColors`
        // broadcasts, which died with it — a node two hops away may
        // legitimately reuse the channel later. (Plain edge coloring
        // keeps such colors: its constraints are all one-hop, enforced
        // by a then-alive endpoint at commit time.)
        colors[a.index()] = match (alive[u.index()], alive[v.index()]) {
            (true, true) => {
                endpoint_agreement &= tail == head;
                tail.or(head)
            }
            _ => None,
        };
    }

    let mut palette = ColorSet::new();
    for c in colors.iter().flatten() {
        palette.insert(*c);
    }
    let comm_rounds = run.stats.rounds - run.transport_overhead_rounds;
    Ok(StrongColoringResult {
        colors_used: palette.len(),
        max_color: palette.max(),
        colors,
        compute_rounds: Phase::compute_rounds(comm_rounds),
        comm_rounds,
        max_degree: delta,
        endpoint_agreement,
        stats: run.stats,
        alive,
        transport_overhead_rounds: run.transport_overhead_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Engine, Transport};
    use crate::verify::verify_strong_coloring;
    use dima_graph::gen::{erdos_renyi_avg_degree, structured};
    use dima_graph::Graph;
    use dima_sim::fault::FaultPlan;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_good(d: &Digraph, r: &StrongColoringResult) {
        assert!(r.endpoint_agreement, "tail/head disagree");
        verify_strong_coloring(d, &r.colors).unwrap();
    }

    #[test]
    fn single_symmetric_edge() {
        let g = structured::path(2);
        let d = Digraph::symmetric_closure(&g);
        let r = strong_color_digraph(&d, &ColoringConfig::seeded(1)).unwrap();
        assert_good(&d, &r);
        // The two directions conflict (reverse arcs): exactly 2 channels.
        assert_eq!(r.colors_used, 2);
    }

    #[test]
    fn rejects_asymmetric_digraph() {
        let d = Digraph::from_arcs(2, [(VertexId(0), VertexId(1))]).unwrap();
        let err = strong_color_digraph(&d, &ColoringConfig::seeded(1)).unwrap_err();
        assert!(matches!(err, CoreError::Graph(_)));
    }

    #[test]
    fn structured_families_color_correctly() {
        for (name, g) in [
            ("path5", structured::path(5)),
            ("cycle6", structured::cycle(6)),
            ("star7", structured::star(7)),
            ("grid", structured::grid(4, 4)),
            ("complete6", structured::complete(6)),
            ("petersen", structured::petersen()),
        ] {
            let d = Digraph::symmetric_closure(&g);
            let r = strong_color_digraph(&d, &ColoringConfig::seeded(5)).unwrap();
            assert_good(&d, &r);
            assert!(r.colors.iter().all(Option::is_some), "{name}: incomplete");
        }
    }

    #[test]
    fn random_er_digraphs_color_correctly() {
        // The paper's §IV-D workload, scaled down for unit tests.
        let mut rng = SmallRng::seed_from_u64(8);
        for seed in 0..4 {
            let g = erdos_renyi_avg_degree(60, 4.0, &mut rng).unwrap();
            let d = Digraph::symmetric_closure(&g);
            let r = strong_color_digraph(&d, &ColoringConfig::seeded(seed)).unwrap();
            assert_good(&d, &r);
        }
    }

    #[test]
    fn empty_digraph() {
        let d = Digraph::symmetric_closure(&Graph::empty(3));
        let r = strong_color_digraph(&d, &ColoringConfig::seeded(1)).unwrap();
        assert!(r.colors.is_empty());
        assert_eq!(r.colors_used, 0);
    }

    #[test]
    fn parallel_engine_bit_identical() {
        let g = structured::grid(5, 5);
        let d = Digraph::symmetric_closure(&g);
        let cfg = ColoringConfig::seeded(77);
        let seq = strong_color_digraph(&d, &cfg).unwrap();
        let par = strong_color_digraph(
            &d,
            &ColoringConfig { engine: Engine::Parallel { threads: 3 }, ..cfg },
        )
        .unwrap();
        assert_eq!(seq.colors, par.colors);
        assert_eq!(seq.comm_rounds, par.comm_rounds);
        assert_eq!(seq.stats.messages_sent, par.stats.messages_sent);
    }

    #[test]
    fn rounds_scale_with_delta_not_n() {
        let sparse_big = Digraph::symmetric_closure(&structured::cycle(200)); // Δ = 2
        let dense_small = Digraph::symmetric_closure(&structured::complete(12)); // Δ = 11
        let r1 = strong_color_digraph(&sparse_big, &ColoringConfig::seeded(6)).unwrap();
        let r2 = strong_color_digraph(&dense_small, &ColoringConfig::seeded(6)).unwrap();
        assert!(
            r1.compute_rounds < r2.compute_rounds,
            "cycle {} vs clique {}",
            r1.compute_rounds,
            r2.compute_rounds
        );
    }

    #[test]
    fn ablation_policies_still_correct() {
        let g = structured::grid(3, 4);
        let d = Digraph::symmetric_closure(&g);
        {
            let policy = ColorPolicy::RandomLegal;
            let cfg = ColoringConfig { color_policy: policy, ..ColoringConfig::seeded(3) };
            let r = strong_color_digraph(&d, &cfg).unwrap();
            assert_good(&d, &r);
        }
        for policy in [ResponsePolicy::FirstSender, ResponsePolicy::LowestColor] {
            let cfg = ColoringConfig { response_policy: policy, ..ColoringConfig::seeded(4) };
            let r = strong_color_digraph(&d, &cfg).unwrap();
            assert_good(&d, &r);
        }
    }

    #[test]
    fn reliable_transport_is_transparent_without_faults() {
        let g = structured::grid(4, 4);
        let d = Digraph::symmetric_closure(&g);
        let bare = strong_color_digraph(&d, &ColoringConfig::seeded(71)).unwrap();
        let arq = strong_color_digraph(
            &d,
            &ColoringConfig { transport: Transport::reliable(), ..ColoringConfig::seeded(71) },
        )
        .unwrap();
        assert_eq!(bare.colors, arq.colors);
        assert_eq!(bare.comm_rounds, arq.comm_rounds);
        assert!(arq.transport_overhead_rounds <= 3, "{}", arq.transport_overhead_rounds);
        assert_good(&d, &arq);
    }

    #[test]
    fn reliable_transport_survives_loss() {
        let g = structured::complete(7);
        let d = Digraph::symmetric_closure(&g);
        let bare = strong_color_digraph(&d, &ColoringConfig::seeded(73)).unwrap();
        let cfg = ColoringConfig {
            faults: FaultPlan::uniform(0.15),
            transport: Transport::reliable(),
            ..ColoringConfig::seeded(73)
        };
        let r = strong_color_digraph(&d, &cfg).unwrap();
        assert!(r.stats.dropped > 0, "the plan should actually drop messages");
        assert_eq!(r.colors, bare.colors);
        assert!(r.transport_overhead_rounds > 0);
        assert_good(&d, &r);
    }

    #[test]
    fn crashes_leave_proper_residual_strong_coloring() {
        let g = structured::complete(9);
        let d = Digraph::symmetric_closure(&g);
        let cfg = ColoringConfig {
            faults: FaultPlan { crash_spread: 1, ..FaultPlan::crashing(0.3, 0) },
            transport: Transport::reliable(),
            ..ColoringConfig::seeded(79)
        };
        let r = strong_color_digraph(&d, &cfg).unwrap();
        assert!(r.alive.iter().any(|&a| !a), "the plan should crash someone");
        assert!(r.endpoint_agreement);
        crate::verify::verify_residual_strong_coloring(&d, &r.colors, &r.alive).unwrap();
    }

    #[test]
    fn coloring_also_satisfies_cross_round_one_hop_exclusion() {
        // Stronger-than-required sanity: by construction, a color used at
        // a node is never reused by that node. Check per-node uniqueness
        // over incident arcs' *own* commitments (tail for out, head for
        // in) — the conservative palette rule implies it.
        let g = structured::complete(7);
        let d = Digraph::symmetric_closure(&g);
        let r = strong_color_digraph(&d, &ColoringConfig::seeded(10)).unwrap();
        assert_good(&d, &r);
        for v in d.vertices() {
            let mut seen = ColorSet::new();
            for &(_, a) in d.out_neighbors(v).iter().chain(d.in_neighbors(v)) {
                let c = r.colors[a.index()].unwrap();
                assert!(seen.insert(c), "node {v} reuses color {c}");
            }
        }
    }
}
