//! **Algorithm 2 (DiMa2ED)** — distributed matching-based distance-2 edge
//! coloring of symmetric digraphs.
//!
//! The model for channel / time-slot assignment in ad-hoc radio networks:
//! each directed link needs a channel distinct from every transmission
//! whose sender lies in interference range of its receiver (the paper's
//! Definition 2). The automata skeleton is Algorithm 1's, with two
//! crucial additions from Procedures 2-a/b/c:
//!
//! * each node's *usable* palette excludes every color used within one
//!   hop — its own colors plus everything its neighbors have announced
//!   (`UpdateColors`), and
//! * a responder in the `R` state filters the invitations addressed to it
//!   against the colors proposed in **overheard** invitations addressed
//!   to others (Procedure 2-b, line 8): because the digraph is symmetric,
//!   every same-round Definition-2 conflict is overheard by at least one
//!   of the two responders involved — that is exactly the paper's
//!   Proposition 5, Case 2.
//!
//! One computation round colors at most one *out*-arc per invitor (and
//! the corresponding in-arc at the responder); a node is done when all
//! its out- **and** in-arcs are colored (paper line 2.28).

use dima_graph::{ArcId, Digraph, Graph, VertexId};
use dima_sim::churn::{ChurnSchedule, NeighborhoodChange};
use dima_sim::telemetry::{NoopTracer, PaletteAction, Tracer};
use dima_sim::{NodeSeed, NodeStatus, Protocol, RoundCtx, RunStats, Topology};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::automata::{choose_role, pick_uniform, Phase, Role};
use crate::churn::{batch_reports, ChurnStrongResult};
use crate::config::{ColorPolicy, ColoringConfig, ResponsePolicy};
use crate::error::CoreError;
use crate::palette::{Color, ColorSet};
use crate::runner::{run_protocol_churn_traced, run_protocol_traced};

/// Messages of Algorithm 2. All broadcast — overhearing is what makes the
/// same-round conflict detection of Procedure 2-b work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrongMsg {
    /// Procedure 2-a's `⟨φ, v, u⟩`: sender proposes candidate channels
    /// for the arc `sender → to`. The paper sends exactly one channel
    /// (`proposal_width = 1`, the default); wider proposals are the ABL3
    /// extension.
    Invite {
        /// Intended responder (head of the arc).
        to: VertexId,
        /// Proposed channels, lowest first.
        colors: Vec<Color>,
    },
    /// Procedure 2-b's reply: sender (the responder) echoes the chosen
    /// invitation back to invitor `to`.
    Accept {
        /// The invitor whose proposal is accepted.
        to: VertexId,
        /// The agreed channel.
        color: Color,
    },
    /// `UpdateColors`: the sender has newly used `color`; neighbors must
    /// remove it from their usable lists.
    Used {
        /// The newly used channel.
        color: Color,
    },
    /// Churn repair: the sender announces every channel committed on its
    /// incident arcs — the batched form of the `UpdateColors`
    /// announcements the receiver missed while the link did not exist
    /// (new neighbors) or while it was parked (stale wake-ups, which set
    /// `reply`). Split by direction because for adjacent nodes the
    /// Definition-2 conflicts between committed channels are exactly
    /// *my out vs your in* and *my in vs your out*. Never sent without
    /// churn.
    Hello {
        /// Channels on the sender's out-arcs (tail side), ascending.
        out_used: Vec<Color>,
        /// Channels on the sender's in-arcs (head side), ascending.
        in_used: Vec<Color>,
        /// Ask the receiver to greet back: set by a node waking from the
        /// parked state, whose one-hop color knowledge went stale while
        /// it was dropping mail.
        reply: bool,
    },
    /// Churn repair: the sender has released the listed channels on the
    /// arcs it shares with the receiver. A churn-fresh link can put
    /// channels *committed before the link existed* into a Definition-2
    /// conflict; the smaller-id endpoint of the new link resolves it by
    /// uncoloring its clashing arcs and telling each affected partner to
    /// uncolor the matching side, after which the normal handshake
    /// recolors them. Never sent without churn.
    Release {
        /// Channels released on the sender ↔ receiver arc pair.
        colors: Vec<Color>,
    },
}

#[derive(Clone, Debug)]
struct Proposal {
    port: usize,
    colors: Vec<Color>,
}

/// An active conflict watch on one churn-fresh neighbor (see
/// `StrongColoringNode::release_watch`).
#[derive(Clone, Debug)]
struct ReleaseWatch {
    /// The new neighbor being policed.
    peer: VertexId,
    /// Rounds of watching left; the entry dies at 0.
    rounds_left: u32,
    /// Every channel the peer has announced (Hello or `UpdateColors`)
    /// while watched — checked against this node's own commits, including
    /// commits that land *after* the announcement (an invitor never
    /// re-checks its proposal against fresh announcements).
    announced: ColorSet,
}

/// Per-vertex automata state for Algorithm 2.
#[derive(Debug)]
pub struct StrongColoringNode {
    me: VertexId,
    /// Sorted (underlying) neighbor ids.
    neighbors: Vec<VertexId>,
    /// Out-arc `me → neighbors[p]`.
    out_arcs: Vec<ArcId>,
    /// In-arc `neighbors[p] → me`.
    in_arcs: Vec<ArcId>,
    out_color: Vec<Option<Color>>,
    in_color: Vec<Option<Color>>,
    /// Ports with uncolored out-arcs (what this node can still invite
    /// for).
    uncolored_out: Vec<usize>,
    /// In-arcs still uncolored (counted for termination).
    uncolored_in: usize,
    /// Ports whose link was declared dead (peer presumed crashed); their
    /// arcs are written off for termination purposes.
    link_down: Vec<bool>,
    /// Colors unusable here: own used ∪ everything neighbors announced.
    forbidden: ColorSet,
    /// Per-port retry memory: colors this node proposed on the port while
    /// the partner was a *silent listener* — i.e. the partner provably
    /// received the invitation, was in the `L`/`R` states, and accepted
    /// nothing, which (Procedure 2-b) means the color was unusable at the
    /// partner or collided with an overheard proposal. One-hop knowledge
    /// cannot reveal *which* colors a two-hops-away node holds, so
    /// without this memory the lowest-available rule can re-propose the
    /// same doomed color forever (a genuine livelock of the paper's
    /// pseudocode as written; see `DESIGN.md`).
    tried: Vec<ColorSet>,
    role: Role,
    proposal: Option<Proposal>,
    /// Whether the current round partner was overheard inviting (set in
    /// the wait step; an inviting partner was not listening, so a missing
    /// reply says nothing about the proposed color).
    partner_was_inviting: bool,
    newly_used: Option<Color>,
    invite_probability: f64,
    color_policy: ColorPolicy,
    response_policy: ResponsePolicy,
    proposal_width: usize,
    /// Neighbors that still owe a [`StrongMsg::Hello`] greeting, with the
    /// reply-wanted flag (set when this node woke from the parked state
    /// and must refresh its knowledge of the peer's channels).
    pending_hello: Vec<(VertexId, bool)>,
    /// Rounds left in which this node must not *invite*: set on waking
    /// from the parked state, long enough for the refresh Hello round
    /// trip — proposals made from stale one-hop knowledge could commit a
    /// channel a neighbor took while this node was dropping mail.
    refresh: u32,
    /// Churn-fresh neighbors this node polices for Definition-2 clashes
    /// against its own committed channels (the smaller-id endpoint of
    /// each new link only). The watch covers the window in which the new
    /// neighbor can still announce channels chosen before it learned this
    /// node's — afterwards both sides' `forbidden` sets and the
    /// Proposition-5 overhearing argument make fresh clashes impossible.
    release_watch: Vec<ReleaseWatch>,
    /// Rounds a finished node stays up (as a silent listener) after a
    /// churn batch gave it new links: its `release_watch` entries only
    /// tick while it is stepped, and a watched peer's `UpdateColors` is
    /// not wake-class — parking early would blind the watch. Decremented
    /// at the park gates, 0 in static runs.
    vigil: u32,
    /// Automata state after the last round (for state censuses).
    state: &'static str,
}

/// Placeholder arc id for ports created by churn: the stored arc ids
/// index the *initial* digraph and only serve the static assembly path
/// ([`strong_color_digraph`]); churn runs assemble via ports against the
/// final digraph and never read them.
const NO_ARC: ArcId = ArcId(u32::MAX);

impl StrongColoringNode {
    pub(crate) fn new(seed: &NodeSeed<'_>, d: &Digraph, cfg: &ColoringConfig) -> Self {
        let me = seed.node;
        // Ports without an arc in `d` can only come from churn (a join
        // node attached to post-batch links): map them to the sentinel.
        let out_arcs: Vec<ArcId> =
            seed.neighbors.iter().map(|&w| d.arc_between(me, w).unwrap_or(NO_ARC)).collect();
        let in_arcs: Vec<ArcId> =
            seed.neighbors.iter().map(|&w| d.arc_between(w, me).unwrap_or(NO_ARC)).collect();
        let degree = seed.neighbors.len();
        StrongColoringNode {
            me,
            neighbors: seed.neighbors.to_vec(),
            out_arcs,
            in_arcs,
            out_color: vec![None; degree],
            in_color: vec![None; degree],
            uncolored_out: (0..degree).collect(),
            uncolored_in: degree,
            link_down: vec![false; degree],
            forbidden: ColorSet::new(),
            tried: vec![ColorSet::new(); degree],
            role: Role::Listener,
            proposal: None,
            partner_was_inviting: false,
            newly_used: None,
            invite_probability: cfg.invite_probability,
            color_policy: cfg.color_policy,
            response_policy: cfg.response_policy,
            proposal_width: cfg.proposal_width,
            pending_hello: Vec::new(),
            refresh: 0,
            release_watch: Vec::new(),
            vigil: 0,
            state: "C",
        }
    }

    fn port_of(&self, v: VertexId) -> Option<usize> {
        self.neighbors.binary_search(&v).ok()
    }

    /// Overwrite this node's committed channels after a history-
    /// compaction rebase (`ColoringService` folds the replay prefix into
    /// a materialized topology and rebuilds every node fresh, handing
    /// each one back the channels it had already converged to). Only
    /// sound while the node is parked: at quiescence no proposal or
    /// exchange is in flight. `out`/`inc` are port-aligned with the
    /// (sorted) neighbor list; `forbidden` must hold this node's own
    /// channels plus every channel committed in its one-hop
    /// neighborhood — exactly the exclusion set the automata would have
    /// accumulated through `Used`/`Hello` traffic on the way to this
    /// coloring, so future repairs propose from the same knowledge.
    pub(crate) fn adopt_rebase(
        &mut self,
        out: &[Option<Color>],
        inc: &[Option<Color>],
        forbidden: ColorSet,
    ) {
        debug_assert_eq!(out.len(), self.neighbors.len());
        debug_assert_eq!(inc.len(), self.neighbors.len());
        self.out_color.copy_from_slice(out);
        self.in_color.copy_from_slice(inc);
        self.uncolored_out = (0..out.len()).filter(|&p| out[p].is_none()).collect();
        self.uncolored_in = inc.iter().filter(|c| c.is_none()).count();
        self.forbidden = forbidden;
    }

    /// Channel committed on the out-arc `me → v`, if any — the query
    /// side of the long-running service.
    pub(crate) fn out_color_toward(&self, v: VertexId) -> Option<Color> {
        self.port_of(v).and_then(|p| self.out_color[p])
    }

    /// Every channel committed on this node's own arcs (both
    /// directions), ascending.
    pub(crate) fn palette(&self) -> Vec<Color> {
        let (out, inc) = self.own_used_split();
        let set: ColorSet = out.into_iter().chain(inc).collect();
        set.iter().collect()
    }

    fn is_finished(&self) -> bool {
        self.uncolored_out.is_empty() && self.uncolored_in == 0
    }

    /// Channels committed on this node's own arcs, split tail/head side —
    /// the payload of a [`StrongMsg::Hello`] greeting.
    fn own_used_split(&self) -> (Vec<Color>, Vec<Color>) {
        let out: ColorSet = self.out_color.iter().flatten().copied().collect();
        let inc: ColorSet = self.in_color.iter().flatten().copied().collect();
        (out.iter().collect(), inc.iter().collect())
    }

    /// Record channels a watched churn-fresh neighbor announced; `true`
    /// iff `v` is currently watched (the caller then clash-scans).
    fn note_announcement(&mut self, v: VertexId, colors: &[Color]) -> bool {
        let mut watched = false;
        for w in self.release_watch.iter_mut().filter(|w| w.peer == v) {
            for &c in colors {
                w.announced.insert(c);
            }
            watched = true;
        }
        watched
    }

    /// Whether any watched churn-fresh neighbor has announced `color`.
    fn watched_clash(&self, color: Color) -> bool {
        self.release_watch.iter().any(|w| w.announced.contains(color))
    }

    /// Release own committed channels that clash with a neighbor's
    /// announcement: out-arc channels in `out_clash`, in-arc channels in
    /// `in_clash`. For adjacent nodes, *my out vs your in* and *my in vs
    /// your out* pairs are Definition-2 conflicts unconditionally, so a
    /// hit here is a real violation; releasing the arc — and telling its
    /// partner via [`StrongMsg::Release`] — lets the normal handshake
    /// recolor it. Released channels stay in `forbidden`, so they cannot
    /// be re-picked into the same clash.
    fn release_conflicts(
        &mut self,
        out_clash: &ColorSet,
        in_clash: &ColorSet,
        notes: &mut Vec<(usize, Vec<Color>)>,
    ) {
        for p in 0..self.neighbors.len() {
            let mut freed: Vec<Color> = Vec::new();
            if let Some(c) = self.out_color[p] {
                if out_clash.contains(c) {
                    self.out_color[p] = None;
                    if !self.link_down[p] {
                        self.uncolored_out.push(p);
                    }
                    freed.push(c);
                }
            }
            if let Some(c) = self.in_color[p] {
                if in_clash.contains(c) {
                    self.in_color[p] = None;
                    if !self.link_down[p] {
                        self.uncolored_in += 1;
                    }
                    freed.push(c);
                }
            }
            if !freed.is_empty() {
                notes.push((p, freed));
            }
        }
    }

    /// "Choose an open channel φ for v" (Procedure 2-a), generalised to
    /// `proposal_width` candidates: the lowest colors neither forbidden
    /// here nor already refused on this port (or random legal ones under
    /// the ablation policy).
    fn propose_colors(&self, port: usize, rng: &mut SmallRng) -> Vec<Color> {
        let width = self.proposal_width.max(1);
        match self.color_policy {
            ColorPolicy::LowestIndex => {
                let mut out = Vec::with_capacity(width);
                let mut scratch = self.tried[port].clone();
                for _ in 0..width {
                    let c = self.forbidden.first_absent_in_union(&scratch);
                    scratch.insert(c);
                    out.push(c);
                }
                out
            }
            ColorPolicy::RandomLegal => {
                let bound = self
                    .forbidden
                    .max()
                    .into_iter()
                    .chain(self.tried[port].max())
                    .map(|c| c.0 + 1 + width as u32)
                    .max()
                    .unwrap_or(width as u32);
                // Sampling without replacement below needs positional
                // `swap_remove`, so this path keeps one scratch `Vec` —
                // filled from the lazy gap iterator rather than a probe
                // per candidate color.
                let mut legal: Vec<Color> = self
                    .forbidden
                    .absent_below(bound)
                    .filter(|&c| !self.tried[port].contains(c))
                    .collect();
                let mut out = Vec::with_capacity(width);
                for _ in 0..width.min(legal.len().max(1)) {
                    if legal.is_empty() {
                        break;
                    }
                    let i = rng.random_range(0..legal.len());
                    out.push(legal.swap_remove(i));
                }
                if out.is_empty() {
                    out.push(self.forbidden.first_absent_in_union(&self.tried[port]));
                }
                out.sort_unstable();
                out
            }
        }
    }

    fn use_color(&mut self, color: Color) {
        self.forbidden.insert(color);
        self.newly_used = Some(color);
    }
}

impl Protocol for StrongColoringNode {
    type Msg = StrongMsg;

    fn kind_of(msg: &StrongMsg) -> &'static str {
        match msg {
            StrongMsg::Invite { .. } => "invite",
            StrongMsg::Accept { .. } => "accept",
            StrongMsg::Used { .. } => "used",
            StrongMsg::Hello { .. } => "hello",
            StrongMsg::Release { .. } => "release",
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, StrongMsg>) -> NodeStatus {
        // Repair prelude (see the edge-coloring twin): under churn,
        // `UpdateColors` flushes and `Hello` greetings can land at any
        // phase — ingest them before the phase logic. Static runs only
        // see `Used` here, at the invite step, so the paper's schedule is
        // unchanged.
        let was_finished = self.is_finished();
        let mut release_notes: Vec<(usize, Vec<Color>)> = Vec::new();
        let mut clashes: Vec<(ColorSet, ColorSet)> = Vec::new();
        let mut greet_back: Vec<VertexId> = Vec::new();
        // Channels uncolored on a partner's request (telemetry only; the
        // inbox borrow forbids emitting inside the loop).
        let mut partner_released: Vec<(Color, VertexId)> = Vec::new();
        for env in ctx.inbox() {
            match env.msg() {
                StrongMsg::Used { color } => {
                    self.forbidden.insert(*color);
                    if self.note_announcement(env.from, std::slice::from_ref(color)) {
                        // A channel announced by a churn-fresh neighbor
                        // may clash with channels committed here before
                        // the link existed. The `Used` message does not
                        // say which side committed, so clash both ways —
                        // unless the announcement is the sender's side of
                        // an arc *we share* (its commit for our own
                        // handshake): an arc never clashes with itself.
                        let shared = self.port_of(env.from).is_some_and(|p| {
                            self.out_color[p] == Some(*color) || self.in_color[p] == Some(*color)
                        });
                        if !shared {
                            let c: ColorSet = [*color].into_iter().collect();
                            clashes.push((c.clone(), c));
                        }
                    }
                }
                StrongMsg::Hello { out_used, in_used, reply } => {
                    for &c in out_used.iter().chain(in_used) {
                        self.forbidden.insert(c);
                    }
                    let mut all = out_used.clone();
                    all.extend_from_slice(in_used);
                    self.note_announcement(env.from, &all);
                    // My out vs their in and my in vs their out are
                    // unconditional Definition-2 conflicts between
                    // adjacent nodes: any hit is a real violation (a
                    // channel committed while this link was missing or
                    // while one side was parked) and must be released.
                    // The arcs *shared* with the sender appear on both
                    // sides of the comparison under their agreed channel
                    // — an arc is not in conflict with itself, so drop
                    // those channels from the clash sets (per-node
                    // channel uniqueness makes the removal exact).
                    let mut out_clash: ColorSet = in_used.iter().copied().collect();
                    let mut in_clash: ColorSet = out_used.iter().copied().collect();
                    if let Some(p) = self.port_of(env.from) {
                        if let Some(c) = self.out_color[p] {
                            out_clash.remove(c);
                        }
                        if let Some(c) = self.in_color[p] {
                            in_clash.remove(c);
                        }
                    }
                    clashes.push((out_clash, in_clash));
                    if *reply {
                        greet_back.push(env.from);
                    }
                }
                StrongMsg::Release { colors } => {
                    // A partner released its side of our shared arcs:
                    // uncolor the matching side here and let the normal
                    // handshake recolor it.
                    if let Some(p) = self.port_of(env.from) {
                        for &c in colors {
                            if self.out_color[p] == Some(c) {
                                self.out_color[p] = None;
                                if !self.link_down[p] {
                                    self.uncolored_out.push(p);
                                }
                                partner_released.push((c, env.from));
                            }
                            if self.in_color[p] == Some(c) {
                                self.in_color[p] = None;
                                if !self.link_down[p] {
                                    self.uncolored_in += 1;
                                }
                                partner_released.push((c, env.from));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        self.pending_hello.extend(greet_back.into_iter().map(|w| (w, false)));
        for (out_clash, in_clash) in clashes {
            self.release_conflicts(&out_clash, &in_clash, &mut release_notes);
        }
        for (c, w) in partner_released {
            ctx.trace_palette(PaletteAction::Released, c.0, w);
        }
        for (p, colors) in release_notes {
            for &c in &colors {
                ctx.trace_palette(PaletteAction::Released, c.0, self.neighbors[p]);
            }
            ctx.send(self.neighbors[p], StrongMsg::Release { colors });
        }
        if was_finished && !self.is_finished() {
            // A Release (or clash) just re-opened arcs on a finished node
            // — possibly one that a wake-class message pulled out of the
            // parked state, where it was dropping every `UpdateColors`
            // broadcast. Before recoloring, refresh one-hop knowledge the
            // same way a batch wake-up does: re-greet every neighbor
            // asking for their channels back, and stand down from any
            // role until the replies are in.
            self.refresh = 3;
            self.role = Role::Listener;
            self.proposal = None;
            self.state = "C";
            self.pending_hello = self.neighbors.iter().map(|&w| (w, true)).collect();
        }
        self.release_watch.retain_mut(|w| {
            w.rounds_left -= 1;
            w.rounds_left > 0
        });
        self.refresh = self.refresh.saturating_sub(1);
        for (w, reply) in std::mem::take(&mut self.pending_hello) {
            if self.port_of(w).is_some() {
                let (out_used, in_used) = self.own_used_split();
                ctx.send(w, StrongMsg::Hello { out_used, in_used, reply });
            }
        }
        match Phase::of_round(ctx.round()) {
            Phase::InviteStep => {
                if self.is_finished() {
                    // Reached by isolated vertices in round 0 and by nodes
                    // whose last uncolored arcs were removed by churn: a
                    // commit may still await its `UpdateColors` — flush it.
                    if let Some(color) = self.newly_used.take() {
                        ctx.broadcast(StrongMsg::Used { color });
                    }
                    if self.vigil > 0 {
                        // Churn recently touched this neighborhood: stay
                        // up as a silent listener so a partner's Release
                        // can still reach us (parked nodes drop mail).
                        self.vigil -= 1;
                        self.role = Role::Listener;
                        self.proposal = None;
                        self.state = "L";
                        ctx.trace_state("L", "vigil");
                        return NodeStatus::Active;
                    }
                    self.state = "D";
                    ctx.trace_state("D", "all-colored");
                    return NodeStatus::Done;
                }
                self.proposal = None;
                self.partner_was_inviting = false;
                self.newly_used = None;
                // A node with nothing left to invite for still listens —
                // its remaining in-arcs are colored by its neighbors'
                // invitations. A node still refreshing stale knowledge
                // after waking from the parked state must not invite yet
                // (it could propose a channel a neighbor took while this
                // node was dropping mail); `refresh` is 0 in static runs.
                self.role = if self.uncolored_out.is_empty() || self.refresh > 0 {
                    Role::Listener
                } else {
                    choose_role(ctx.rng(), self.invite_probability)
                };
                if self.role == Role::Invitor {
                    // Non-empty by the role choice above; degrade to
                    // listening rather than panic if that ever breaks.
                    let Some(&port) = pick_uniform(ctx.rng(), &self.uncolored_out) else {
                        self.role = Role::Listener;
                        self.state = "L";
                        ctx.trace_state("L", "no-edge");
                        return NodeStatus::Active;
                    };
                    let colors = self.propose_colors(port, ctx.rng());
                    self.proposal = Some(Proposal { port, colors: colors.clone() });
                    for &c in &colors {
                        ctx.trace_palette(PaletteAction::Proposed, c.0, self.neighbors[port]);
                    }
                    ctx.broadcast(StrongMsg::Invite { to: self.neighbors[port], colors });
                }
                self.state = if self.role == Role::Invitor { "I" } else { "L" };
                ctx.trace_state(self.state, "coin");
                NodeStatus::Active
            }
            Phase::RespondStep => {
                if self.role == Role::Invitor {
                    // W state: while waiting, overhear whether the round
                    // partner itself invited (then it was not listening
                    // and a missing reply carries no color information).
                    if let Some(Proposal { port, .. }) = &self.proposal {
                        let partner = self.neighbors[*port];
                        self.partner_was_inviting = ctx.inbox().iter().any(|env| {
                            env.from == partner && matches!(*env.msg(), StrongMsg::Invite { .. })
                        });
                    }
                }
                if self.role == Role::Listener && self.refresh == 0 {
                    // (A node still refreshing stale knowledge must not
                    // *accept* either: a responder commits on the spot,
                    // and its `forbidden` may be missing channels that
                    // neighbors took while it was parked. 0 in static
                    // runs, so the paper's responder is unchanged.)
                    let me = self.me;
                    // Procedure 2-b: split into mine[] and other[].
                    let mut mine: Vec<(VertexId, &Vec<Color>)> = Vec::new();
                    let mut other_colors = ColorSet::new();
                    for env in ctx.inbox() {
                        if let StrongMsg::Invite { to, colors } = env.msg() {
                            if *to == me {
                                mine.push((env.from, colors));
                            } else {
                                for &c in colors {
                                    other_colors.insert(c);
                                }
                            }
                        }
                    }
                    // For each invitation keep its lowest channel that is
                    // usable here *and* free of overheard collisions
                    // (line 2-b.8). The in-arc guard is vacuous under
                    // reliable delivery; it keeps fault-injected desyncs
                    // from double-coloring.
                    let candidates: Vec<(VertexId, usize, Color)> = mine
                        .into_iter()
                        .filter_map(|(from, colors)| {
                            let port = self
                                .port_of(from)
                                .filter(|&p| self.in_color[p].is_none() && !self.link_down[p])?;
                            colors
                                .iter()
                                .copied()
                                .find(|&c| !self.forbidden.contains(c) && !other_colors.contains(c))
                                .map(|c| (from, port, c))
                        })
                        .collect();
                    let chosen = match self.response_policy {
                        ResponsePolicy::Random => pick_uniform(ctx.rng(), &candidates).copied(),
                        ResponsePolicy::FirstSender => candidates.first().copied(),
                        ResponsePolicy::LowestColor => {
                            candidates.iter().copied().min_by_key(|&(_, _, c)| c)
                        }
                    };
                    if let Some((partner, port, color)) = chosen {
                        ctx.broadcast(StrongMsg::Accept { to: partner, color });
                        // U_i: color the incoming arc from the round
                        // partner.
                        debug_assert!(self.in_color[port].is_none());
                        self.in_color[port] = Some(color);
                        self.uncolored_in -= 1;
                        self.use_color(color);
                        ctx.trace_palette(PaletteAction::Committed, color.0, partner);
                    }
                }
                self.state = if self.role == Role::Invitor { "W" } else { "R" };
                ctx.trace_state(self.state, "await");
                NodeStatus::Active
            }
            Phase::ExchangeStep => {
                // U_o: the invitor looks for the echo of its proposal.
                if self.role == Role::Invitor {
                    if let Some(Proposal { port, colors }) = self.proposal.take() {
                        let partner = self.neighbors[port];
                        let me = self.me;
                        let accepted = ctx.inbox().iter().find_map(|env| {
                            if env.from != partner {
                                return None;
                            }
                            match *env.msg() {
                                StrongMsg::Accept { to, color: c }
                                    if to == me && colors.contains(&c) =>
                                {
                                    Some(c)
                                }
                                _ => None,
                            }
                        });
                        if let Some(color) = accepted {
                            debug_assert!(self.out_color[port].is_none());
                            self.out_color[port] = Some(color);
                            self.uncolored_out.retain(|&p| p != port);
                            self.use_color(color);
                            ctx.trace_palette(PaletteAction::Committed, color.0, partner);
                            if self.watched_clash(color) {
                                // The proposal predates a churn-fresh
                                // neighbor's announcement of this channel
                                // (an invitor never re-checks). The
                                // responder has already committed, so
                                // honor the handshake symmetrically:
                                // commit, then release both sides for
                                // recoloring. The channel stays in
                                // `forbidden`, so it cannot be re-picked
                                // into the same clash.
                                self.out_color[port] = None;
                                self.uncolored_out.push(port);
                                ctx.trace_palette(PaletteAction::Released, color.0, partner);
                                ctx.send(partner, StrongMsg::Release { colors: vec![color] });
                            }
                        } else {
                            // The proposal died this round, whatever the
                            // cause (contention or rejection).
                            for &c in &colors {
                                ctx.trace_palette(PaletteAction::Conflicted, c.0, partner);
                            }
                            // No reply. If the partner was overheard
                            // accepting someone else's invitation this
                            // round, or was inviting itself, the failure
                            // is pure contention — retry the same colors
                            // later. If the partner was a *silent
                            // listener*, Procedure 2-b rejected every
                            // proposed channel at the partner (unusable
                            // there, or overheard collisions): remember
                            // them per port so the next proposal makes
                            // progress.
                            let partner_accepted_other = ctx.inbox().iter().any(|env| {
                                env.from == partner
                                    && matches!(*env.msg(), StrongMsg::Accept { to, .. } if to != me)
                            });
                            if !self.partner_was_inviting && !partner_accepted_other {
                                for &c in &colors {
                                    self.tried[port].insert(c);
                                }
                            }
                        }
                    }
                }
                if let Some(color) = self.newly_used.take() {
                    ctx.broadcast(StrongMsg::Used { color });
                }
                if self.is_finished() {
                    if self.vigil > 0 {
                        self.vigil -= 1;
                        self.state = "E";
                        ctx.trace_state("E", "vigil");
                        NodeStatus::Active
                    } else {
                        self.state = "D";
                        ctx.trace_state("D", "all-colored");
                        NodeStatus::Done
                    }
                } else {
                    self.state = "E";
                    ctx.trace_state("E", "exchange");
                    NodeStatus::Active
                }
            }
        }
    }

    fn wakes(msg: &StrongMsg) -> bool {
        // Repair traffic that *must* reach parked nodes: an uncolor
        // request re-opens committed arcs on the receiver, and a
        // reply-requesting greeting is how a stale wake-up rebuilds its
        // one-hop knowledge — both are meaningless if the (parked,
        // mail-dropping) partner never hears them. Neither is ever sent
        // in a static run, so static termination semantics are untouched.
        matches!(msg, StrongMsg::Release { .. } | StrongMsg::Hello { reply: true, .. })
    }

    fn on_link_down(&mut self, neighbor: VertexId) {
        // Both arcs of the dead link can never complete a handshake:
        // write them off so the node can finish its residual arcs and
        // terminate (paper line 2.28 counts only colorable arcs).
        let Some(p) = self.port_of(neighbor) else { return };
        if self.link_down[p] {
            return;
        }
        self.link_down[p] = true;
        if self.out_color[p].is_none() {
            self.uncolored_out.retain(|&q| q != p);
        }
        if self.in_color[p].is_none() {
            self.uncolored_in -= 1;
        }
    }

    fn on_topology_change(
        &mut self,
        seed: NodeSeed<'_>,
        change: &NeighborhoodChange,
    ) -> NodeStatus {
        let was_parked = self.state == "D";
        let new_neighbors = seed.neighbors.to_vec();
        let n_new = new_neighbors.len();
        // Remap per-port state; churn-created ports get sentinel arc ids
        // (never read — churn assembly goes via ports).
        let mut out_arcs = vec![NO_ARC; n_new];
        let mut in_arcs = vec![NO_ARC; n_new];
        let mut out_color = vec![None; n_new];
        let mut in_color = vec![None; n_new];
        let mut link_down = vec![false; n_new];
        let mut tried = vec![ColorSet::new(); n_new];
        for (np, &w) in new_neighbors.iter().enumerate() {
            if let Some(op) = self.port_of(w) {
                out_arcs[np] = self.out_arcs[op];
                in_arcs[np] = self.in_arcs[op];
                out_color[np] = self.out_color[op];
                in_color[np] = self.in_color[op];
                link_down[np] = self.link_down[op];
                tried[np] = std::mem::take(&mut self.tried[op]);
            }
        }
        // A pending proposal follows its neighbor to the new port index;
        // it dies only with its arc (see the edge-coloring twin).
        self.proposal = self.proposal.take().and_then(|p| {
            let w = self.neighbors[p.port];
            new_neighbors.binary_search(&w).ok().map(|np| Proposal { port: np, colors: p.colors })
        });
        self.neighbors = new_neighbors;
        self.out_arcs = out_arcs;
        self.in_arcs = in_arcs;
        self.out_color = out_color;
        self.in_color = in_color;
        self.link_down = link_down;
        self.tried = tried;
        self.uncolored_out =
            (0..n_new).filter(|&p| self.out_color[p].is_none() && !self.link_down[p]).collect();
        self.uncolored_in =
            (0..n_new).filter(|&p| self.in_color[p].is_none() && !self.link_down[p]).count();
        // `forbidden` is kept as-is: it over-approximates the distance-2
        // constraint after removals (releasing a neighbor's colors would
        // need the two-hop knowledge the model denies us), which is safe —
        // it can only inflate the palette, never break Definition 2.
        if was_parked && !self.is_finished() {
            // Parked nodes drop mail: every `UpdateColors` broadcast
            // while this node was done is lost, so its one-hop knowledge
            // may be stale. Since the batch re-opened arcs here, re-greet
            // *every* neighbor asking for their current channels back,
            // and hold off inviting (`refresh`) until the replies are in.
            // (A still-finished wake-up skips this: if a Release later
            // re-opens one of its arcs, the wake path in the round
            // prelude runs the same refresh then.)
            self.refresh = 3;
            self.pending_hello = self.neighbors.iter().map(|&w| (w, true)).collect();
        } else if !was_parked {
            self.pending_hello.extend(change.added.iter().map(|&w| (w, false)));
        }
        // The smaller-id endpoint of each new link polices Definition-2
        // clashes between channels committed before the link existed (the
        // larger side's are all announced through Hello / in-flight
        // `UpdateColors` within this window — see the prelude).
        for &w in &change.added {
            if self.me < w {
                self.release_watch.push(ReleaseWatch {
                    peer: w,
                    rounds_left: 5,
                    announced: ColorSet::new(),
                });
            }
        }
        // A watcher must stay up through its whole watch window — the
        // watched peer's `UpdateColors` broadcasts are not wake-class
        // (the engines cannot know who watches whom), so a parked
        // watcher would miss the clash it exists to catch. 8 engine
        // rounds (two per park gate) comfortably outlast the 5-round
        // watch plus a Release round trip. Nodes without new links don't
        // watch and need no vigil: wake-class messages reach them parked.
        if !change.added.is_empty() {
            self.vigil = 8;
        }
        if was_parked {
            self.role = Role::Listener;
            self.proposal = None;
        }
        if !self.is_finished() {
            self.state = "C";
            NodeStatus::Active
        } else if self.newly_used.is_some() || !self.pending_hello.is_empty() || self.vigil > 0 {
            // Stay up to flush pending `UpdateColors` / greetings and to
            // keep vigil; the park gates re-park the node afterwards.
            NodeStatus::Active
        } else {
            self.state = "D";
            NodeStatus::Done
        }
    }
}

impl dima_sim::trace::StateLabel for StrongColoringNode {
    fn state_label(&self) -> &'static str {
        self.state
    }
}

/// The outcome of a strong-coloring run.
#[derive(Clone, Debug)]
pub struct StrongColoringResult {
    /// Channel per arc (indexed by [`ArcId`]), as committed by the tail.
    pub colors: Vec<Option<Color>>,
    /// Number of distinct channels used.
    pub colors_used: usize,
    /// Largest channel index used.
    pub max_color: Option<Color>,
    /// Computation rounds until the last node finished.
    pub compute_rounds: u64,
    /// Communication rounds (3 per computation round).
    pub comm_rounds: u64,
    /// Maximum degree Δ of the *underlying* graph (the paper's Δ).
    pub max_degree: usize,
    /// `true` iff tail and head committed the same channel on every arc
    /// (with crash faults, checked between surviving endpoints only).
    pub endpoint_agreement: bool,
    /// Simulator statistics.
    pub stats: RunStats,
    /// `alive[v]` iff node `v` was not crash-stopped by the fault plan.
    /// Verify residual colorings (crashed runs) with
    /// [`crate::verify::verify_residual_strong_coloring`].
    pub alive: Vec<bool>,
    /// Engine rounds spent by the reliable transport on retransmission
    /// and synchronization, on top of
    /// [`StrongColoringResult::comm_rounds`] (0 under
    /// [`crate::Transport::Bare`]).
    pub transport_overhead_rounds: u64,
}

/// Run Algorithm 2 on the symmetric digraph `d`.
///
/// Returns [`CoreError::Graph`] if `d` is not symmetric — the paper's
/// Proposition 5 (Case 2) relies on responders overhearing competing
/// invitations through the reverse arcs.
pub fn strong_color_digraph(
    d: &Digraph,
    cfg: &ColoringConfig,
) -> Result<StrongColoringResult, CoreError> {
    strong_color_digraph_traced(d, cfg, &mut NoopTracer)
}

/// [`strong_color_digraph`] with telemetry fed to `tracer` (see
/// [`dima_sim::telemetry`]). With [`NoopTracer`] the tracing branches
/// monomorphize away and this *is* [`strong_color_digraph`].
pub fn strong_color_digraph_traced<T: Tracer + Sync>(
    d: &Digraph,
    cfg: &ColoringConfig,
    tracer: &mut T,
) -> Result<StrongColoringResult, CoreError> {
    cfg.validate()?;
    d.require_symmetric()?;
    let delta = d.max_underlying_degree();
    let topo = Topology::from_digraph(d);
    let max_rounds = 3 * cfg.compute_round_budget(delta);
    let factory = |seed: NodeSeed<'_>| StrongColoringNode::new(&seed, d, cfg);
    let run = run_protocol_traced(&topo, cfg, max_rounds, factory, tracer)?;
    let alive = run.alive();

    // Residual assembly: each arc takes its *tail's* committed channel
    // when the tail survived, the head's view when only the head did.
    // Tail/head agreement is meaningful between survivors only.
    let mut tail_view: Vec<Option<Color>> = vec![None; d.num_arcs()];
    let mut head_view: Vec<Option<Color>> = vec![None; d.num_arcs()];
    for node in &run.nodes {
        for (port, &c) in node.out_color.iter().enumerate() {
            tail_view[node.out_arcs[port].index()] = c;
        }
        for (port, &c) in node.in_color.iter().enumerate() {
            head_view[node.in_arcs[port].index()] = c;
        }
    }
    let mut colors: Vec<Option<Color>> = vec![None; d.num_arcs()];
    let mut endpoint_agreement = true;
    for (a, (u, v)) in d.arcs() {
        let (tail, head) = (tail_view[a.index()], head_view[a.index()]);
        // Arcs touching a crashed node are *withdrawn*, even if a
        // surviving endpoint had committed a channel: distance-2
        // conflicts are policed by the crashed node's `UpdateColors`
        // broadcasts, which died with it — a node two hops away may
        // legitimately reuse the channel later. (Plain edge coloring
        // keeps such colors: its constraints are all one-hop, enforced
        // by a then-alive endpoint at commit time.)
        colors[a.index()] = match (alive[u.index()], alive[v.index()]) {
            (true, true) => {
                endpoint_agreement &= tail == head;
                tail.or(head)
            }
            _ => None,
        };
    }

    let mut palette = ColorSet::new();
    for c in colors.iter().flatten() {
        palette.insert(*c);
    }
    let comm_rounds = run.stats.rounds - run.transport_overhead_rounds;
    Ok(StrongColoringResult {
        colors_used: palette.len(),
        max_color: palette.max(),
        colors,
        compute_rounds: Phase::compute_rounds(comm_rounds),
        comm_rounds,
        max_degree: delta,
        endpoint_agreement,
        stats: run.stats,
        alive,
        transport_overhead_rounds: run.transport_overhead_rounds,
    })
}

/// Run Algorithm 2 on the symmetric closure of `g0` under a churn
/// schedule, repairing the channel assignment incrementally after each
/// batch (see [`crate::edge_coloring::color_edges_churn`] — the repair
/// machinery is the same; this variant additionally re-announces used
/// channels over churn-fresh links via [`StrongMsg::Hello`]).
///
/// The result is indexed by the arcs of the **final** graph's symmetric
/// closure; verify it there. Bare transport only.
pub fn strong_color_churn(
    g0: &Graph,
    schedule: &ChurnSchedule,
    cfg: &ColoringConfig,
) -> Result<ChurnStrongResult, CoreError> {
    strong_color_churn_traced(g0, schedule, cfg, &mut NoopTracer)
}

/// [`strong_color_churn`] with telemetry fed to `tracer`. Beyond the
/// static-run events, churn runs emit churn batch headers and
/// [`PaletteAction::Released`] for every channel the repair uncolored.
pub fn strong_color_churn_traced<T: Tracer + Sync>(
    g0: &Graph,
    schedule: &ChurnSchedule,
    cfg: &ColoringConfig,
    tracer: &mut T,
) -> Result<ChurnStrongResult, CoreError> {
    cfg.validate()?;
    let d0 = Digraph::symmetric_closure(g0);
    let final_graph = schedule.final_graph().cloned().unwrap_or_else(|| g0.clone());
    let final_digraph = Digraph::symmetric_closure(&final_graph);
    let delta = g0.max_degree().max(schedule.max_degree());
    let topo = Topology::from_graph(g0);
    let budget = 3 * cfg.compute_round_budget(delta);
    let max_rounds = schedule.last_round().map_or(budget, |lr| lr + budget);
    let factory = |seed: NodeSeed<'_>| StrongColoringNode::new(&seed, &d0, cfg);
    let run = run_protocol_churn_traced(&topo, cfg, max_rounds, schedule, factory, tracer)?;
    let batches = batch_reports(schedule, &run.stats);
    let alive = run.alive();

    // Assemble via ports against the final digraph: the arc ids stored in
    // the nodes index the *initial* digraph and go stale under churn.
    // Crash withdrawal matches the static path (see above).
    let mut colors: Vec<Option<Color>> = vec![None; final_digraph.num_arcs()];
    let mut endpoint_agreement = true;
    for (a, (u, v)) in final_digraph.arcs() {
        let nu = &run.nodes[u.index()];
        let nv = &run.nodes[v.index()];
        let tail = nu.port_of(v).and_then(|p| nu.out_color[p]);
        let head = nv.port_of(u).and_then(|p| nv.in_color[p]);
        colors[a.index()] = match (alive[u.index()], alive[v.index()]) {
            (true, true) => {
                endpoint_agreement &= tail == head;
                tail.or(head)
            }
            _ => None,
        };
    }

    let mut palette = ColorSet::new();
    for c in colors.iter().flatten() {
        palette.insert(*c);
    }
    let comm_rounds = run.stats.rounds;
    let coloring = StrongColoringResult {
        colors_used: palette.len(),
        max_color: palette.max(),
        colors,
        compute_rounds: Phase::compute_rounds(comm_rounds),
        comm_rounds,
        max_degree: delta,
        endpoint_agreement,
        stats: run.stats,
        alive,
        transport_overhead_rounds: 0,
    };
    Ok(ChurnStrongResult { coloring, final_graph, final_digraph, batches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Engine, Transport};
    use crate::verify::verify_strong_coloring;
    use dima_graph::gen::{erdos_renyi_avg_degree, structured};
    use dima_graph::Graph;
    use dima_sim::fault::FaultPlan;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_good(d: &Digraph, r: &StrongColoringResult) {
        assert!(r.endpoint_agreement, "tail/head disagree");
        verify_strong_coloring(d, &r.colors).unwrap();
    }

    #[test]
    fn single_symmetric_edge() {
        let g = structured::path(2);
        let d = Digraph::symmetric_closure(&g);
        let r = strong_color_digraph(&d, &ColoringConfig::seeded(1)).unwrap();
        assert_good(&d, &r);
        // The two directions conflict (reverse arcs): exactly 2 channels.
        assert_eq!(r.colors_used, 2);
    }

    #[test]
    fn rejects_asymmetric_digraph() {
        let d = Digraph::from_arcs(2, [(VertexId(0), VertexId(1))]).unwrap();
        let err = strong_color_digraph(&d, &ColoringConfig::seeded(1)).unwrap_err();
        assert!(matches!(err, CoreError::Graph(_)));
    }

    #[test]
    fn structured_families_color_correctly() {
        for (name, g) in [
            ("path5", structured::path(5)),
            ("cycle6", structured::cycle(6)),
            ("star7", structured::star(7)),
            ("grid", structured::grid(4, 4)),
            ("complete6", structured::complete(6)),
            ("petersen", structured::petersen()),
        ] {
            let d = Digraph::symmetric_closure(&g);
            let r = strong_color_digraph(&d, &ColoringConfig::seeded(5)).unwrap();
            assert_good(&d, &r);
            assert!(r.colors.iter().all(Option::is_some), "{name}: incomplete");
        }
    }

    #[test]
    fn random_er_digraphs_color_correctly() {
        // The paper's §IV-D workload, scaled down for unit tests.
        let mut rng = SmallRng::seed_from_u64(8);
        for seed in 0..4 {
            let g = erdos_renyi_avg_degree(60, 4.0, &mut rng).unwrap();
            let d = Digraph::symmetric_closure(&g);
            let r = strong_color_digraph(&d, &ColoringConfig::seeded(seed)).unwrap();
            assert_good(&d, &r);
        }
    }

    #[test]
    fn empty_digraph() {
        let d = Digraph::symmetric_closure(&Graph::empty(3));
        let r = strong_color_digraph(&d, &ColoringConfig::seeded(1)).unwrap();
        assert!(r.colors.is_empty());
        assert_eq!(r.colors_used, 0);
    }

    #[test]
    fn parallel_engine_bit_identical() {
        let g = structured::grid(5, 5);
        let d = Digraph::symmetric_closure(&g);
        let cfg = ColoringConfig::seeded(77);
        let seq = strong_color_digraph(&d, &cfg).unwrap();
        let par = strong_color_digraph(
            &d,
            &ColoringConfig { engine: Engine::Parallel { threads: 3 }, ..cfg },
        )
        .unwrap();
        assert_eq!(seq.colors, par.colors);
        assert_eq!(seq.comm_rounds, par.comm_rounds);
        assert_eq!(seq.stats.messages_sent, par.stats.messages_sent);
    }

    #[test]
    fn rounds_scale_with_delta_not_n() {
        let sparse_big = Digraph::symmetric_closure(&structured::cycle(200)); // Δ = 2
        let dense_small = Digraph::symmetric_closure(&structured::complete(12)); // Δ = 11
        let r1 = strong_color_digraph(&sparse_big, &ColoringConfig::seeded(6)).unwrap();
        let r2 = strong_color_digraph(&dense_small, &ColoringConfig::seeded(6)).unwrap();
        assert!(
            r1.compute_rounds < r2.compute_rounds,
            "cycle {} vs clique {}",
            r1.compute_rounds,
            r2.compute_rounds
        );
    }

    #[test]
    fn ablation_policies_still_correct() {
        let g = structured::grid(3, 4);
        let d = Digraph::symmetric_closure(&g);
        {
            let policy = ColorPolicy::RandomLegal;
            let cfg = ColoringConfig { color_policy: policy, ..ColoringConfig::seeded(3) };
            let r = strong_color_digraph(&d, &cfg).unwrap();
            assert_good(&d, &r);
        }
        for policy in [ResponsePolicy::FirstSender, ResponsePolicy::LowestColor] {
            let cfg = ColoringConfig { response_policy: policy, ..ColoringConfig::seeded(4) };
            let r = strong_color_digraph(&d, &cfg).unwrap();
            assert_good(&d, &r);
        }
    }

    #[test]
    fn reliable_transport_is_transparent_without_faults() {
        let g = structured::grid(4, 4);
        let d = Digraph::symmetric_closure(&g);
        let bare = strong_color_digraph(&d, &ColoringConfig::seeded(71)).unwrap();
        let arq = strong_color_digraph(
            &d,
            &ColoringConfig { transport: Transport::reliable(), ..ColoringConfig::seeded(71) },
        )
        .unwrap();
        assert_eq!(bare.colors, arq.colors);
        assert_eq!(bare.comm_rounds, arq.comm_rounds);
        assert!(arq.transport_overhead_rounds <= 3, "{}", arq.transport_overhead_rounds);
        assert_good(&d, &arq);
    }

    #[test]
    fn reliable_transport_survives_loss() {
        let g = structured::complete(7);
        let d = Digraph::symmetric_closure(&g);
        let bare = strong_color_digraph(&d, &ColoringConfig::seeded(73)).unwrap();
        let cfg = ColoringConfig {
            faults: FaultPlan::uniform(0.15),
            transport: Transport::reliable(),
            ..ColoringConfig::seeded(73)
        };
        let r = strong_color_digraph(&d, &cfg).unwrap();
        assert!(r.stats.dropped > 0, "the plan should actually drop messages");
        assert_eq!(r.colors, bare.colors);
        assert!(r.transport_overhead_rounds > 0);
        assert_good(&d, &r);
    }

    #[test]
    fn crashes_leave_proper_residual_strong_coloring() {
        let g = structured::complete(9);
        let d = Digraph::symmetric_closure(&g);
        let cfg = ColoringConfig {
            faults: FaultPlan { crash_spread: 1, ..FaultPlan::crashing(0.3, 0) },
            transport: Transport::reliable(),
            ..ColoringConfig::seeded(79)
        };
        let r = strong_color_digraph(&d, &cfg).unwrap();
        assert!(r.alive.iter().any(|&a| !a), "the plan should crash someone");
        assert!(r.endpoint_agreement);
        crate::verify::verify_residual_strong_coloring(&d, &r.colors, &r.alive).unwrap();
    }

    #[test]
    fn coloring_also_satisfies_cross_round_one_hop_exclusion() {
        // Stronger-than-required sanity: by construction, a color used at
        // a node is never reused by that node. Check per-node uniqueness
        // over incident arcs' *own* commitments (tail for out, head for
        // in) — the conservative palette rule implies it.
        let g = structured::complete(7);
        let d = Digraph::symmetric_closure(&g);
        let r = strong_color_digraph(&d, &ColoringConfig::seeded(10)).unwrap();
        assert_good(&d, &r);
        for v in d.vertices() {
            let mut seen = ColorSet::new();
            for &(_, a) in d.out_neighbors(v).iter().chain(d.in_neighbors(v)) {
                let c = r.colors[a.index()].unwrap();
                assert!(seen.insert(c), "node {v} reuses color {c}");
            }
        }
    }
}
