//! **Extension: strong edge coloring of *undirected* graphs.**
//!
//! The paper closes by conjecturing the matching-discovery framework
//! "may be applicable to a variety of graph algorithms". This module is
//! that claim exercised: a strong (distance-2) edge coloring of an
//! undirected graph — no two edges that share an endpoint *or* are joined
//! by an edge may share a color (the paper's Fig. 2; verified against
//! [`dima_graph::conflict::strong_line_graph`]).
//!
//! Undirectedness breaks the trick DiMa2ED leans on (Proposition 5's
//! "the responder overhears the competing invitation"): two responders
//! `v ~ x` can accept the same color from invitors that neither of them
//! hears. The round protocol therefore stretches to **five communication
//! rounds** so conflicts can be resolved before anything commits:
//!
//! | round | invitor side | listener side |
//! |-------|--------------|---------------|
//! | 0 invite  | broadcast `Invite(to, c)` | listen |
//! | 1 accept  | overhear rival invites    | filter (legality, overheard collisions), broadcast `Accept(to, c)` *tentatively* |
//! | 2 proceed | if accepted and no rival invite with `c` was overheard: broadcast `Proceed(to, c)` | overhear rival *accepts*; lose the tie-break if a lower-id neighbor tentatively accepted `c` |
//! | 3 commit  | wait | if `Proceed` arrived and the tie-break was won: commit, broadcast `Committed(to, c)` |
//! | 4 settle  | on `Committed`: commit own side, broadcast `Used(c)` | — |
//!
//! Every same-round conflict pair (shared endpoint, or joined by an edge)
//! is overheard by at least one of the four endpoints at rounds 1–2 and
//! resolved conservatively; cross-round conflicts are excluded by the
//! one-hop `Used` knowledge on at least one side of every future edge.
//! The per-port retry memory of [`crate::strong_coloring`] reappears here
//! for the same livelock reason.

use dima_graph::{EdgeId, Graph, VertexId};
use dima_sim::telemetry::{NoopTracer, PaletteAction, Tracer};
use dima_sim::{
    run_parallel_traced, run_sequential_traced, EngineConfig, NodeSeed, NodeStatus, Protocol,
    RoundCtx, RunOutcome, RunStats, Topology,
};
use rand::rngs::SmallRng;

use crate::automata::{choose_role, pick_uniform, pick_uniform_iter, Role};
use crate::config::{ColorPolicy, ColoringConfig, Engine, ResponsePolicy};
use crate::error::CoreError;
use crate::palette::{Color, ColorSet};

/// Messages of the undirected strong-coloring protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SuMsg {
    /// Invitor proposes `color` for edge `(sender, to)`.
    Invite {
        /// Intended responder.
        to: VertexId,
        /// Proposed color.
        color: Color,
    },
    /// Responder tentatively accepts `to`'s invitation.
    Accept {
        /// The invitor.
        to: VertexId,
        /// The proposed color.
        color: Color,
    },
    /// Invitor confirms no rival proposal was overheard.
    Proceed {
        /// The responder.
        to: VertexId,
        /// The color being confirmed.
        color: Color,
    },
    /// Responder commits the edge; doubles as a `Used` announcement for
    /// the responder's neighborhood.
    Committed {
        /// The invitor (other endpoint of the committed edge).
        to: VertexId,
        /// The committed color.
        color: Color,
    },
    /// Invitor's own `Used` announcement after settling.
    Used {
        /// The newly used color.
        color: Color,
    },
}

/// The five communication rounds of one computation round.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Phase5 {
    Invite,
    Accept,
    Proceed,
    Commit,
    Settle,
}

impl Phase5 {
    fn of_round(r: u64) -> Phase5 {
        match r % 5 {
            0 => Phase5::Invite,
            1 => Phase5::Accept,
            2 => Phase5::Proceed,
            3 => Phase5::Commit,
            _ => Phase5::Settle,
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct Proposal {
    port: usize,
    color: Color,
}

/// Per-vertex state for the undirected strong-coloring protocol.
#[derive(Debug)]
pub struct StrongUndirectedNode {
    me: VertexId,
    neighbors: Vec<VertexId>,
    edge_ids: Vec<EdgeId>,
    edge_color: Vec<Option<Color>>,
    uncolored: Vec<usize>,
    /// Colors unusable at this node: own edges' colors plus everything
    /// announced by neighbors (one-hop knowledge).
    forbidden: ColorSet,
    /// Per-port retry memory (see module docs).
    tried: Vec<ColorSet>,
    role: Role,
    proposal: Option<Proposal>,
    /// Invitor: saw a rival invite with my proposed color in round 1.
    rival_seen: bool,
    /// Invitor: the partner was overheard inviting (no blame on silence).
    partner_was_inviting: bool,
    /// Invitor: partner tentatively accepted someone (mine or not).
    partner_accepted_any: bool,
    /// Responder: the tentative acceptance taken in round 1.
    tentative: Option<Proposal>,
    /// Responder: lost the round-2 tie-break.
    lost_tiebreak: bool,
    newly_used: Option<Color>,
    invite_probability: f64,
    color_policy: ColorPolicy,
    response_policy: ResponsePolicy,
}

impl StrongUndirectedNode {
    fn new(seed: &NodeSeed<'_>, g: &Graph, cfg: &ColoringConfig) -> Self {
        let edge_ids: Vec<EdgeId> = seed
            .neighbors
            .iter()
            .map(|&w| g.edge_between(seed.node, w).expect("topology mirrors graph"))
            .collect();
        let degree = seed.neighbors.len();
        StrongUndirectedNode {
            me: seed.node,
            neighbors: seed.neighbors.to_vec(),
            edge_ids,
            edge_color: vec![None; degree],
            uncolored: (0..degree).collect(),
            forbidden: ColorSet::new(),
            tried: vec![ColorSet::new(); degree],
            role: Role::Listener,
            proposal: None,
            rival_seen: false,
            partner_was_inviting: false,
            partner_accepted_any: false,
            tentative: None,
            lost_tiebreak: false,
            newly_used: None,
            invite_probability: cfg.invite_probability,
            color_policy: cfg.color_policy,
            response_policy: cfg.response_policy,
        }
    }

    fn port_of(&self, v: VertexId) -> Option<usize> {
        self.neighbors.binary_search(&v).ok()
    }

    fn propose_color(&self, port: usize, rng: &mut SmallRng) -> Color {
        match self.color_policy {
            ColorPolicy::LowestIndex => self.forbidden.first_absent_in_union(&self.tried[port]),
            ColorPolicy::RandomLegal => {
                let bound = self
                    .forbidden
                    .max()
                    .into_iter()
                    .chain(self.tried[port].max())
                    .map(|c| c.0 + 2)
                    .max()
                    .unwrap_or(1);
                let legal =
                    self.forbidden.absent_below(bound).filter(|&c| !self.tried[port].contains(c));
                pick_uniform_iter(rng, legal)
                    .unwrap_or_else(|| self.forbidden.first_absent_in_union(&self.tried[port]))
            }
        }
    }

    fn commit(&mut self, port: usize, color: Color) {
        debug_assert!(self.edge_color[port].is_none(), "edge colored twice");
        self.edge_color[port] = Some(color);
        self.uncolored.retain(|&p| p != port);
        self.forbidden.insert(color);
        self.newly_used = Some(color);
    }
}

impl Protocol for StrongUndirectedNode {
    type Msg = SuMsg;

    fn kind_of(msg: &SuMsg) -> &'static str {
        match msg {
            SuMsg::Invite { .. } => "invite",
            SuMsg::Accept { .. } => "accept",
            SuMsg::Proceed { .. } => "proceed",
            SuMsg::Committed { .. } => "committed",
            SuMsg::Used { .. } => "used",
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, SuMsg>) -> NodeStatus {
        match Phase5::of_round(ctx.round()) {
            Phase5::Invite => {
                // Ingest `Used`/`Committed` announcements (both tell the
                // neighborhood a color is taken nearby).
                for env in ctx.inbox() {
                    match *env.msg() {
                        SuMsg::Used { color } | SuMsg::Committed { color, .. } => {
                            self.forbidden.insert(color);
                        }
                        _ => {}
                    }
                }
                if self.uncolored.is_empty() {
                    ctx.trace_state("D", "all-colored");
                    return NodeStatus::Done;
                }
                self.proposal = None;
                self.rival_seen = false;
                self.partner_was_inviting = false;
                self.partner_accepted_any = false;
                self.tentative = None;
                self.lost_tiebreak = false;
                self.newly_used = None;
                self.role = choose_role(ctx.rng(), self.invite_probability);
                ctx.trace_state(if self.role == Role::Invitor { "I" } else { "L" }, "coin");
                if self.role == Role::Invitor {
                    let &port = pick_uniform(ctx.rng(), &self.uncolored)
                        .expect("invitor has an uncolored edge");
                    let color = self.propose_color(port, ctx.rng());
                    self.proposal = Some(Proposal { port, color });
                    ctx.trace_palette(PaletteAction::Proposed, color.0, self.neighbors[port]);
                    ctx.broadcast(SuMsg::Invite { to: self.neighbors[port], color });
                }
                NodeStatus::Active
            }
            Phase5::Accept => {
                if self.role == Role::Invitor {
                    // Overhear rival invites: any neighbor proposing my
                    // color dooms my proposal (conservative u~w veto).
                    if let Some(Proposal { port, color }) = self.proposal {
                        let partner = self.neighbors[port];
                        for env in ctx.inbox() {
                            if let SuMsg::Invite { color: c, .. } = *env.msg() {
                                if env.from == partner {
                                    self.partner_was_inviting = true;
                                }
                                if c == color {
                                    self.rival_seen = true;
                                }
                            }
                        }
                    }
                } else {
                    let me = self.me;
                    let mut mine: Vec<(VertexId, Color)> = Vec::new();
                    let mut other_colors = ColorSet::new();
                    for env in ctx.inbox() {
                        if let SuMsg::Invite { to, color } = *env.msg() {
                            if to == me {
                                mine.push((env.from, color));
                            } else {
                                other_colors.insert(color);
                            }
                        }
                    }
                    let candidates: Vec<(VertexId, Color)> = mine
                        .into_iter()
                        .filter(|&(from, c)| {
                            !self.forbidden.contains(c)
                                && !other_colors.contains(c)
                                && self.port_of(from).is_some_and(|p| self.edge_color[p].is_none())
                        })
                        .collect();
                    let chosen = match self.response_policy {
                        ResponsePolicy::Random => pick_uniform(ctx.rng(), &candidates).copied(),
                        ResponsePolicy::FirstSender => candidates.first().copied(),
                        ResponsePolicy::LowestColor => {
                            candidates.iter().copied().min_by_key(|&(_, c)| c)
                        }
                    };
                    if let Some((partner, color)) = chosen {
                        let port = self.port_of(partner).expect("invitor is a neighbor");
                        self.tentative = Some(Proposal { port, color });
                        ctx.broadcast(SuMsg::Accept { to: partner, color });
                    }
                }
                ctx.trace_state(if self.role == Role::Invitor { "W" } else { "R" }, "await");
                NodeStatus::Active
            }
            Phase5::Proceed => {
                if self.role == Role::Invitor {
                    if let Some(Proposal { port, color }) = self.proposal {
                        let partner = self.neighbors[port];
                        let me = self.me;
                        let mut accepted_mine = false;
                        for env in ctx.inbox() {
                            if let SuMsg::Accept { to, color: c } = *env.msg() {
                                if env.from == partner {
                                    self.partner_accepted_any = true;
                                    if to == me && c == color {
                                        accepted_mine = true;
                                    }
                                }
                            }
                        }
                        if accepted_mine && !self.rival_seen {
                            ctx.broadcast(SuMsg::Proceed { to: partner, color });
                        }
                    }
                } else if let Some(Proposal { color, .. }) = self.tentative {
                    // Tie-break among responders: a lower-id neighbor
                    // tentatively accepting the same color wins.
                    let me = self.me;
                    self.lost_tiebreak = ctx.inbox().iter().any(|env| {
                        matches!(*env.msg(), SuMsg::Accept { color: c, .. } if c == color)
                            && env.from < me
                    });
                }
                NodeStatus::Active
            }
            Phase5::Commit => {
                if self.role == Role::Listener {
                    if let Some(Proposal { port, color }) = self.tentative {
                        let partner = self.neighbors[port];
                        let me = self.me;
                        let proceed = ctx.inbox().iter().any(|env| {
                            env.from == partner
                                && matches!(
                                    *env.msg(),
                                    SuMsg::Proceed { to, color: c } if to == me && c == color
                                )
                        });
                        if proceed && !self.lost_tiebreak {
                            self.commit(port, color);
                            ctx.trace_palette(PaletteAction::Committed, color.0, partner);
                            ctx.broadcast(SuMsg::Committed { to: partner, color });
                        } else {
                            // The tentative acceptance died (lost the
                            // tie-break, or the invitor overheard a rival
                            // and went silent).
                            ctx.trace_palette(PaletteAction::Conflicted, color.0, partner);
                        }
                    }
                }
                NodeStatus::Active
            }
            Phase5::Settle => {
                // `Committed` messages arrive *here* (sent in the commit
                // round); every node must fold them into its forbidden
                // set now — waiting for the next invite phase would lose
                // them, since inboxes are not persisted across rounds.
                for env in ctx.inbox() {
                    if let SuMsg::Committed { color, .. } = *env.msg() {
                        self.forbidden.insert(color);
                    }
                }
                if self.role == Role::Invitor {
                    if let Some(Proposal { port, color }) = self.proposal {
                        let partner = self.neighbors[port];
                        let me = self.me;
                        let committed = ctx.inbox().iter().any(|env| {
                            env.from == partner
                                && matches!(
                                    *env.msg(),
                                    SuMsg::Committed { to, color: c } if to == me && c == color
                                )
                        });
                        if committed {
                            self.commit(port, color);
                            ctx.trace_palette(PaletteAction::Committed, color.0, partner);
                            ctx.broadcast(SuMsg::Used { color });
                        } else {
                            ctx.trace_palette(PaletteAction::Conflicted, color.0, partner);
                            if !self.partner_was_inviting
                                && !self.partner_accepted_any
                                && !self.rival_seen
                            {
                                // Silent listener ⇒ the color was unusable
                                // at the partner (or collided in its
                                // airspace): remember it for this port.
                                self.tried[port].insert(color);
                            }
                        }
                    }
                }
                if self.uncolored.is_empty() {
                    ctx.trace_state("D", "all-colored");
                    NodeStatus::Done
                } else {
                    ctx.trace_state("E", "exchange");
                    NodeStatus::Active
                }
            }
        }
    }
}

/// The outcome of an undirected strong-coloring run.
#[derive(Clone, Debug)]
pub struct StrongUndirectedResult {
    /// Color per edge (indexed by [`EdgeId`]).
    pub colors: Vec<Option<Color>>,
    /// Number of distinct colors used.
    pub colors_used: usize,
    /// Computation rounds (5 communication rounds each).
    pub compute_rounds: u64,
    /// Communication rounds.
    pub comm_rounds: u64,
    /// Maximum degree of the input.
    pub max_degree: usize,
    /// `true` iff both endpoints committed the same color on every edge.
    pub endpoint_agreement: bool,
    /// Simulator statistics.
    pub stats: RunStats,
}

/// Run the undirected strong-coloring extension on `g`.
pub fn strong_color_graph(
    g: &Graph,
    cfg: &ColoringConfig,
) -> Result<StrongUndirectedResult, CoreError> {
    strong_color_graph_traced(g, cfg, &mut NoopTracer)
}

/// [`strong_color_graph`] with telemetry fed to `tracer` (see
/// [`dima_sim::telemetry`]). With [`NoopTracer`] the tracing branches
/// monomorphize away and this *is* [`strong_color_graph`].
pub fn strong_color_graph_traced<T: Tracer + Sync>(
    g: &Graph,
    cfg: &ColoringConfig,
    tracer: &mut T,
) -> Result<StrongUndirectedResult, CoreError> {
    cfg.validate()?;
    let delta = g.max_degree();
    let topo = Topology::from_graph(g);
    let engine_cfg = EngineConfig {
        seed: cfg.seed,
        // Five communication rounds per computation round, and strong
        // coloring needs more rounds than plain coloring: double the
        // usual budget.
        max_rounds: 5 * 2 * cfg.compute_round_budget(delta),
        collect_round_stats: cfg.collect_round_stats,
        validate_sends: cfg.validate_sends,
        faults: cfg.faults.clone(),
        profile: cfg.profile,
        metrics: cfg.collect_metrics,
    };
    let factory = |seed: NodeSeed<'_>| StrongUndirectedNode::new(&seed, g, cfg);
    let outcome: RunOutcome<StrongUndirectedNode> = match cfg.engine {
        Engine::Sequential => run_sequential_traced(&topo, &engine_cfg, factory, tracer)?,
        Engine::Parallel { threads } => {
            run_parallel_traced(&topo, &engine_cfg, threads, factory, tracer)?
        }
    };

    let mut colors: Vec<Option<Color>> = vec![None; g.num_edges()];
    let mut agreement = true;
    for node in &outcome.nodes {
        for (port, &c) in node.edge_color.iter().enumerate() {
            let e = node.edge_ids[port];
            match (colors[e.index()], c) {
                (None, c) => colors[e.index()] = c,
                (Some(prev), Some(now)) => agreement &= prev == now,
                (Some(_), None) => agreement = false,
            }
        }
    }
    if agreement {
        for node in &outcome.nodes {
            for (port, &c) in node.edge_color.iter().enumerate() {
                if c.is_none() && colors[node.edge_ids[port].index()].is_some() {
                    agreement = false;
                }
            }
        }
    }

    let mut palette = ColorSet::new();
    for c in colors.iter().flatten() {
        palette.insert(*c);
    }
    let comm_rounds = outcome.stats.rounds;
    Ok(StrongUndirectedResult {
        colors_used: palette.len(),
        colors,
        compute_rounds: comm_rounds.div_ceil(5),
        comm_rounds,
        max_degree: delta,
        endpoint_agreement: agreement,
        stats: outcome.stats,
    })
}

/// Check a complete strong edge coloring of an undirected graph: edges
/// sharing an endpoint or joined by an edge must differ.
pub fn verify_strong_undirected(
    g: &Graph,
    colors: &[Option<Color>],
) -> Result<(), crate::verify::Violation> {
    assert_eq!(colors.len(), g.num_edges(), "color vector length mismatch");
    for (e, _) in g.edges() {
        if colors[e.index()].is_none() {
            return Err(crate::verify::Violation::Uncolored { index: e.0 });
        }
    }
    // Two edges conflict iff within one hop: compare each edge against
    // all edges incident to its endpoints and its endpoints' neighbors.
    for (e, (u, v)) in g.edges() {
        let c = colors[e.index()];
        for &(w, f) in g.neighbors(u).iter().chain(g.neighbors(v)) {
            if f != e && colors[f.index()] == c {
                return Err(crate::verify::Violation::AdjacentSameColor {
                    e1: e.min(f),
                    e2: e.max(f),
                    color: c.expect("checked above"),
                    at: if g.endpoints(f).0 == u || g.endpoints(f).1 == u { u } else { v },
                });
            }
            for &(_, f2) in g.neighbors(w) {
                if f2 != e && colors[f2.index()] == c {
                    return Err(crate::verify::Violation::AdjacentSameColor {
                        e1: e.min(f2),
                        e2: e.max(f2),
                        color: c.expect("checked above"),
                        at: w,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dima_graph::conflict::strong_line_graph;
    use dima_graph::gen::{erdos_renyi_avg_degree, structured};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_good(g: &Graph, r: &StrongUndirectedResult) {
        assert!(r.endpoint_agreement);
        verify_strong_undirected(g, &r.colors).unwrap();
        // Cross-check through the conflict-graph lens.
        let sq = strong_line_graph(g);
        for (_, (a, b)) in sq.edges() {
            assert_ne!(r.colors[a.index()], r.colors[b.index()]);
        }
    }

    #[test]
    fn single_edge_and_path() {
        let g = structured::path(2);
        let r = strong_color_graph(&g, &ColoringConfig::seeded(1)).unwrap();
        assert_good(&g, &r);
        assert_eq!(r.colors_used, 1);

        // P4: all three edges are within distance 1 of the middle one;
        // middle conflicts with both, ends conflict with middle and each
        // other? e0-e1 adjacent, e1-e2 adjacent, e0-e2 joined by e1 → all
        // pairwise conflicting: exactly 3 colors.
        let g = structured::path(4);
        let r = strong_color_graph(&g, &ColoringConfig::seeded(1)).unwrap();
        assert_good(&g, &r);
        assert_eq!(r.colors_used, 3);
    }

    #[test]
    fn star_needs_degree_colors() {
        let g = structured::star(7);
        let r = strong_color_graph(&g, &ColoringConfig::seeded(2)).unwrap();
        assert_good(&g, &r);
        assert_eq!(r.colors_used, 6); // all edges pairwise adjacent
    }

    #[test]
    fn structured_families() {
        for g in [
            structured::cycle(9),
            structured::grid(4, 4),
            structured::petersen(),
            structured::complete(6),
            structured::balanced_binary_tree(4),
        ] {
            let r = strong_color_graph(&g, &ColoringConfig::seeded(5)).unwrap();
            assert_good(&g, &r);
        }
    }

    #[test]
    fn random_er_graphs() {
        let mut rng = SmallRng::seed_from_u64(7);
        for seed in 0..3 {
            let g = erdos_renyi_avg_degree(60, 4.0, &mut rng).unwrap();
            let r = strong_color_graph(&g, &ColoringConfig::seeded(seed)).unwrap();
            assert_good(&g, &r);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        let r = strong_color_graph(&g, &ColoringConfig::seeded(1)).unwrap();
        assert!(r.colors.is_empty());
        assert_eq!(r.colors_used, 0);
    }

    #[test]
    fn parallel_engine_bit_identical() {
        let g = structured::grid(4, 5);
        let seq = strong_color_graph(&g, &ColoringConfig::seeded(9)).unwrap();
        let par = strong_color_graph(
            &g,
            &ColoringConfig {
                engine: Engine::Parallel { threads: 3 },
                ..ColoringConfig::seeded(9)
            },
        )
        .unwrap();
        assert_eq!(seq.colors, par.colors);
        assert_eq!(seq.comm_rounds, par.comm_rounds);
    }

    #[test]
    fn verifier_rejects_distance2_conflict() {
        // P5: e0 and e2 are joined by e1 → same color must be rejected.
        let g = structured::path(5);
        let colors = vec![Some(Color(0)), Some(Color(1)), Some(Color(0)), Some(Color(2))];
        assert!(verify_strong_undirected(&g, &colors).is_err());
        // e0 and e3 are at distance 2 → sharing is fine.
        let colors = vec![Some(Color(0)), Some(Color(1)), Some(Color(2)), Some(Color(0))];
        assert!(verify_strong_undirected(&g, &colors).is_ok());
    }
}
