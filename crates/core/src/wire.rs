//! Wire encodings for the DiMa protocol messages.
//!
//! The simulator counts messages; real ad-hoc deployments budget *bytes*.
//! These [`WireCodec`] implementations give every protocol message a
//! compact tagged binary frame so experiments can report byte volumes,
//! and they pin down an interoperable format for a future non-simulated
//! transport.
//!
//! Frame layout: a 1-byte message tag, then the fields in declaration
//! order, little-endian (see [`dima_sim::wire`]).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dima_graph::VertexId;
use dima_sim::wire::WireCodec;

use crate::edge_coloring::EcMsg;
use crate::matching::MatchMsg;
use crate::palette::Color;
use crate::strong_coloring::StrongMsg;

impl WireCodec for Color {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u32::decode(buf).map(Color)
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl WireCodec for MatchMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MatchMsg::Invite { to } => {
                buf.put_u8(0);
                to.encode(buf);
            }
            MatchMsg::Accept { to } => {
                buf.put_u8(1);
                to.encode(buf);
            }
            MatchMsg::Matched => buf.put_u8(2),
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        if !buf.has_remaining() {
            return None;
        }
        match buf.get_u8() {
            0 => Some(MatchMsg::Invite { to: VertexId::decode(buf)? }),
            1 => Some(MatchMsg::Accept { to: VertexId::decode(buf)? }),
            2 => Some(MatchMsg::Matched),
            _ => None,
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            MatchMsg::Invite { .. } | MatchMsg::Accept { .. } => 5,
            MatchMsg::Matched => 1,
        }
    }
}

impl WireCodec for EcMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            EcMsg::Invite { to, color } => {
                buf.put_u8(0);
                to.encode(buf);
                color.encode(buf);
            }
            EcMsg::Accept { to, color } => {
                buf.put_u8(1);
                to.encode(buf);
                color.encode(buf);
            }
            EcMsg::Used { color } => {
                buf.put_u8(2);
                color.encode(buf);
            }
            EcMsg::Hello { used } => {
                buf.put_u8(3);
                used.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        if !buf.has_remaining() {
            return None;
        }
        match buf.get_u8() {
            0 => Some(EcMsg::Invite { to: VertexId::decode(buf)?, color: Color::decode(buf)? }),
            1 => Some(EcMsg::Accept { to: VertexId::decode(buf)?, color: Color::decode(buf)? }),
            2 => Some(EcMsg::Used { color: Color::decode(buf)? }),
            3 => Some(EcMsg::Hello { used: Vec::<Color>::decode(buf)? }),
            _ => None,
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            EcMsg::Invite { .. } | EcMsg::Accept { .. } => 9,
            EcMsg::Used { .. } => 5,
            EcMsg::Hello { used } => 1 + used.encoded_len(),
        }
    }
}

impl WireCodec for StrongMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            StrongMsg::Invite { to, colors } => {
                buf.put_u8(0);
                to.encode(buf);
                colors.encode(buf);
            }
            StrongMsg::Accept { to, color } => {
                buf.put_u8(1);
                to.encode(buf);
                color.encode(buf);
            }
            StrongMsg::Used { color } => {
                buf.put_u8(2);
                color.encode(buf);
            }
            StrongMsg::Hello { out_used, in_used, reply } => {
                buf.put_u8(3);
                out_used.encode(buf);
                in_used.encode(buf);
                buf.put_u8(u8::from(*reply));
            }
            StrongMsg::Release { colors } => {
                buf.put_u8(4);
                colors.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        if !buf.has_remaining() {
            return None;
        }
        match buf.get_u8() {
            0 => Some(StrongMsg::Invite {
                to: VertexId::decode(buf)?,
                colors: Vec::<Color>::decode(buf)?,
            }),
            1 => Some(StrongMsg::Accept { to: VertexId::decode(buf)?, color: Color::decode(buf)? }),
            2 => Some(StrongMsg::Used { color: Color::decode(buf)? }),
            3 => {
                let out_used = Vec::<Color>::decode(buf)?;
                let in_used = Vec::<Color>::decode(buf)?;
                let reply = match buf.has_remaining().then(|| buf.get_u8())? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                Some(StrongMsg::Hello { out_used, in_used, reply })
            }
            4 => Some(StrongMsg::Release { colors: Vec::<Color>::decode(buf)? }),
            _ => None,
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            StrongMsg::Invite { colors, .. } => 5 + colors.encoded_len(),
            StrongMsg::Accept { .. } => 9,
            StrongMsg::Used { .. } => 5,
            StrongMsg::Hello { out_used, in_used, .. } => {
                2 + out_used.encoded_len() + in_used.encoded_len()
            }
            StrongMsg::Release { colors } => 1 + colors.encoded_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: WireCodec + Clone + PartialEq + std::fmt::Debug>(msg: M) {
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        assert_eq!(buf.len(), msg.encoded_len(), "{msg:?}");
        let mut bytes = buf.freeze();
        let back = M::decode(&mut bytes).unwrap();
        assert_eq!(back, msg);
        assert!(!bytes.has_remaining(), "trailing bytes after {msg:?}");
    }

    #[test]
    fn match_messages_roundtrip() {
        roundtrip(MatchMsg::Invite { to: VertexId(7) });
        roundtrip(MatchMsg::Accept { to: VertexId(0) });
        roundtrip(MatchMsg::Matched);
    }

    #[test]
    fn edge_coloring_messages_roundtrip() {
        roundtrip(EcMsg::Invite { to: VertexId(3), color: Color(5) });
        roundtrip(EcMsg::Accept { to: VertexId(9), color: Color(0) });
        roundtrip(EcMsg::Used { color: Color(1234) });
        roundtrip(EcMsg::Hello { used: vec![] });
        roundtrip(EcMsg::Hello { used: vec![Color(0), Color(7)] });
    }

    #[test]
    fn strong_messages_roundtrip() {
        roundtrip(StrongMsg::Invite { to: VertexId(3), colors: vec![Color(5)] });
        roundtrip(StrongMsg::Invite { to: VertexId(3), colors: vec![Color(5), Color(9)] });
        roundtrip(StrongMsg::Invite { to: VertexId(3), colors: vec![] });
        roundtrip(StrongMsg::Accept { to: VertexId(9), color: Color(2) });
        roundtrip(StrongMsg::Used { color: Color(42) });
        roundtrip(StrongMsg::Hello { out_used: vec![Color(3)], in_used: vec![], reply: false });
        roundtrip(StrongMsg::Hello {
            out_used: vec![],
            in_used: vec![Color(0), Color(9)],
            reply: true,
        });
        roundtrip(StrongMsg::Release { colors: vec![] });
        roundtrip(StrongMsg::Release { colors: vec![Color(1), Color(6)] });
    }

    #[test]
    fn color_roundtrip() {
        roundtrip(Color(0));
        roundtrip(Color(u32::MAX));
    }

    #[test]
    fn bad_tags_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        let mut b = buf.freeze();
        assert!(MatchMsg::decode(&mut b).is_none());
        let mut b = Bytes::new();
        assert!(EcMsg::decode(&mut b).is_none());
        assert!(StrongMsg::decode(&mut Bytes::new()).is_none());
    }

    #[test]
    fn truncation_rejected() {
        let msg = EcMsg::Invite { to: VertexId(1), color: Color(2) };
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut b = full.slice(0..cut);
            assert!(EcMsg::decode(&mut b).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn invitation_is_nine_bytes_on_wire() {
        // The paper's invitation carries (sender, receiver, color); with
        // the sender in the envelope, the payload is tag + receiver +
        // color = 9 bytes — worth stating for radio budgets.
        let msg = EcMsg::Invite { to: VertexId(1), color: Color(2) };
        assert_eq!(msg.encoded_len(), 9);
        let env = dima_sim::Envelope::new(VertexId(0), msg);
        let framed = dima_sim::wire::encode_envelope(&env);
        assert_eq!(framed.len(), 13);
    }
}
