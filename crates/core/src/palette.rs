//! Colors and growable color sets.
//!
//! Colors are dense small integers (the paper indexes its palette from the
//! lowest color upward), so sets of colors are bitsets over 64-bit words.
//! [`ColorSet`] grows on demand — the algorithms never need to fix a
//! palette size in advance, and the `2Δ−1` bound emerges from the
//! lowest-available selection rule rather than from truncation.

use std::fmt;

/// An edge color (equivalently: a channel or time slot). Colors are dense
/// indices starting at 0; the paper's "color 1" is `Color(0)` here.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Color(pub u32);

impl Color {
    /// The color index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A growable set of colors, backed by a bitset.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ColorSet {
    words: Vec<u64>,
    len: usize,
}

impl ColorSet {
    /// The empty set.
    pub fn new() -> Self {
        ColorSet::default()
    }

    /// An empty set with room for colors `0..capacity` without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        ColorSet { words: Vec::with_capacity(capacity.div_ceil(64)), len: 0 }
    }

    /// Number of colors in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no colors are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, c: Color) -> bool {
        let w = c.index() / 64;
        w < self.words.len() && (self.words[w] >> (c.index() % 64)) & 1 == 1
    }

    /// Insert `c`; returns `true` if it was new.
    pub fn insert(&mut self, c: Color) -> bool {
        let w = c.index() / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (c.index() % 64);
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        true
    }

    /// Remove `c`; returns `true` if it was present.
    pub fn remove(&mut self, c: Color) -> bool {
        let w = c.index() / 64;
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (c.index() % 64);
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        self.len -= 1;
        true
    }

    /// The lowest color **not** in the set — the paper's "first available
    /// color" selection (Algorithm 1, line 1.11).
    pub fn first_absent(&self) -> Color {
        for (i, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                return Color((i * 64 + w.trailing_ones() as usize) as u32);
            }
        }
        Color((self.words.len() * 64) as u32)
    }

    /// The lowest color in **neither** set — the "lowest color legal for
    /// both endpoints" rule: `live_u \ used_v` where both sides are
    /// represented by their *used* sets.
    pub fn first_absent_in_union(&self, other: &ColorSet) -> Color {
        let max_words = self.words.len().max(other.words.len());
        for i in 0..max_words {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            let u = a | b;
            if u != u64::MAX {
                return Color((i * 64 + u.trailing_ones() as usize) as u32);
            }
        }
        Color((max_words * 64) as u32)
    }

    /// The greatest color in the set, if any.
    pub fn max(&self) -> Option<Color> {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(Color((i * 64 + 63 - w.leading_zeros() as usize) as u32));
            }
        }
        None
    }

    /// Iterate the colors in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Color> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(Color((i * 64 + bit) as u32))
            })
        })
    }

    /// Heap bytes held by this set's backing bitset. Used by the run
    /// reports to account palette memory per node (ROADMAP item 2: the
    /// bitset should stay sized to `O(Δ)` in the hot paths).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Colors in `0..bound` **not** in the set, in increasing order
    /// (used by the random-legal-color ablation policy). Allocation-free:
    /// the policies call this inside their per-round proposal loop, so it
    /// walks the complemented bitset words lazily instead of materializing
    /// a `Vec`. The iterator is `Clone`, which lets callers make a
    /// counting pass and a selection pass over the same gaps.
    pub fn absent_below(&self, bound: u32) -> impl Iterator<Item = Color> + Clone + '_ {
        let nwords = bound.div_ceil(64) as usize;
        (0..nwords).flat_map(move |i| {
            let mut absent = !self.words.get(i).copied().unwrap_or(0);
            if i == nwords - 1 && !bound.is_multiple_of(64) {
                absent &= (1u64 << (bound % 64)) - 1;
            }
            std::iter::from_fn(move || {
                if absent == 0 {
                    return None;
                }
                let bit = absent.trailing_zeros() as usize;
                absent &= absent - 1;
                Some(Color((i * 64 + bit) as u32))
            })
        })
    }
}

impl fmt::Debug for ColorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Color> for ColorSet {
    fn from_iter<I: IntoIterator<Item = Color>>(iter: I) -> Self {
        let mut s = ColorSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = ColorSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(Color(3)));
        assert!(s.insert(Color(3)));
        assert!(!s.insert(Color(3)));
        assert!(s.contains(Color(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Color(3)));
        assert!(!s.remove(Color(3)));
        assert!(s.is_empty());
        assert!(!s.remove(Color(1000))); // out of allocated range
    }

    #[test]
    fn first_absent_walks_past_full_words() {
        let mut s = ColorSet::new();
        assert_eq!(s.first_absent(), Color(0));
        for c in 0..130 {
            s.insert(Color(c));
        }
        assert_eq!(s.first_absent(), Color(130));
        s.remove(Color(64));
        assert_eq!(s.first_absent(), Color(64));
    }

    #[test]
    fn first_absent_in_union_interleaved() {
        let a: ColorSet = [0u32, 2, 4].into_iter().map(Color).collect();
        let b: ColorSet = [1u32, 3].into_iter().map(Color).collect();
        assert_eq!(a.first_absent_in_union(&b), Color(5));
        let empty = ColorSet::new();
        assert_eq!(a.first_absent_in_union(&empty), Color(1));
        assert_eq!(empty.first_absent_in_union(&empty), Color(0));
        // Different word counts.
        let big: ColorSet = [70u32].into_iter().map(Color).collect();
        assert_eq!(a.first_absent_in_union(&big), Color(1));
    }

    #[test]
    fn max_and_iter_ordering() {
        let s: ColorSet = [9u32, 1, 200, 64].into_iter().map(Color).collect();
        assert_eq!(s.max(), Some(Color(200)));
        let order: Vec<u32> = s.iter().map(|c| c.0).collect();
        assert_eq!(order, vec![1, 9, 64, 200]);
        assert_eq!(ColorSet::new().max(), None);
    }

    #[test]
    fn absent_below_lists_gaps() {
        let s: ColorSet = [0u32, 2].into_iter().map(Color).collect();
        let gaps: Vec<u32> = s.absent_below(5).map(|c| c.0).collect();
        assert_eq!(gaps, vec![1, 3, 4]);
        assert_eq!(s.absent_below(0).count(), 0);
    }

    #[test]
    fn absent_below_word_boundaries() {
        // Bounds at, below, and past the 64-bit word edge; sparse set far
        // beyond the bound must not leak colors >= bound.
        let s: ColorSet = [0u32, 63, 64, 127, 200].into_iter().map(Color).collect();
        let below_64: Vec<u32> = s.absent_below(64).map(|c| c.0).collect();
        assert_eq!(below_64, (1..63).collect::<Vec<u32>>());
        let below_65: Vec<u32> = s.absent_below(65).map(|c| c.0).collect();
        assert_eq!(below_65, (1..63).collect::<Vec<u32>>());
        let empty = ColorSet::new();
        assert_eq!(empty.absent_below(130).count(), 130);
        assert_eq!(s.absent_below(300).count(), 300 - 5);
        // Two passes over a clone see the same gaps.
        let it = s.absent_below(70);
        assert_eq!(it.clone().count(), it.count());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut s = ColorSet::with_capacity(256);
        assert!(s.is_empty());
        s.insert(Color(255));
        assert!(s.contains(Color(255)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn debug_format_lists_members() {
        let s: ColorSet = [2u32, 0].into_iter().map(Color).collect();
        assert_eq!(format!("{s:?}"), "{c0, c2}");
        assert_eq!(format!("{:?}", Color(7)), "c7");
        assert_eq!(Color(7).to_string(), "7");
    }
}
