//! The matching-discovery automata (the paper's Figure 1).
//!
//! Each vertex cycles through the states below once per *computation
//! round*. A computation round spans **three communication rounds** of the
//! simulator:
//!
//! ```text
//! comm round      invitor side              listener side
//! -----------     ---------------------     ----------------------
//! 0 (invite)      C → I: coin, propose,     C → L: coin, listen
//!                 broadcast invitation
//! 1 (respond)     W: wait for replies       R: keep own invitations,
//!                                           accept one, broadcast reply
//! 2 (exchange)    U → E: commit edge,       U → E: commit edge,
//!                 broadcast new color       broadcast new color
//! ```
//!
//! After the exchange step every node either returns to `C` or, having
//! colored (matched) everything it needs, enters `D` and leaves the
//! computation. The three protocols in this crate share this skeleton and
//! the phase bookkeeping below.

use rand::rngs::SmallRng;
use rand::Rng;

/// The states of the automata (paper Fig. 1 plus the `E` exchange state
/// that both coloring algorithms add).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum State {
    /// Choose: toss a coin to become invitor or listener.
    Choose,
    /// Invitor: propose an edge (and color) to one neighbor.
    Invite,
    /// Listener: collect invitations.
    Listen,
    /// Respond: accept at most one kept invitation.
    Respond,
    /// Wait: collect replies to the invitation sent.
    Wait,
    /// Update: commit the negotiated edge locally.
    Update,
    /// Exchange: broadcast newly used colors, ingest neighbors'.
    Exchange,
    /// Done: everything incident is colored; the node has left.
    Done,
}

/// Which communication round of the computation round we are in.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Comm round 0: `C` then `I`/`L`.
    InviteStep,
    /// Comm round 1: `R`/`W`.
    RespondStep,
    /// Comm round 2: `U` then `E`.
    ExchangeStep,
}

impl Phase {
    /// Phase of communication round `r` (0-based).
    #[inline]
    pub fn of_round(r: u64) -> Phase {
        match r % 3 {
            0 => Phase::InviteStep,
            1 => Phase::RespondStep,
            _ => Phase::ExchangeStep,
        }
    }

    /// Number of complete computation rounds after `comm_rounds`
    /// communication rounds.
    #[inline]
    pub fn compute_rounds(comm_rounds: u64) -> u64 {
        comm_rounds.div_ceil(3)
    }
}

/// The role a node took in the current computation round.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Role {
    /// Became `I` in the coin toss.
    Invitor,
    /// Became `L` in the coin toss.
    Listener,
}

/// The paper's `C` state: a (possibly biased) coin toss. The paper uses a
/// fair coin; the probability is the ABL1 ablation knob.
#[inline]
pub fn choose_role(rng: &mut SmallRng, invite_probability: f64) -> Role {
    if rng.random_bool(invite_probability) {
        Role::Invitor
    } else {
        Role::Listener
    }
}

/// Pick a uniformly random element of `items` (used for the random
/// uncolored edge of `I` and the random kept invitation of `R`).
#[inline]
pub fn pick_uniform<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.random_range(0..items.len())])
    }
}

/// Pick a uniformly random element of `items` without collecting it: one
/// counting pass, then (if nonempty) one selection pass over a clone.
/// Draws from `rng` exactly as [`pick_uniform`] does on the collected
/// slice — one `random_range(0..len)` when nonempty, nothing when empty —
/// so swapping between the two cannot perturb a seeded run.
#[inline]
pub fn pick_uniform_iter<T, I>(rng: &mut SmallRng, mut items: I) -> Option<T>
where
    I: Iterator<Item = T> + Clone,
{
    let n = items.clone().count();
    if n == 0 {
        None
    } else {
        items.nth(rng.random_range(0..n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn phase_cycles_every_three_rounds() {
        assert_eq!(Phase::of_round(0), Phase::InviteStep);
        assert_eq!(Phase::of_round(1), Phase::RespondStep);
        assert_eq!(Phase::of_round(2), Phase::ExchangeStep);
        assert_eq!(Phase::of_round(3), Phase::InviteStep);
        assert_eq!(Phase::of_round(301), Phase::RespondStep);
    }

    #[test]
    fn compute_round_conversion() {
        assert_eq!(Phase::compute_rounds(0), 0);
        assert_eq!(Phase::compute_rounds(1), 1);
        assert_eq!(Phase::compute_rounds(3), 1);
        assert_eq!(Phase::compute_rounds(4), 2);
        assert_eq!(Phase::compute_rounds(6), 2);
    }

    #[test]
    fn fair_coin_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let invitors = (0..n).filter(|_| choose_role(&mut rng, 0.5) == Role::Invitor).count();
        let rate = invitors as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn biased_coin_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 10_000;
        let invitors = (0..n).filter(|_| choose_role(&mut rng, 0.2) == Role::Invitor).count();
        let rate = invitors as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn pick_uniform_bounds_and_coverage() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(pick_uniform::<u32>(&mut rng, &[]), None);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = pick_uniform(&mut rng, &items).unwrap();
            seen[(v / 10 - 1) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn state_enum_is_complete() {
        // The automata has exactly the paper's states (+E).
        let all = [
            State::Choose,
            State::Invite,
            State::Listen,
            State::Respond,
            State::Wait,
            State::Update,
            State::Exchange,
            State::Done,
        ];
        assert_eq!(all.len(), 8);
    }
}
