//! Long-running coloring service: the engine behind `dima serve`.
//!
//! A [`ColoringService`] owns a live coloring of a mutating graph. Churn
//! events are *staged* through the validating [`EventFeed`], *committed*
//! as a batch whenever the repair automata are quiescent, and repaired
//! incrementally by ticking the round [`Stepper`] — the service never
//! blocks a query on a repair in flight.
//!
//! # Determinism and crash safety
//!
//! The service commits a staged batch only at quiescence, so the round
//! at which each batch lands is a pure function of the event sequence —
//! not of wall-clock arrival times. That makes the whole trajectory
//! replayable: a snapshot records nothing but the initial graph and the
//! *history* (committed batches and recolor escalations, each pinned to
//! its round), and [`ColoringService::restore`] re-executes that history
//! through the very same tick loop to a bit-identical coloring. A
//! crash-recovery journal of the same line format covers the tail since
//! the last snapshot; its markers carry a history index so a stale
//! (unrotated) journal deduplicates cleanly against the snapshot.
//!
//! Snapshots are flat JSONL guarded by a CRC-32 trailer: truncation and
//! corruption are detected and reported as structured
//! [`ServiceError`]s, never a panic.
//!
//! # Watchdog
//!
//! A convergence watchdog counts consecutive non-quiescent ticks in
//! which the progress high-water mark (committed color slots plus done
//! nodes) fails to rise; after [`ServiceConfig::watchdog_ticks`] of
//! those it escalates to a full recolor via [`Stepper::restart`]. Each
//! consecutive escalation doubles the stall threshold, so even a
//! hair-trigger watchdog cannot livelock a legitimate repair.
//! Escalations are recorded in the history (RNG streams continue
//! across a restart, so replaying the recorded escalation round
//! reproduces the live trajectory exactly; during replay the watchdog
//! itself is disarmed).

use std::collections::HashMap;
use std::fmt;

use dima_graph::{Digraph, Graph, GraphBuilder, VertexId};
use dima_sim::fault::FaultPlan;
use dima_sim::rng::splitmix64;
use dima_sim::telemetry::read::{parse_line, Record};
use dima_sim::telemetry::NoopTracer;
use dima_sim::wire::crc32;
use dima_sim::{
    ChurnBatch, ChurnEvent, ChurnSchedule, EngineConfig, EventFeed, FeedError, NodeSeed,
    ParStepper, SimError, Stepper, Topology,
};

use crate::config::{
    ColorPolicy, ColorReduction, ColoringConfig, Engine, KempeConfig, ResponsePolicy, Transport,
};
use crate::edge_coloring::EdgeColoringNode;
use crate::error::CoreError;
use crate::kempe::KempeReport;
use crate::palette::{Color, ColorSet};
use crate::runner::run_protocol_churn_traced;
use crate::strong_coloring::StrongColoringNode;

/// Snapshot format version accepted by [`ColoringService::restore`].
pub const SNAPSHOT_VERSION: u64 = 1;

/// Materialized-base snapshot format version accepted by
/// [`ColoringService::restore_chain`]. A base records the *folded*
/// topology and coloring produced by [`ColoringService::compact_history`]
/// instead of a replay history, so restore cost is `O(graph)` no matter
/// how much history was folded into it.
pub const BASE_VERSION: u64 = 2;

/// Delta-checkpoint format version accepted by
/// [`ColoringService::restore_chain`]. A delta carries the history
/// entries recorded since the previous checkpoint in the chain, bound to
/// its parent by index and CRC.
pub const DELTA_VERSION: u64 = 1;

/// Which repair protocol a service runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeProtocol {
    /// DiMaEC proper edge coloring (Algorithm 1).
    EdgeColoring,
    /// DiMa2ED strong edge coloring of the symmetric closure
    /// (Algorithm 2).
    StrongColoring,
}

impl ServeProtocol {
    /// Stable wire name (`ec` / `strong`), used in snapshots and CLI
    /// flags.
    pub fn name(self) -> &'static str {
        match self {
            ServeProtocol::EdgeColoring => "ec",
            ServeProtocol::StrongColoring => "strong",
        }
    }
}

impl fmt::Display for ServeProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ServeProtocol {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "ec" | "color" => Ok(ServeProtocol::EdgeColoring),
            "strong" | "strong-color" => Ok(ServeProtocol::StrongColoring),
            other => Err(format!("unknown protocol '{other}' (expected 'ec' or 'strong')")),
        }
    }
}

/// Configuration for a [`ColoringService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Repair protocol.
    pub protocol: ServeProtocol,
    /// Coloring parameters. The service requires the bare transport and
    /// a reliable fault plan (quiescence must mean "every node is
    /// done", and snapshots must replay); either engine is accepted —
    /// the parallel stepper is bit-identical to the sequential one.
    pub coloring: ColoringConfig,
    /// Consecutive stalled ticks (no rise of the progress high-water
    /// mark — committed color slots plus done nodes — while not
    /// quiescent) before the watchdog escalates to a full recolor. The
    /// threshold doubles after each consecutive escalation so a small
    /// value cannot livelock. `0` disables the watchdog.
    pub watchdog_ticks: u64,
}

impl ServiceConfig {
    /// Service defaults for `protocol` under master seed `seed`:
    /// measurement-profile coloring config (no send validation), no
    /// per-round stat collection (the service runs unbounded), watchdog
    /// at 512 ticks.
    pub fn new(protocol: ServeProtocol, seed: u64) -> Self {
        ServiceConfig {
            protocol,
            coloring: ColoringConfig {
                collect_round_stats: false,
                ..ColoringConfig::for_measurement(seed)
            },
            watchdog_ticks: 512,
        }
    }

    fn validate(&self) -> Result<(), ServiceError> {
        self.coloring.validate().map_err(|e| ServiceError::Config(e.to_string()))?;
        // Both engines are accepted: the parallel stepper is
        // bit-identical to the sequential one (same colorings, same
        // round clock, same snapshots), so serving from the pool is an
        // implementation detail, not a semantic choice.
        if self.coloring.transport != Transport::Bare {
            return Err(ServiceError::Config("the service requires the bare transport".into()));
        }
        if !self.coloring.faults.is_reliable() {
            return Err(ServiceError::Config(
                "the service requires a reliable fault plan: quiescence detection and snapshot \
                 replay assume no injected loss or crashes"
                    .into(),
            ));
        }
        if self.coloring.reduction.is_on() && self.protocol != ServeProtocol::EdgeColoring {
            return Err(ServiceError::Config(
                "palette reduction is an edge-coloring pass; it is not defined for the strong \
                 (directed) protocol"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// A structured service failure. Every invalid input — malformed event,
/// corrupt snapshot, inconsistent history — surfaces as one of these;
/// the service never panics on untrusted data.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// Invalid service configuration.
    Config(String),
    /// A staged event was rejected by topology validation.
    Feed(FeedError),
    /// A query named a vertex outside the graph.
    NoSuchNode {
        /// The offending vertex.
        node: VertexId,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// A query named an edge absent from the current topology.
    NoSuchEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// A snapshot failed structural parsing.
    Snapshot {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A snapshot's CRC-32 trailer did not match its body (truncation
    /// or corruption).
    CrcMismatch {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC computed over the body.
        actual: u32,
    },
    /// Replaying a recorded history diverged from the recorded rounds —
    /// the snapshot does not describe this build's trajectory.
    Replay(String),
    /// A repair failed to quiesce within the tick budget.
    Budget {
        /// Ticks executed before giving up.
        ticks: u64,
    },
    /// The underlying simulator rejected a round.
    Sim(SimError),
    /// A checkpoint-chain file failed verification against its parent
    /// (broken CRC linkage, wrong chain index, history gap, or an epoch
    /// that does not match the base). Recovery falls back to the newest
    /// checkpoint *before* the offending file.
    Chain {
        /// 0-based index of the delta file in the presented chain.
        index: usize,
        /// What failed to verify.
        message: String,
    },
    /// An operation was invoked in a state it is not defined for (e.g.
    /// compaction while a repair is in flight).
    NotSettled {
        /// The rejected operation.
        what: &'static str,
    },
    /// An internal invariant was violated. Unlike the variants above
    /// this is never caused by untrusted input — it replaces what would
    /// otherwise be a panic on the serve path, so a resident service can
    /// report the failure and keep its state instead of aborting.
    Internal(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(m) => write!(f, "invalid service config: {m}"),
            ServiceError::Feed(e) => write!(f, "rejected event: {e}"),
            ServiceError::NoSuchNode { node, num_vertices } => {
                write!(f, "no such node {node}: graph has {num_vertices} vertices")
            }
            ServiceError::NoSuchEdge { u, v } => {
                write!(f, "no edge {u}-{v} in the current topology")
            }
            ServiceError::Snapshot { line, message } => {
                write!(f, "bad snapshot (line {line}): {message}")
            }
            ServiceError::CrcMismatch { expected, actual } => write!(
                f,
                "snapshot CRC mismatch: trailer says {expected:#010x}, body hashes to \
                 {actual:#010x} (truncated or corrupted file)"
            ),
            ServiceError::Replay(m) => write!(f, "history replay diverged: {m}"),
            ServiceError::Budget { ticks } => {
                write!(f, "repair failed to quiesce within {ticks} ticks")
            }
            ServiceError::Sim(e) => write!(f, "simulator error: {e}"),
            ServiceError::Chain { index, message } => {
                write!(f, "checkpoint chain broken at delta {index}: {message}")
            }
            ServiceError::NotSettled { what } => {
                write!(f, "{what} requires a settled service (quiescent, no batch pending)")
            }
            ServiceError::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<FeedError> for ServiceError {
    fn from(e: FeedError) -> Self {
        ServiceError::Feed(e)
    }
}

impl From<SimError> for ServiceError {
    fn from(e: SimError) -> Self {
        ServiceError::Sim(e)
    }
}

/// One entry of the service's replayable history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryEntry {
    /// A churn batch committed at `round`.
    Batch {
        /// 1-based commit sequence number.
        seq: u64,
        /// Round the batch was committed (and applied) at.
        round: u64,
        /// The events, in staging order.
        events: Vec<ChurnEvent>,
    },
    /// A watchdog (or operator) escalation to a full recolor at
    /// `round`.
    Recolor {
        /// Round the restart took effect at.
        round: u64,
    },
}

impl HistoryEntry {
    fn round(&self) -> u64 {
        match self {
            HistoryEntry::Batch { round, .. } | HistoryEntry::Recolor { round } => *round,
        }
    }
}

/// What one [`ColoringService::tick`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tick {
    /// Quiescent with no batch pending — no round was executed.
    Idle,
    /// One communication round executed.
    Round {
        /// 0-based index of the executed round.
        round: u64,
        /// Nodes still repairing after the round.
        active: usize,
        /// Commit sequence number of the batch applied this round, if
        /// any.
        applied: Option<u64>,
        /// Whether the service reached quiescence on this round.
        quiesced: bool,
        /// Round recorded for a watchdog escalation fired by this tick,
        /// if one was.
        escalated: Option<u64>,
    },
}

/// Per-batch repair accounting, drained via
/// [`ColoringService::take_reports`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeBatchReport {
    /// Commit sequence number.
    pub seq: u64,
    /// Round the batch was applied at.
    pub round: u64,
    /// Events in the batch.
    pub events: usize,
    /// Rounds from application to quiescence (≥ 1).
    pub repair_rounds: u64,
    /// Edges whose color assignment after repair differs from before
    /// the batch (new edges count once they are colored; removed edges
    /// are not counted) — the churn-amplification numerator. Counted
    /// against the repaired coloring, before any palette compaction.
    pub colors_changed: u64,
    /// Distinct colors in use once the batch settled (after compaction,
    /// when configured) — the serve-mode quality metric.
    pub colors_used: u64,
    /// What the post-repair Kempe compaction did, when
    /// [`crate::ColorReduction::Kempe`] is configured.
    pub reduction: Option<KempeReport>,
}

/// A service liveness/convergence summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Current round clock.
    pub round: u64,
    /// Quiescent with no batch pending.
    pub settled: bool,
    /// Vertex-slot count of the graph.
    pub nodes: usize,
    /// Nodes currently alive (per the feed's staged view).
    pub alive: usize,
    /// Staged, uncommitted events.
    pub staged: usize,
    /// Batches committed so far.
    pub batches: u64,
    /// Recolor escalations so far.
    pub escalations: u64,
    /// Distinct colors in the current coloring.
    pub colors_used: usize,
    /// [`hash_coloring`] of the current coloring.
    pub hash: u64,
}

/// What [`ColoringService::restore`] (or
/// [`ColoringService::restore_chain`]) replayed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// History entries replayed from the snapshot/base itself (zero for
    /// a materialized base — its history is already folded in).
    pub snapshot_entries: u64,
    /// History entries recovered from the journal tail.
    pub tail_entries: u64,
    /// Journal events re-staged (accepted but uncommitted at the
    /// crash).
    pub staged: u64,
    /// The journal ended mid-line (torn write) — everything before the
    /// tear was recovered.
    pub torn_tail: bool,
    /// Delta-checkpoint files verified and replayed.
    pub deltas_applied: u64,
    /// History entries replayed out of those deltas.
    pub delta_entries: u64,
    /// Delta files discarded because the chain failed verification at
    /// that point (the journal, if also discarded, is not counted
    /// here — see [`RestoreReport::journal_discarded`]).
    pub deltas_discarded: u64,
    /// The journal was discarded because it did not attach to the
    /// verified chain prefix (it was rotated against a checkpoint that
    /// was itself discarded, leaving a replay gap).
    pub journal_discarded: bool,
    /// Why the chain was cut short, if it was (display form of the
    /// verification failure; `None` on a fully verified chain). Not
    /// part of equality because it is diagnostic text.
    pub fallback: Option<ChainFallback>,
}

/// Why [`ColoringService::restore_chain`] stopped applying deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainFallback {
    /// The delta's CRC trailer did not match its body.
    Corrupt,
    /// The delta did not link to its parent (index, CRC, epoch, or
    /// history offset mismatch).
    BrokenLink,
}

impl std::fmt::Display for ChainFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainFallback::Corrupt => write!(f, "corrupt delta"),
            ChainFallback::BrokenLink => write!(f, "broken chain link"),
        }
    }
}

/// What one [`ColoringService::compact_history`] call folded away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// The epoch the service rebased into (monotonic, starts at 0 for a
    /// fresh service).
    pub epoch: u64,
    /// History entries folded into the materialized graph.
    pub folded_entries: u64,
    /// Edges of the folded (committed) topology.
    pub graph_edges: usize,
    /// Departed nodes carried as dead slots.
    pub dead_nodes: usize,
}

/// One edge of a coloring, endpoints normalized `u < v`.
///
/// For [`ServeProtocol::EdgeColoring`], `forward` and `reverse` are the
/// two endpoints' views of the single edge color (equal once repair has
/// quiesced). For [`ServeProtocol::StrongColoring`] they are the
/// `u → v` and `v → u` arc colors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColoredEdge {
    /// Lower endpoint.
    pub u: VertexId,
    /// Higher endpoint.
    pub v: VertexId,
    /// Color of the `u → v` slot.
    pub forward: Option<Color>,
    /// Color of the `v → u` slot.
    pub reverse: Option<Color>,
}

/// FNV-1a over a coloring — the bit-identity fingerprint used by
/// snapshot self-checks, the chaos harness and the serve CLI.
pub fn hash_coloring(edges: &[ColoredEdge]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for e in edges {
        for x in [
            u64::from(e.u.0) + 1,
            u64::from(e.v.0) + 1,
            e.forward.map_or(0, |c| u64::from(c.0) + 1),
            e.reverse.map_or(0, |c| u64::from(c.0) + 1),
        ] {
            h ^= x;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

// `Fn + Sync` (not just `FnMut + Send`) so the same boxed factory drives
// either engine — the parallel stepper's workers call it concurrently
// when churn joins land in different shards.
type EcFactory = Box<dyn Fn(NodeSeed<'_>) -> EdgeColoringNode + Send + Sync>;
type StrongFactory = Box<dyn Fn(NodeSeed<'_>) -> StrongColoringNode + Send + Sync>;

enum Inner {
    Ec(Stepper<EdgeColoringNode, EcFactory>),
    Strong(Stepper<StrongColoringNode, StrongFactory>),
    EcPar(ParStepper<EdgeColoringNode, EcFactory>),
    StrongPar(ParStepper<StrongColoringNode, StrongFactory>),
}

/// Dispatch one method call over all four stepper variants (the
/// sequential and parallel steppers expose the same API by design).
macro_rules! each_stepper {
    ($inner:expr, $s:ident => $body:expr) => {
        match $inner {
            Inner::Ec($s) => $body,
            Inner::Strong($s) => $body,
            Inner::EcPar($s) => $body,
            Inner::StrongPar($s) => $body,
        }
    };
}

impl Inner {
    fn round(&self) -> u64 {
        each_stepper!(self, s => s.round())
    }

    fn is_quiescent(&self) -> bool {
        each_stepper!(self, s => s.is_quiescent())
    }

    fn still_active(&self) -> usize {
        each_stepper!(self, s => s.still_active())
    }

    fn num_nodes(&self) -> usize {
        each_stepper!(self, s => s.num_nodes())
    }

    fn topology(&self) -> &Topology {
        each_stepper!(self, s => s.topology())
    }

    fn tick(&mut self, batch: Option<&ChurnBatch>) -> Result<dima_sim::RoundStats, SimError> {
        each_stepper!(self, s => s.tick(batch, &mut NoopTracer))
    }

    fn restart(&mut self) {
        each_stepper!(self, s => s.restart())
    }

    fn park_all(&mut self) {
        each_stepper!(self, s => s.park_all())
    }

    /// The strong-coloring automata, when this service runs that
    /// protocol (on either engine).
    fn strong_nodes_mut(&mut self) -> Option<&mut [StrongColoringNode]> {
        match self {
            Inner::Strong(s) => Some(s.nodes_mut()),
            Inner::StrongPar(s) => Some(s.nodes_mut()),
            Inner::Ec(_) | Inner::EcPar(_) => None,
        }
    }

    /// The edge-coloring automata, when this service runs that protocol
    /// (on either engine).
    fn ec_nodes_mut(&mut self) -> Option<&mut [EdgeColoringNode]> {
        match self {
            Inner::Ec(s) => Some(s.nodes_mut()),
            Inner::EcPar(s) => Some(s.nodes_mut()),
            Inner::Strong(_) | Inner::StrongPar(_) => None,
        }
    }

    fn edge_slots(&self, u: VertexId, v: VertexId) -> (Option<Color>, Option<Color>) {
        match self {
            Inner::Ec(s) => {
                let nodes = s.nodes();
                (nodes[u.0 as usize].color_toward(v), nodes[v.0 as usize].color_toward(u))
            }
            Inner::EcPar(s) => {
                let nodes = s.nodes();
                (nodes[u.0 as usize].color_toward(v), nodes[v.0 as usize].color_toward(u))
            }
            Inner::Strong(s) => {
                let nodes = s.nodes();
                (nodes[u.0 as usize].out_color_toward(v), nodes[v.0 as usize].out_color_toward(u))
            }
            Inner::StrongPar(s) => {
                let nodes = s.nodes();
                (nodes[u.0 as usize].out_color_toward(v), nodes[v.0 as usize].out_color_toward(u))
            }
        }
    }

    fn palette(&self, v: VertexId) -> Vec<Color> {
        each_stepper!(self, s => s.nodes()[v.0 as usize].palette())
    }
}

struct OpenBatch {
    seq: u64,
    round: u64,
    events: usize,
    pre: HashMap<(u32, u32), (Option<Color>, Option<Color>)>,
}

/// A live, crash-recoverable coloring of a mutating graph. See the
/// [module docs](self) for the execution and recovery model.
pub struct ColoringService {
    cfg: ServiceConfig,
    g0: Graph,
    d0: Option<Digraph>,
    palette_bound0: u32,
    feed: EventFeed,
    inner: Inner,
    /// Number of history compactions applied so far. Each compaction
    /// rebases the service onto fresh per-node RNG streams derived from
    /// `epoch_seed(master, epoch)` and resets the round clock and
    /// history, so the epoch (recorded in materialized bases) is part of
    /// the service's deterministic identity.
    epoch: u64,
    pending: Option<ChurnBatch>,
    pending_seq: u64,
    history: Vec<HistoryEntry>,
    batches_committed: u64,
    escalations: u64,
    watchdog_armed: bool,
    stall_ticks: u64,
    progress_hwm: u64,
    backoff: u32,
    open_batch: Option<OpenBatch>,
    reports: Vec<ServeBatchReport>,
}

/// Per-node RNG master seed for `epoch`. Epoch 0 is the configured seed
/// itself (a fresh, never-compacted service is bit-compatible with every
/// pre-compaction snapshot); later epochs mix the epoch index in through
/// splitmix64 so each rebase starts statistically fresh streams while
/// staying a pure function of `(master, epoch)`.
fn epoch_seed(master: u64, epoch: u64) -> u64 {
    if epoch == 0 {
        master
    } else {
        splitmix64(splitmix64(master) ^ splitmix64(0x5EED_BA5E ^ epoch))
    }
}

impl ColoringService {
    /// Build the engine and per-protocol artifacts for `cfg` over `g`,
    /// with per-node RNG streams seeded from `engine_seed` (the
    /// [`epoch_seed`] of the current epoch — the configured master seed
    /// for epoch 0). Shared by the fresh-service constructor and the
    /// compaction rebase.
    fn build_inner(
        g: &Graph,
        cfg: &ServiceConfig,
        engine_seed: u64,
    ) -> (Inner, Option<Digraph>, u32) {
        let delta = g.max_degree();
        let palette_bound = ((2 * delta).saturating_sub(1)).max(1) as u32;
        let engine_cfg = EngineConfig {
            seed: engine_seed,
            max_rounds: u64::MAX,
            collect_round_stats: false,
            validate_sends: cfg.coloring.validate_sends,
            faults: FaultPlan::reliable(),
            profile: false,
            metrics: false,
        };
        let topo = Topology::from_graph(g);
        let mut d0 = None;
        let inner = match cfg.protocol {
            ServeProtocol::EdgeColoring => {
                let ccfg = cfg.coloring.clone();
                let factory: EcFactory = Box::new(move |seed: NodeSeed<'_>| {
                    EdgeColoringNode::new(&seed, &ccfg, palette_bound)
                });
                match cfg.coloring.engine {
                    Engine::Sequential => Inner::Ec(Stepper::new(&topo, &engine_cfg, factory)),
                    Engine::Parallel { threads } => {
                        Inner::EcPar(ParStepper::new(&topo, &engine_cfg, threads, factory))
                    }
                }
            }
            ServeProtocol::StrongColoring => {
                let d = Digraph::symmetric_closure(g);
                d0 = Some(d.clone());
                let ccfg = cfg.coloring.clone();
                let factory: StrongFactory =
                    Box::new(move |seed: NodeSeed<'_>| StrongColoringNode::new(&seed, &d, &ccfg));
                match cfg.coloring.engine {
                    Engine::Sequential => Inner::Strong(Stepper::new(&topo, &engine_cfg, factory)),
                    Engine::Parallel { threads } => {
                        Inner::StrongPar(ParStepper::new(&topo, &engine_cfg, threads, factory))
                    }
                }
            }
        };
        (inner, d0, palette_bound)
    }

    /// Start a fresh service over `g0`. The initial coloring has not
    /// run yet — call [`ColoringService::run_to_quiescence`] (or tick)
    /// to converge it.
    pub fn new(g0: &Graph, cfg: ServiceConfig) -> Result<Self, ServiceError> {
        cfg.validate()?;
        let (inner, d0, palette_bound0) = Self::build_inner(g0, &cfg, cfg.coloring.seed);
        Ok(ColoringService {
            cfg,
            g0: g0.clone(),
            d0,
            palette_bound0,
            feed: EventFeed::new(g0),
            inner,
            epoch: 0,
            pending: None,
            pending_seq: 0,
            history: Vec::new(),
            batches_committed: 0,
            escalations: 0,
            watchdog_armed: true,
            stall_ticks: 0,
            progress_hwm: 0,
            backoff: 0,
            open_batch: None,
            reports: Vec::new(),
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Current round clock.
    pub fn round(&self) -> u64 {
        self.inner.round()
    }

    /// Quiescent with no committed batch awaiting application — the
    /// state in which the next staged batch may commit.
    pub fn is_settled(&self) -> bool {
        self.pending.is_none() && self.inner.is_quiescent()
    }

    /// Staged, uncommitted events.
    pub fn staged(&self) -> usize {
        self.feed.staged()
    }

    /// The staged, uncommitted events in staging order — what a journal
    /// rotation must carry over.
    pub fn staged_events(&self) -> &[ChurnEvent] {
        self.feed.staged_events()
    }

    /// Committed batches so far (cumulative across compactions).
    pub fn batches_committed(&self) -> u64 {
        self.batches_committed
    }

    /// Number of history compactions applied so far (see
    /// [`ColoringService::compact_history`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Recolor escalations so far.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// The replayable history (committed batches and escalations).
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// Number of history entries — the `h` index the next journal
    /// marker should carry is `history_len() + 1`.
    pub fn history_len(&self) -> u64 {
        self.history.len() as u64
    }

    /// Validate and stage one churn event for the next batch. Rejected
    /// events leave the service untouched.
    pub fn stage(&mut self, ev: ChurnEvent) -> Result<(), ServiceError> {
        self.feed.stage(ev).map_err(ServiceError::Feed)
    }

    /// Reverse the most recently staged event (see
    /// [`EventFeed::unstage_last`]) — the durability back-out for an
    /// ingest loop that accepted an event but failed to journal it.
    pub fn unstage_last(&mut self) -> Option<ChurnEvent> {
        self.feed.unstage_last()
    }

    /// `(seq, round)` the staged events would commit as right now, or
    /// `None` if there is nothing staged or a repair is still running.
    pub fn next_commit(&self) -> Option<(u64, u64)> {
        (self.is_settled() && self.feed.staged() > 0)
            .then(|| (self.batches_committed + 1, self.inner.round()))
    }

    /// Commit the staged events as one batch, to be applied on the next
    /// tick. Returns the commit `(seq, round)`, or `Ok(None)` when
    /// [`ColoringService::next_commit`] is `None`. The error arm covers
    /// an internal feed/service desynchronization (it can only fire on a
    /// bug, never on bad input — but a resident service must report it,
    /// not abort).
    pub fn commit(&mut self) -> Result<Option<(u64, u64)>, ServiceError> {
        let Some((seq, round)) = self.next_commit() else {
            return Ok(None);
        };
        let batch = self.feed.commit(round).ok_or_else(|| {
            ServiceError::Internal(format!(
                "next_commit promised batch {seq} at round {round} but the feed had nothing staged"
            ))
        })?;
        self.history.push(HistoryEntry::Batch { seq, round, events: batch.events.clone() });
        self.pending = Some(batch);
        self.pending_seq = seq;
        self.batches_committed = seq;
        Ok(Some((seq, round)))
    }

    /// Escalate to a full recolor now: every surviving node restarts
    /// the protocol on the current topology. Recorded in the history
    /// (journal it with [`ColoringService::journal_recolor_line`]).
    /// Returns the recorded round.
    pub fn force_recolor(&mut self) -> u64 {
        self.escalate()
    }

    fn escalate(&mut self) -> u64 {
        let round = self.inner.round();
        self.inner.restart();
        self.history.push(HistoryEntry::Recolor { round });
        self.escalations += 1;
        self.stall_ticks = 0;
        self.progress_hwm = 0;
        self.backoff = self.backoff.saturating_add(1);
        round
    }

    /// Committed color slots plus done nodes — the watchdog's progress
    /// metric. A healthy repair raises it every few ticks; a genuinely
    /// wedged one cannot.
    fn progress_metric(&self, done: usize) -> u64 {
        let slots =
            self.coloring_map().values().flat_map(|&(a, b)| [a, b]).filter(Option::is_some).count();
        slots as u64 + done as u64
    }

    /// Execute one communication round, applying a pending batch first
    /// if one was committed. Idle (quiescent, nothing pending) ticks
    /// execute nothing and consume no randomness.
    pub fn tick(&mut self) -> Result<Tick, ServiceError> {
        if self.pending.is_none() && self.inner.is_quiescent() {
            return Ok(Tick::Idle);
        }
        let applied = self.pending.take();
        let applied_seq = applied.as_ref().map(|_| self.pending_seq);
        if let Some(b) = &applied {
            self.open_batch = Some(OpenBatch {
                seq: self.pending_seq,
                round: b.round,
                events: b.events.len(),
                pre: self.coloring_map(),
            });
            self.stall_ticks = 0;
            self.progress_hwm = 0;
            self.backoff = 0;
        }
        let rs = self.inner.tick(applied.as_ref())?;
        let mut escalated = None;
        let quiesced = self.inner.is_quiescent();
        if quiesced {
            self.stall_ticks = 0;
            self.backoff = 0;
            let open = self.open_batch.take();
            // The churn-amplification numerator measures the *repair*,
            // so diff before compacting.
            let colors_changed = open.as_ref().map(|open| {
                let post = self.coloring_map();
                post.iter().filter(|(k, v)| open.pre.get(k) != Some(*v)).count() as u64
            });
            let reduction = self.compact();
            if let Some(open) = open {
                self.reports.push(ServeBatchReport {
                    seq: open.seq,
                    round: open.round,
                    events: open.events,
                    repair_rounds: self.inner.round() - open.round,
                    colors_changed: colors_changed.unwrap_or(0),
                    colors_used: self.distinct_colors(),
                    reduction,
                });
            }
        } else if self.watchdog_armed && self.cfg.watchdog_ticks > 0 {
            let progress = self.progress_metric(rs.done);
            if progress > self.progress_hwm {
                self.progress_hwm = progress;
                self.stall_ticks = 0;
            } else {
                self.stall_ticks += 1;
                let threshold =
                    self.cfg.watchdog_ticks.saturating_mul(1u64 << self.backoff.min(16));
                if self.stall_ticks >= threshold {
                    escalated = Some(self.escalate());
                }
            }
        }
        Ok(Tick::Round {
            round: rs.round,
            active: self.inner.still_active(),
            applied: applied_seq,
            quiesced,
            escalated,
        })
    }

    /// Tick until settled, at most `max_ticks` rounds. Returns the
    /// number of rounds executed, or [`ServiceError::Budget`].
    pub fn run_to_quiescence(&mut self, max_ticks: u64) -> Result<u64, ServiceError> {
        let mut ticks = 0u64;
        while !self.is_settled() {
            if ticks >= max_ticks {
                return Err(ServiceError::Budget { ticks });
            }
            self.tick()?;
            ticks += 1;
        }
        Ok(ticks)
    }

    /// A generous tick budget for one repair on the current topology:
    /// three communication rounds per computation round of the
    /// configured budget, tripled for escalation headroom.
    pub fn tick_budget(&self) -> u64 {
        let topo = self.inner.topology();
        let delta = topo.max_degree().max(1);
        3 * 3 * self.cfg.coloring.compute_round_budget(delta) + 64
    }

    /// Drain the per-batch repair reports accumulated since the last
    /// call.
    pub fn take_reports(&mut self) -> Vec<ServeBatchReport> {
        std::mem::take(&mut self.reports)
    }

    fn check_node(&self, v: VertexId) -> Result<(), ServiceError> {
        if (v.0 as usize) < self.inner.num_nodes() {
            Ok(())
        } else {
            Err(ServiceError::NoSuchNode { node: v, num_vertices: self.inner.num_nodes() })
        }
    }

    /// The committed color slots on edge `u`-`v` (see [`ColoredEdge`]
    /// for the per-protocol meaning). Errors on unknown vertices or a
    /// non-edge.
    pub fn edge_color(
        &self,
        u: VertexId,
        v: VertexId,
    ) -> Result<(Option<Color>, Option<Color>), ServiceError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if !self.inner.topology().are_neighbors(u, v) {
            return Err(ServiceError::NoSuchEdge { u, v });
        }
        Ok(self.inner.edge_slots(u, v))
    }

    /// Every color committed on `v`'s surviving edges, ascending.
    pub fn node_palette(&self, v: VertexId) -> Result<Vec<Color>, ServiceError> {
        self.check_node(v)?;
        Ok(self.inner.palette(v))
    }

    /// Distinct colors committed across the current coloring.
    fn distinct_colors(&self) -> u64 {
        let set: ColorSet =
            self.coloring_map().values().flat_map(|&(f, r)| [f, r]).flatten().collect();
        set.len() as u64
    }

    /// Run the configured Kempe pass over the settled coloring and
    /// write the compacted colors back into the parked automata — the
    /// serve-mode "compaction after repair commit". Out-of-band: the
    /// pass runs on an ephemeral engine and does not advance the
    /// service round clock, so recorded history rounds stay valid and
    /// snapshot replay (which re-enters this path at the same
    /// quiescence transitions) reproduces it bit-for-bit. Returns
    /// `None` when reduction is off, the protocol is not edge coloring,
    /// or the settled coloring is unusable (endpoint disagreement).
    fn compact(&mut self) -> Option<KempeReport> {
        let ColorReduction::Kempe(kcfg) = self.cfg.coloring.reduction else {
            return None;
        };
        if !matches!(self.inner, Inner::Ec(_) | Inner::EcPar(_)) {
            return None;
        }
        // Rebuild the live graph (edge ids: u ascending, then v) and
        // lift the settled coloring off the automata.
        let topo = self.inner.topology();
        let n = topo.num_nodes();
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for i in 0..n {
            let u = VertexId(i as u32);
            for &v in topo.neighbors(u) {
                if v > u {
                    pairs.push((u, v));
                }
            }
        }
        let mut colors: Vec<Option<Color>> = Vec::with_capacity(pairs.len());
        let mut b = GraphBuilder::with_capacity(n, pairs.len());
        for &(u, v) in &pairs {
            b.add_edge(u, v);
            let (fwd, rev) = self.inner.edge_slots(u, v);
            if fwd != rev {
                return None;
            }
            colors.push(fwd);
        }
        let g = b.build().ok()?;
        let alive: Vec<bool> = (0..n).map(|i| self.feed.is_alive(VertexId(i as u32))).collect();
        let report =
            crate::kempe::reduce_palette(&g, &mut colors, &alive, &kcfg, &self.cfg.coloring)
                .ok()?;
        if report.trivial_recolors + report.chains_flipped > 0 {
            // Write back: each parked node adopts its port colors and
            // its neighbors' full post-compaction palettes (so future
            // repair proposals stay exact — Proposition 2 relies on
            // one-hop knowledge being current at quiescence).
            let mut by_edge: HashMap<(u32, u32), Option<Color>> = HashMap::new();
            for (&(u, v), &c) in pairs.iter().zip(colors.iter()) {
                by_edge.insert((u.0, v.0), c);
            }
            let color_of = |u: VertexId, v: VertexId| {
                let key = if u < v { (u.0, v.0) } else { (v.0, u.0) };
                by_edge.get(&key).copied().flatten()
            };
            let palettes: Vec<ColorSet> = (0..n)
                .map(|i| {
                    let u = VertexId(i as u32);
                    topo.neighbors(u).iter().filter_map(|&v| color_of(u, v)).collect()
                })
                .collect();
            let per_node: Vec<(Vec<Option<Color>>, Vec<ColorSet>)> = (0..n)
                .map(|i| {
                    let u = VertexId(i as u32);
                    let own = topo.neighbors(u).iter().map(|&v| color_of(u, v)).collect::<Vec<_>>();
                    let knowledge = topo
                        .neighbors(u)
                        .iter()
                        .map(|&v| palettes[v.index()].clone())
                        .collect::<Vec<_>>();
                    (own, knowledge)
                })
                .collect();
            // The protocol was matched as edge-coloring above; if the
            // engine variant disagrees, skip the write-back rather than
            // panic — the un-compacted coloring is still proper.
            let nodes = self.inner.ec_nodes_mut()?;
            for (i, (own, knowledge)) in per_node.into_iter().enumerate() {
                nodes[i].adopt_compaction(&own, knowledge);
            }
        }
        Some(report)
    }

    fn coloring_map(&self) -> SlotMap {
        let topo = self.inner.topology();
        let mut map = HashMap::new();
        for i in 0..topo.num_nodes() {
            let u = VertexId(i as u32);
            for &v in topo.neighbors(u) {
                if v.0 > u.0 {
                    map.insert((u.0, v.0), self.inner.edge_slots(u, v));
                }
            }
        }
        map
    }

    /// The full current coloring, sorted by `(u, v)`.
    pub fn coloring(&self) -> Vec<ColoredEdge> {
        let mut out: Vec<ColoredEdge> = self
            .coloring_map()
            .into_iter()
            .map(|((u, v), (forward, reverse))| ColoredEdge {
                u: VertexId(u),
                v: VertexId(v),
                forward,
                reverse,
            })
            .collect();
        out.sort_by_key(|e| (e.u, e.v));
        out
    }

    /// [`hash_coloring`] of [`ColoringService::coloring`].
    pub fn coloring_hash(&self) -> u64 {
        hash_coloring(&self.coloring())
    }

    /// A liveness/convergence summary.
    pub fn status(&self) -> ServiceStatus {
        let coloring = self.coloring();
        let mut colors: Vec<u32> =
            coloring.iter().flat_map(|e| [e.forward, e.reverse]).flatten().map(|c| c.0).collect();
        colors.sort_unstable();
        colors.dedup();
        let n = self.inner.num_nodes();
        let alive = (0..n).filter(|&i| self.feed.is_alive(VertexId(i as u32))).count();
        ServiceStatus {
            round: self.inner.round(),
            settled: self.is_settled(),
            nodes: n,
            alive,
            staged: self.feed.staged(),
            batches: self.batches_committed,
            escalations: self.escalations,
            colors_used: colors.len(),
            hash: hash_coloring(&coloring),
        }
    }

    // ------------------------------------------------------------------
    // History compaction (epoch rebase)
    // ------------------------------------------------------------------

    /// Adopt `coloring` (the committed slot map, keyed `(u, v)` with
    /// `u < v`) into freshly built automata. The adopted knowledge —
    /// edge coloring: neighbor palettes; strong coloring: one-hop
    /// committed channels as the forbidden set — is a pure function of
    /// the coloring, which is what makes a rebase deterministic: a live
    /// compaction and a restore from the resulting materialized base
    /// reconstruct byte-identical automata.
    fn adopt_coloring(inner: &mut Inner, coloring: &SlotMap) {
        // Directed slots of the `u`-`v` edge from `u`'s side: (u's slot
        // toward v, v's slot toward u).
        let slot = |u: VertexId, v: VertexId| -> (Option<Color>, Option<Color>) {
            if u.0 < v.0 {
                coloring.get(&(u.0, v.0)).copied().unwrap_or((None, None))
            } else {
                let (f, r) = coloring.get(&(v.0, u.0)).copied().unwrap_or((None, None));
                (r, f)
            }
        };
        let is_ec = matches!(inner, Inner::Ec(_) | Inner::EcPar(_));
        let topo = inner.topology();
        let n = topo.num_nodes();
        if is_ec {
            let palettes: Vec<ColorSet> = (0..n)
                .map(|i| {
                    let u = VertexId(i as u32);
                    topo.neighbors(u).iter().filter_map(|&v| slot(u, v).0).collect()
                })
                .collect();
            let per_node: Vec<(Vec<Option<Color>>, Vec<ColorSet>)> = (0..n)
                .map(|i| {
                    let u = VertexId(i as u32);
                    let own = topo.neighbors(u).iter().map(|&v| slot(u, v).0).collect::<Vec<_>>();
                    let knowledge =
                        topo.neighbors(u).iter().map(|&v| palettes[v.index()].clone()).collect();
                    (own, knowledge)
                })
                .collect();
            let Some(nodes) = inner.ec_nodes_mut() else { return };
            for (i, (own, knowledge)) in per_node.into_iter().enumerate() {
                nodes[i].adopt_compaction(&own, knowledge);
            }
        } else {
            // A strong-coloring node's forbidden set accumulates every
            // channel it has seen claimed: its own plus whatever Used and
            // Hello traffic from direct neighbors reported — exactly the
            // one-hop committed channels at quiescence.
            let incident: Vec<Vec<Color>> = (0..n)
                .map(|i| {
                    let u = VertexId(i as u32);
                    topo.neighbors(u)
                        .iter()
                        .flat_map(|&v| {
                            let (out, inc) = slot(u, v);
                            [out, inc]
                        })
                        .flatten()
                        .collect()
                })
                .collect();
            let per_node: Vec<StrongRebaseSlots> = (0..n)
                .map(|i| {
                    let u = VertexId(i as u32);
                    let out = topo.neighbors(u).iter().map(|&v| slot(u, v).0).collect::<Vec<_>>();
                    let inc = topo.neighbors(u).iter().map(|&v| slot(u, v).1).collect::<Vec<_>>();
                    let forbidden: ColorSet = incident[i]
                        .iter()
                        .copied()
                        .chain(
                            topo.neighbors(u)
                                .iter()
                                .flat_map(|&v| incident[v.index()].iter().copied()),
                        )
                        .collect();
                    (out, inc, forbidden)
                })
                .collect();
            let Some(nodes) = inner.strong_nodes_mut() else { return };
            for (i, (out, inc, forbidden)) in per_node.into_iter().enumerate() {
                nodes[i].adopt_rebase(&out, &inc, forbidden);
            }
        }
    }

    /// Build a service directly in a settled, rebased state: fresh
    /// automata over `g` (with the departed nodes in `dead` present as
    /// parked isolated slots), per-node RNG streams at `epoch`, and
    /// `coloring` adopted into the parked nodes. The caller supplies the
    /// cumulative counters a rebase carries across epochs. Shared by
    /// [`ColoringService::compact_history`] (live) and the
    /// materialized-base restore (recovery) — both must produce the same
    /// service for checkpoints to stay bit-compatible.
    fn build_rebased(
        g: &Graph,
        dead: &[VertexId],
        coloring: &SlotMap,
        cfg: ServiceConfig,
        epoch: u64,
        batches_committed: u64,
        escalations: u64,
    ) -> Result<Self, ServiceError> {
        cfg.validate()?;
        let (mut inner, d0, palette_bound0) =
            Self::build_inner(g, &cfg, epoch_seed(cfg.coloring.seed, epoch));
        Self::adopt_coloring(&mut inner, coloring);
        inner.park_all();
        Ok(ColoringService {
            cfg,
            g0: g.clone(),
            d0,
            palette_bound0,
            feed: EventFeed::with_dead(g, dead),
            inner,
            epoch,
            pending: None,
            pending_seq: 0,
            history: Vec::new(),
            batches_committed,
            escalations,
            watchdog_armed: true,
            stall_ticks: 0,
            progress_hwm: 0,
            backoff: 0,
            open_batch: None,
            reports: Vec::new(),
        })
    }

    /// Fold the committed history into the topology and rebase the
    /// service into the next epoch: the replay prefix disappears, the
    /// committed graph becomes the new `g0` (departed nodes stay as
    /// parked isolated slots so their ids remain reserved), the settled
    /// coloring is adopted verbatim, and the round clock restarts at 0
    /// on RNG streams derived from [`epoch_seed`]. Staged events
    /// survive; `batches_committed`/`escalations` stay cumulative.
    ///
    /// Requires a settled service. After compacting, persist a
    /// [`ColoringService::base_text`] checkpoint — every earlier
    /// snapshot, delta, and journal entry is now unreplayable against
    /// this service (their epoch no longer matches).
    pub fn compact_history(&mut self) -> Result<CompactReport, ServiceError> {
        if !self.is_settled() {
            return Err(ServiceError::NotSettled { what: "history compaction" });
        }
        let folded_entries = self.history.len() as u64;
        let hash_before = self.coloring_hash();
        let g = self.feed.committed_graph();
        let dead = self.feed.committed_dead();
        let coloring = self.coloring_map();
        let staged: Vec<ChurnEvent> = self.feed.staged_events().to_vec();
        let epoch = self.epoch + 1;
        let mut next = Self::build_rebased(
            &g,
            &dead,
            &coloring,
            self.cfg.clone(),
            epoch,
            self.batches_committed,
            self.escalations,
        )?;
        for ev in staged {
            next.stage(ev).map_err(|e| {
                ServiceError::Internal(format!("staged event no longer applies after rebase: {e}"))
            })?;
        }
        if next.coloring_hash() != hash_before {
            return Err(ServiceError::Internal(format!(
                "rebase changed the coloring: {:#018x} != {hash_before:#018x}",
                next.coloring_hash()
            )));
        }
        next.reports = std::mem::take(&mut self.reports);
        *self = next;
        Ok(CompactReport {
            epoch,
            folded_entries,
            graph_edges: self.g0.num_edges(),
            dead_nodes: dead.len(),
        })
    }

    // ------------------------------------------------------------------
    // Snapshot + journal wire format
    // ------------------------------------------------------------------

    /// Journal line for an accepted event. Append (and flush) this
    /// *before* acknowledging the event.
    pub fn journal_event_line(ev: &ChurnEvent) -> String {
        event_line(ev)
    }

    /// Journal line for a batch commit. `epoch` is the service epoch the
    /// entry belongs to ([`ColoringService::epoch`]), `h` is the history
    /// index the entry will occupy ([`ColoringService::history_len`]` +
    /// 1` when written before the [`ColoringService::commit`] call),
    /// `(seq, round)` is what [`ColoringService::next_commit`] returned.
    /// Append and flush *before* committing — recovery replays the
    /// marker, and a marker without its commit is harmless because the
    /// commit round is deterministic. The `(epoch, h)` pair is what lets
    /// a stale (unrotated) journal deduplicate against any checkpoint:
    /// markers at an older epoch, or at this epoch but an already-
    /// captured index, are dropped on restore.
    pub fn journal_commit_line(epoch: u64, h: u64, seq: u64, round: u64) -> String {
        format!("{{\"type\":\"commit\",\"e\":{epoch},\"h\":{h},\"seq\":{seq},\"round\":{round}}}\n")
    }

    /// Journal line for a recolor escalation recorded at `round` as
    /// history entry `h` (equal to [`ColoringService::history_len`]
    /// right after the tick that escalated) in `epoch`.
    pub fn journal_recolor_line(epoch: u64, h: u64, round: u64) -> String {
        format!("{{\"type\":\"recolor\",\"e\":{epoch},\"h\":{h},\"round\":{round}}}\n")
    }

    /// The configuration fragment shared by every checkpoint header —
    /// enough to reconstruct the [`ServiceConfig`], minus the engine
    /// (which is the restoring host's choice — the coloring is
    /// bit-identical on either). Reduction settings ride along so a
    /// restored service keeps compacting exactly as the live one did;
    /// all-zero (and absent, for pre-reduction snapshots) means off.
    fn config_header_fragment(&self) -> String {
        let c = &self.cfg.coloring;
        let (rk, rt, rc, ra, rr) = match c.reduction {
            ColorReduction::Off => (0, 0, 0, 0, 0),
            ColorReduction::Kempe(k) => (
                1u64,
                u64::from(k.target_colors.unwrap_or(0)),
                k.max_chain as u64,
                u64::from(k.max_attempts),
                k.max_rounds.unwrap_or(0),
            ),
        };
        format!(
            "\"protocol\":\"{}\",\"seed\":{},\"invite_bits\":{},\
             \"color_policy\":\"{}\",\"response_policy\":\"{}\",\"width\":{},\
             \"max_compute\":{},\"validate_sends\":{},\"watchdog\":{},\
             \"reduce\":{rk},\"reduce_target\":{rt},\"reduce_chain\":{rc},\
             \"reduce_attempts\":{ra},\"reduce_rounds\":{rr}",
            self.cfg.protocol.name(),
            c.seed,
            c.invite_probability.to_bits(),
            color_policy_name(c.color_policy),
            response_policy_name(c.response_policy),
            c.proposal_width,
            c.max_compute_rounds.unwrap_or(0),
            u64::from(c.validate_sends),
            self.cfg.watchdog_ticks,
        )
    }

    /// Serialize the service to its flat-JSONL full snapshot: header,
    /// the initial graph, the replayable history, a CRC-32 trailer.
    /// Valid at any point of execution — restore replays the history
    /// and fast-forwards the in-flight repair (if any) to quiescence.
    ///
    /// Only meaningful at epoch 0: a full snapshot replays from the
    /// initial graph with the master seed, which a compacted service no
    /// longer does. Restore rejects nonzero-epoch snapshots — a
    /// compacted service persists [`ColoringService::base_text`] plus
    /// deltas instead.
    pub fn snapshot_text(&self) -> String {
        let settled = self.is_settled();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"serve-snapshot\",\"version\":{SNAPSHOT_VERSION},{},\
             \"epoch\":{},\"n\":{},\"edges\":{},\"history\":{},\"batches\":{},\
             \"quiescent\":{},\"round\":{},\"hash\":{}}}\n",
            self.config_header_fragment(),
            self.epoch,
            self.g0.num_vertices(),
            self.g0.num_edges(),
            self.history.len(),
            self.batches_committed,
            u64::from(settled),
            self.inner.round(),
            self.coloring_hash(),
        ));
        for (_, (u, v)) in self.g0.edges() {
            out.push_str(&format!("{{\"type\":\"edge\",\"u\":{},\"v\":{}}}\n", u.0, v.0));
        }
        push_history_lines(&mut out, self.epoch, 0, &self.history);
        let crc = crc32(out.as_bytes());
        out.push_str(&format!("{{\"type\":\"crc\",\"value\":{crc}}}\n"));
        out
    }

    /// Serialize a materialized-base checkpoint: the folded topology,
    /// dead set, and settled coloring of a just-rebased service, CRC
    /// trailer included. Only valid immediately after
    /// [`ColoringService::compact_history`] (history empty, round clock
    /// at 0, settled): a base claims "rebuild me by rebasing at this
    /// epoch", which is bit-exact only against a service that has not
    /// consumed any randomness in its epoch yet.
    pub fn base_text(&self) -> Result<String, ServiceError> {
        if !self.history.is_empty() || self.inner.round() != 0 || !self.is_settled() {
            return Err(ServiceError::NotSettled { what: "materialized-base write" });
        }
        let dead = self.feed.committed_dead();
        let coloring = self.coloring();
        let staged = self.feed.staged_events();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"serve-base\",\"version\":{BASE_VERSION},{},\
             \"epoch\":{},\"n\":{},\"edges\":{},\"dead\":{},\"staged\":{},\"batches\":{},\
             \"escalations\":{},\"quiescent\":1,\"round\":0,\"hash\":{}}}\n",
            self.config_header_fragment(),
            self.epoch,
            self.g0.num_vertices(),
            coloring.len(),
            dead.len(),
            staged.len(),
            self.batches_committed,
            self.escalations,
            self.coloring_hash(),
        ));
        for v in &dead {
            out.push_str(&format!("{{\"type\":\"dead\",\"node\":{}}}\n", v.0));
        }
        // Color slots are written shifted by one so 0 reads "uncolored"
        // without an extra null-handling arm in the record parser.
        for e in &coloring {
            out.push_str(&format!(
                "{{\"type\":\"cedge\",\"u\":{},\"v\":{},\"f\":{},\"r\":{}}}\n",
                e.u.0,
                e.v.0,
                e.forward.map_or(0, |c| u64::from(c.0) + 1),
                e.reverse.map_or(0, |c| u64::from(c.0) + 1),
            ));
        }
        // Staged (acked but uncommitted) events ride in the base so a
        // crash between base rename and journal rotation cannot lose
        // them: a discarded journal falls back to the base's copy.
        for ev in staged {
            out.push_str(&event_line(ev));
        }
        let crc = crc32(out.as_bytes());
        out.push_str(&format!("{{\"type\":\"crc\",\"value\":{crc}}}\n"));
        Ok(out)
    }

    /// Serialize history entries `from_h..` as delta checkpoint `chain`
    /// (1-based position after the base) whose parent file — the base
    /// for chain 1, the previous delta otherwise — has CRC
    /// `parent_crc`. The parent CRC is what links the chain: a delta
    /// left over from before a compaction (or an aborted checkpoint)
    /// fails the linkage check on restore and is discarded rather than
    /// misapplied.
    pub fn delta_text(
        &self,
        from_h: u64,
        chain: u64,
        parent_crc: u32,
    ) -> Result<String, ServiceError> {
        let from = from_h as usize;
        if from > self.history.len() {
            return Err(ServiceError::Internal(format!(
                "delta start h={from_h} is beyond the history ({} entries)",
                self.history.len()
            )));
        }
        let entries = &self.history[from..];
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"serve-delta\",\"version\":{DELTA_VERSION},\"chain\":{chain},\
             \"epoch\":{},\"h_base\":{from_h},\"entries\":{},\"parent_crc\":{parent_crc},\
             \"quiescent\":{},\"round\":{},\"hash\":{}}}\n",
            self.epoch,
            entries.len(),
            u64::from(self.is_settled()),
            self.inner.round(),
            self.coloring_hash(),
        ));
        push_history_lines(&mut out, self.epoch, from_h, entries);
        let crc = crc32(out.as_bytes());
        out.push_str(&format!("{{\"type\":\"crc\",\"value\":{crc}}}\n"));
        Ok(out)
    }

    /// Rebuild a service from a snapshot, then recover the tail from a
    /// journal if one is given. The snapshot is CRC-checked and
    /// structurally validated; the journal is read tolerantly (a torn
    /// final line ends recovery at the tear). The restored service has
    /// finished any in-flight repair (it is settled unless journal
    /// events were re-staged). Replays sequentially — a pooled host uses
    /// [`ColoringService::restore_with`].
    pub fn restore(
        snapshot: &str,
        journal: Option<&str>,
    ) -> Result<(Self, RestoreReport), ServiceError> {
        Self::restore_with(snapshot, journal, Engine::Sequential)
    }

    /// [`ColoringService::restore`] replaying on `engine`. The coloring
    /// is bit-identical on either engine (the acceptance suite pins
    /// this), so a host running a worker pool restores on the pool
    /// instead of single-threading the replay.
    pub fn restore_with(
        snapshot: &str,
        journal: Option<&str>,
        engine: Engine,
    ) -> Result<(Self, RestoreReport), ServiceError> {
        Self::restore_chain(snapshot, &[], journal, engine)
    }

    /// Rebuild a service from a checkpoint chain: a base (either a full
    /// `serve-snapshot` or a materialized `serve-base`), zero or more
    /// `serve-delta` files in chain order, and an optional journal
    /// tail.
    ///
    /// The base must verify — a corrupt base is a hard error. Deltas
    /// are verified link by link (CRC, chain position, epoch, history
    /// offset, parent CRC); the first delta that fails ends the chain
    /// there, discarding it, every later delta, *and the journal*
    /// (which was rotated against the newest delta and cannot bridge
    /// the gap) — recovery proceeds from the newest verifiable
    /// checkpoint and the [`RestoreReport::fallback`] field says why.
    /// Journal markers already captured by the chain (older epoch, or
    /// this epoch at an already-covered history index) deduplicate
    /// away.
    pub fn restore_chain(
        base: &str,
        deltas: &[&str],
        journal: Option<&str>,
        engine: Engine,
    ) -> Result<(Self, RestoreReport), ServiceError> {
        let (mut svc, mut entries, info) = Self::parse_base(base, engine)?;
        let snapshot_entries = entries.len() as u64;
        let mut h = snapshot_entries;
        let mut parent_crc = info.crc;
        let mut quiescent = info.quiescent;
        let mut recorded_hash = info.hash;
        let mut deltas_applied = 0u64;
        let mut delta_entries = 0u64;
        let mut fallback = None;
        for text in deltas {
            match Self::parse_delta(text, deltas_applied + 1, info.epoch, h, parent_crc) {
                Ok(d) => {
                    h += d.entries.len() as u64;
                    delta_entries += d.entries.len() as u64;
                    entries.extend(d.entries);
                    parent_crc = d.crc;
                    quiescent = d.quiescent;
                    recorded_hash = d.hash;
                    deltas_applied += 1;
                }
                Err(kind) => {
                    fallback = Some(kind);
                    break;
                }
            }
        }
        let deltas_discarded = deltas.len() as u64 - deltas_applied;
        // The journal is kept only when it attaches to the verified
        // prefix: its first fresh marker must be the very next history
        // entry. A journal rotated against a delta that was then lost
        // or corrupted starts past the gap and cannot bridge it — but a
        // journal that predates a torn newest delta still carries the
        // acked events and replays seamlessly over the fallback point.
        let mut journal_discarded = false;
        let tail = match journal {
            Some(text) => {
                let parsed = parse_entry_stream(text.lines().enumerate(), info.epoch, h, false)?;
                let attaches = match parsed.first_marker {
                    Some((e, first_h)) => e == info.epoch && first_h == h + 1,
                    None => true,
                };
                if attaches {
                    parsed
                } else {
                    journal_discarded = true;
                    ParsedEntries::default()
                }
            }
            None => ParsedEntries::default(),
        };
        let tail_count = tail.entries.len() as u64;
        entries.extend(tail.entries);
        svc.replay(&entries)?;
        // The journal's staged view supersedes the base's (rotation
        // rewrites the full staged set, and a journaled commit consumed
        // the base's staged events) — but an empty journal against a
        // base that recorded staged events means rotation was torn, so
        // the base's copy is the surviving record.
        let staged_events = if journal.is_some()
            && !journal_discarded
            && (tail_count > 0 || !tail.staged.is_empty())
        {
            tail.staged
        } else {
            info.staged
        };
        for ev in &staged_events {
            svc.stage(*ev)?;
        }
        // Self-check against the newest applied artifact's recorded
        // hash, when that artifact captured a quiescent service and
        // nothing was replayed past it.
        if quiescent
            && tail_count == 0
            && fallback.is_none()
            && svc.coloring_hash() != recorded_hash
        {
            return Err(ServiceError::Replay(format!(
                "replayed coloring hash {:#018x} != recorded {recorded_hash:#018x}",
                svc.coloring_hash()
            )));
        }
        Ok((
            svc,
            RestoreReport {
                snapshot_entries,
                tail_entries: tail_count,
                staged: staged_events.len() as u64,
                torn_tail: tail.torn,
                deltas_applied,
                delta_entries,
                deltas_discarded,
                journal_discarded,
                fallback,
            },
        ))
    }

    /// Parse and verify the chain's base file, dispatching on its
    /// header tag. Returns the not-yet-replayed service, the history
    /// entries the base itself carries (empty for a materialized base),
    /// and the linkage info the delta walk continues from.
    fn parse_base(
        base: &str,
        engine: Engine,
    ) -> Result<(Self, Vec<HistoryEntry>, BaseInfo), ServiceError> {
        let (body, crc) = verify_crc(base)?;
        let crc_lineno = body.lines().count() + 1;
        let mut lines = body.lines().enumerate();
        let (_, header_text) = lines
            .next()
            .ok_or(ServiceError::Snapshot { line: 1, message: "empty snapshot".into() })?;
        let header = parse_line(header_text)
            .filter(|r| matches!(r.tag(), Some("serve-snapshot" | "serve-base")))
            .ok_or(ServiceError::Snapshot {
                line: 1,
                message: "first line is not a serve-snapshot or serve-base header".into(),
            })?;
        let materialized = header.tag() == Some("serve-base");
        let version = header_num(&header, "version")?;
        let expected_version = if materialized { BASE_VERSION } else { SNAPSHOT_VERSION };
        if version != expected_version {
            return Err(ServiceError::Snapshot {
                line: 1,
                message: format!("unsupported snapshot version {version}"),
            });
        }
        let cfg = config_from_header(&header, engine)?;
        let n = header_num(&header, "n")? as usize;
        let num_edges = header_num(&header, "edges")? as usize;
        let recorded_hash = header_num(&header, "hash")?;
        let epoch = header.num("epoch").unwrap_or(0);

        if materialized {
            let num_dead = header_num(&header, "dead")? as usize;
            let batches = header_num(&header, "batches")?;
            let escalations = header_num(&header, "escalations")?;
            let mut dead = Vec::with_capacity(num_dead.min(1 << 20));
            for _ in 0..num_dead {
                let (idx, text) = lines.next().ok_or(ServiceError::Snapshot {
                    line: crc_lineno,
                    message: "base ends inside the dead list".into(),
                })?;
                let rec =
                    parse_line(text).filter(|r| r.tag() == Some("dead")).ok_or_else(|| {
                        ServiceError::Snapshot {
                            line: idx + 1,
                            message: "expected a dead line".into(),
                        }
                    })?;
                let v =
                    rec.num("node").filter(|&v| v < n as u64).ok_or(ServiceError::Snapshot {
                        line: idx + 1,
                        message: "dead line missing node (or out of range)".into(),
                    })?;
                dead.push(VertexId(v as u32));
            }
            let mut edges = Vec::with_capacity(num_edges.min(1 << 20));
            let mut coloring = HashMap::with_capacity(num_edges.min(1 << 20));
            for _ in 0..num_edges {
                let (idx, text) = lines.next().ok_or(ServiceError::Snapshot {
                    line: crc_lineno,
                    message: "base ends inside the coloring".into(),
                })?;
                let rec =
                    parse_line(text).filter(|r| r.tag() == Some("cedge")).ok_or_else(|| {
                        ServiceError::Snapshot {
                            line: idx + 1,
                            message: "expected a cedge line".into(),
                        }
                    })?;
                let (Some(u), Some(v), Some(f), Some(r)) =
                    (rec.num("u"), rec.num("v"), rec.num("f"), rec.num("r"))
                else {
                    return Err(ServiceError::Snapshot {
                        line: idx + 1,
                        message: "cedge line missing u/v/f/r".into(),
                    });
                };
                if u >= v || v >= n as u64 {
                    return Err(ServiceError::Snapshot {
                        line: idx + 1,
                        message: "cedge endpoints out of order or range".into(),
                    });
                }
                let decode = |x: u64| (x > 0).then(|| Color((x - 1) as u32));
                edges.push((VertexId(u as u32), VertexId(v as u32)));
                coloring.insert((u as u32, v as u32), (decode(f), decode(r)));
            }
            let num_staged = header_num(&header, "staged")? as usize;
            let mut staged = Vec::with_capacity(num_staged.min(1 << 20));
            for _ in 0..num_staged {
                let (idx, text) = lines.next().ok_or(ServiceError::Snapshot {
                    line: crc_lineno,
                    message: "base ends inside the staged events".into(),
                })?;
                let ev = parse_line(text)
                    .filter(|r| r.tag() == Some("event"))
                    .as_ref()
                    .and_then(event_from_record)
                    .ok_or_else(|| ServiceError::Snapshot {
                        line: idx + 1,
                        message: "expected a staged event line".into(),
                    })?;
                staged.push(ev);
            }
            if let Some((idx, _)) = lines.next() {
                return Err(ServiceError::Snapshot {
                    line: idx + 1,
                    message: "unexpected line after the base coloring".into(),
                });
            }
            let g = Graph::from_edges(n, edges).map_err(|e| ServiceError::Snapshot {
                line: 1,
                message: format!("invalid base graph: {e}"),
            })?;
            let svc = Self::build_rebased(&g, &dead, &coloring, cfg, epoch, batches, escalations)?;
            if svc.coloring_hash() != recorded_hash {
                return Err(ServiceError::Replay(format!(
                    "rebased coloring hash {:#018x} != recorded {recorded_hash:#018x}",
                    svc.coloring_hash()
                )));
            }
            Ok((
                svc,
                Vec::new(),
                BaseInfo { crc, epoch, quiescent: true, hash: recorded_hash, staged },
            ))
        } else {
            if epoch != 0 {
                return Err(ServiceError::Snapshot {
                    line: 1,
                    message: format!(
                        "full snapshot of a compacted service (epoch {epoch}) is not replayable; \
                         restore from its materialized base"
                    ),
                });
            }
            let num_history = header_num(&header, "history")? as usize;
            let quiescent = header_num(&header, "quiescent")? != 0;
            let mut edges = Vec::with_capacity(num_edges.min(1 << 20));
            for _ in 0..num_edges {
                let (idx, text) = lines.next().ok_or(ServiceError::Snapshot {
                    line: crc_lineno,
                    message: "snapshot ends inside the edge list".into(),
                })?;
                let rec =
                    parse_line(text).filter(|r| r.tag() == Some("edge")).ok_or_else(|| {
                        ServiceError::Snapshot {
                            line: idx + 1,
                            message: "expected an edge line".into(),
                        }
                    })?;
                let u = rec.num("u").ok_or(ServiceError::Snapshot {
                    line: idx + 1,
                    message: "edge line missing u".into(),
                })?;
                let v = rec.num("v").ok_or(ServiceError::Snapshot {
                    line: idx + 1,
                    message: "edge line missing v".into(),
                })?;
                if u > u32::MAX as u64 || v > u32::MAX as u64 {
                    return Err(ServiceError::Snapshot {
                        line: idx + 1,
                        message: "edge endpoint out of range".into(),
                    });
                }
                edges.push((VertexId(u as u32), VertexId(v as u32)));
            }
            let g0 = Graph::from_edges(n, edges).map_err(|e| ServiceError::Snapshot {
                line: 1,
                message: format!("invalid initial graph: {e}"),
            })?;
            let snap_entries = parse_entry_stream(lines, 0, 0, true)?;
            if snap_entries.torn || !snap_entries.staged.is_empty() {
                return Err(ServiceError::Snapshot {
                    line: crc_lineno,
                    message: "snapshot history ends with dangling events".into(),
                });
            }
            if snap_entries.entries.len() != num_history {
                return Err(ServiceError::Snapshot {
                    line: crc_lineno,
                    message: format!(
                        "header declares {num_history} history entries, found {}",
                        snap_entries.entries.len()
                    ),
                });
            }
            let svc = Self::new(&g0, cfg)?;
            Ok((
                svc,
                snap_entries.entries,
                BaseInfo { crc, epoch: 0, quiescent, hash: recorded_hash, staged: Vec::new() },
            ))
        }
    }

    /// Verify one delta against its expected chain position. Any CRC or
    /// structural failure is [`ChainFallback::Corrupt`]; a clean file
    /// that belongs to a different chain state (stale after compaction,
    /// replaced checkpoint) is [`ChainFallback::BrokenLink`].
    fn parse_delta(
        text: &str,
        chain: u64,
        epoch: u64,
        h_base: u64,
        parent_crc: u32,
    ) -> Result<ParsedDelta, ChainFallback> {
        let (body, crc) = verify_crc(text).map_err(|_| ChainFallback::Corrupt)?;
        let mut lines = body.lines().enumerate();
        let Some((_, header_text)) = lines.next() else {
            return Err(ChainFallback::Corrupt);
        };
        let Some(header) = parse_line(header_text).filter(|r| r.tag() == Some("serve-delta"))
        else {
            return Err(ChainFallback::Corrupt);
        };
        if header.num("version") != Some(DELTA_VERSION) {
            return Err(ChainFallback::Corrupt);
        }
        if header.num("chain") != Some(chain)
            || header.num("epoch") != Some(epoch)
            || header.num("h_base") != Some(h_base)
            || header.num("parent_crc") != Some(u64::from(parent_crc))
        {
            return Err(ChainFallback::BrokenLink);
        }
        let (Some(count), Some(quiescent), Some(hash)) =
            (header.num("entries"), header.num("quiescent"), header.num("hash"))
        else {
            return Err(ChainFallback::Corrupt);
        };
        let Ok(parsed) = parse_entry_stream(lines, 0, 0, true) else {
            return Err(ChainFallback::Corrupt);
        };
        if parsed.torn || !parsed.staged.is_empty() || parsed.entries.len() as u64 != count {
            return Err(ChainFallback::Corrupt);
        }
        Ok(ParsedDelta { entries: parsed.entries, crc, quiescent: quiescent != 0, hash })
    }

    /// Re-execute `entries` (batches pinned to their recorded rounds,
    /// escalations restarted at theirs) through the normal tick loop,
    /// with the watchdog disarmed — recorded escalations stand in for
    /// it. Finishes by repairing to quiescence with the watchdog back
    /// on.
    fn replay(&mut self, entries: &[HistoryEntry]) -> Result<(), ServiceError> {
        self.watchdog_armed = false;
        for entry in entries {
            let target = entry.round();
            while self.inner.round() < target && !self.is_settled() {
                self.tick()?;
            }
            if self.inner.round() != target {
                return Err(ServiceError::Replay(format!(
                    "settled at round {} but the next history entry is recorded at round {target}",
                    self.inner.round()
                )));
            }
            match entry {
                HistoryEntry::Batch { seq, round, events } => {
                    if !self.is_settled() {
                        return Err(ServiceError::Replay(format!(
                            "batch {seq} recorded at round {round}, but the service is not \
                             quiescent there"
                        )));
                    }
                    if *seq != self.batches_committed + 1 {
                        return Err(ServiceError::Replay(format!(
                            "batch sequence jump: recorded {seq}, expected {}",
                            self.batches_committed + 1
                        )));
                    }
                    for ev in events {
                        self.feed.stage(*ev).map_err(|e| {
                            ServiceError::Replay(format!("batch {seq} event rejected: {e}"))
                        })?;
                    }
                    let batch = self
                        .feed
                        .commit(*round)
                        .ok_or_else(|| ServiceError::Replay(format!("batch {seq} is empty")))?;
                    self.history.push(entry.clone());
                    self.pending = Some(batch);
                    self.pending_seq = *seq;
                    self.batches_committed = *seq;
                }
                HistoryEntry::Recolor { .. } => {
                    // escalate() records Recolor{round: inner.round()},
                    // which the round-match check above pins to the
                    // recorded entry — and it updates the backoff state
                    // exactly as the live watchdog did.
                    self.escalate();
                }
            }
        }
        self.watchdog_armed = true;
        self.run_to_quiescence(self.tick_budget())?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Cross-engine recompute
    // ------------------------------------------------------------------

    /// Recompute the coloring from scratch by compiling the committed
    /// history into a [`ChurnSchedule`] and running it through the
    /// batch engines under `engine` — the independent cross-check the
    /// acceptance suite diffs against the live state. Only available
    /// for escalation-free histories (the batch engines have no restart
    /// path).
    pub fn recompute(&self, engine: Engine) -> Result<Vec<ColoredEdge>, ServiceError> {
        if self.epoch > 0 {
            // A compacted service adopted its coloring across a rebase;
            // a from-scratch run over the folded graph is a different
            // (equally proper, but not comparable) coloring.
            return Err(ServiceError::Config(
                "recompute requires an uncompacted (epoch 0) service".into(),
            ));
        }
        if self.history.iter().any(|e| matches!(e, HistoryEntry::Recolor { .. })) {
            return Err(ServiceError::Config(
                "recompute requires an escalation-free history".into(),
            ));
        }
        let mut feed = EventFeed::new(&self.g0);
        let mut batches = Vec::new();
        for entry in &self.history {
            if let HistoryEntry::Batch { seq, round, events } = entry {
                for ev in events {
                    feed.stage(*ev).map_err(|e| {
                        ServiceError::Replay(format!("batch {seq} event rejected: {e}"))
                    })?;
                }
                batches.push(
                    feed.commit(*round)
                        .ok_or_else(|| ServiceError::Replay(format!("batch {seq} is empty")))?,
                );
            }
        }
        let schedule = ChurnSchedule::from_batches(batches);
        let cfg = ColoringConfig { engine, ..self.cfg.coloring.clone() };
        cfg.validate().map_err(|e| ServiceError::Config(e.to_string()))?;
        let delta = self.g0.max_degree().max(schedule.max_degree()).max(1);
        let max_rounds =
            schedule.last_round().unwrap_or(0) + 3 * 3 * cfg.compute_round_budget(delta) + 64;
        let topo = Topology::from_graph(&self.g0);
        let final_graph = schedule.final_graph().unwrap_or(&self.g0).clone();
        let slots: Vec<ColoredEdge> = match self.cfg.protocol {
            ServeProtocol::EdgeColoring => {
                let bound = self.palette_bound0;
                let run = run_protocol_churn_traced(
                    &topo,
                    &cfg,
                    max_rounds,
                    &schedule,
                    |seed: NodeSeed<'_>| EdgeColoringNode::new(&seed, &cfg, bound),
                    &mut NoopTracer,
                )
                .map_err(|e| match e {
                    CoreError::Sim(s) => ServiceError::Sim(s),
                    other => ServiceError::Config(other.to_string()),
                })?;
                collect_coloring(&final_graph, |u, v| {
                    (
                        run.nodes[u.0 as usize].color_toward(v),
                        run.nodes[v.0 as usize].color_toward(u),
                    )
                })
            }
            ServeProtocol::StrongColoring => {
                let Some(d0) = self.d0.as_ref() else {
                    return Err(ServiceError::Internal(
                        "strong-coloring service lost its digraph".into(),
                    ));
                };
                let run = run_protocol_churn_traced(
                    &topo,
                    &cfg,
                    max_rounds,
                    &schedule,
                    |seed: NodeSeed<'_>| StrongColoringNode::new(&seed, d0, &cfg),
                    &mut NoopTracer,
                )
                .map_err(|e| match e {
                    CoreError::Sim(s) => ServiceError::Sim(s),
                    other => ServiceError::Config(other.to_string()),
                })?;
                collect_coloring(&final_graph, |u, v| {
                    (
                        run.nodes[u.0 as usize].out_color_toward(v),
                        run.nodes[v.0 as usize].out_color_toward(u),
                    )
                })
            }
        };
        Ok(slots)
    }
}

fn collect_coloring(
    g: &Graph,
    slots: impl Fn(VertexId, VertexId) -> (Option<Color>, Option<Color>),
) -> Vec<ColoredEdge> {
    let mut out: Vec<ColoredEdge> = g
        .edges()
        .map(|(_, (a, b))| {
            let (u, v) = if a.0 <= b.0 { (a, b) } else { (b, a) };
            let (forward, reverse) = slots(u, v);
            ColoredEdge { u, v, forward, reverse }
        })
        .collect();
    out.sort_by_key(|e| (e.u, e.v));
    out
}

fn color_policy_name(p: ColorPolicy) -> &'static str {
    match p {
        ColorPolicy::LowestIndex => "lowest-index",
        ColorPolicy::RandomLegal => "random-legal",
    }
}

fn parse_color_policy(s: &str) -> Option<ColorPolicy> {
    match s {
        "lowest-index" => Some(ColorPolicy::LowestIndex),
        "random-legal" => Some(ColorPolicy::RandomLegal),
        _ => None,
    }
}

fn response_policy_name(p: ResponsePolicy) -> &'static str {
    match p {
        ResponsePolicy::Random => "random",
        ResponsePolicy::FirstSender => "first-sender",
        ResponsePolicy::LowestColor => "lowest-color",
    }
}

fn parse_response_policy(s: &str) -> Option<ResponsePolicy> {
    match s {
        "random" => Some(ResponsePolicy::Random),
        "first-sender" => Some(ResponsePolicy::FirstSender),
        "lowest-color" => Some(ResponsePolicy::LowestColor),
        _ => None,
    }
}

fn header_num(rec: &Record, key: &str) -> Result<u64, ServiceError> {
    rec.num(key).ok_or_else(|| ServiceError::Snapshot {
        line: 1,
        message: format!("header missing numeric field '{key}'"),
    })
}

/// Split a checkpoint file into its CRC-verified body and trailer CRC.
fn verify_crc(text: &str) -> Result<(&str, u32), ServiceError> {
    let trimmed = text.trim_end();
    let (body, crc_text) = trimmed.rsplit_once('\n').ok_or(ServiceError::Snapshot {
        line: 1,
        message: "truncated checkpoint: missing CRC trailer".into(),
    })?;
    let crc_lineno = body.lines().count() + 1;
    let crc_rec =
        parse_line(crc_text).filter(|r| r.tag() == Some("crc")).ok_or(ServiceError::Snapshot {
            line: crc_lineno,
            message: "truncated checkpoint: last line is not a CRC trailer".into(),
        })?;
    let expected = crc_rec.num("value").ok_or(ServiceError::Snapshot {
        line: crc_lineno,
        message: "CRC trailer has no value".into(),
    })? as u32;
    let mut hashed = body.as_bytes().to_vec();
    hashed.push(b'\n');
    let actual = crc32(&hashed);
    if expected != actual {
        return Err(ServiceError::CrcMismatch { expected, actual });
    }
    Ok((body, expected))
}

/// The CRC-32 a checkpoint file's trailer records, if the file
/// verifies. Hosts chain the next delta's `parent_crc` to it.
pub fn checkpoint_crc(text: &str) -> Option<u32> {
    verify_crc(text).ok().map(|(_, crc)| crc)
}

/// Rebuild the [`ServiceConfig`] a checkpoint header recorded, with the
/// restoring host's engine choice substituted in (checkpoints do not
/// record the engine — the coloring is bit-identical on either).
fn config_from_header(header: &Record, engine: Engine) -> Result<ServiceConfig, ServiceError> {
    let protocol: ServeProtocol = header
        .str("protocol")
        .unwrap_or("")
        .parse()
        .map_err(|e| ServiceError::Snapshot { line: 1, message: e })?;
    let coloring = ColoringConfig {
        seed: header_num(header, "seed")?,
        invite_probability: f64::from_bits(header_num(header, "invite_bits")?),
        color_policy: parse_color_policy(header.str("color_policy").unwrap_or("")).ok_or_else(
            || ServiceError::Snapshot { line: 1, message: "unknown color_policy".into() },
        )?,
        response_policy: parse_response_policy(header.str("response_policy").unwrap_or(""))
            .ok_or_else(|| ServiceError::Snapshot {
                line: 1,
                message: "unknown response_policy".into(),
            })?,
        proposal_width: header_num(header, "width")? as usize,
        max_compute_rounds: match header_num(header, "max_compute")? {
            0 => None,
            m => Some(m),
        },
        validate_sends: header_num(header, "validate_sends")? != 0,
        collect_round_stats: false,
        collect_metrics: false,
        engine,
        faults: FaultPlan::reliable(),
        transport: Transport::Bare,
        profile: false,
        // Absent in pre-reduction snapshots: off.
        reduction: if header.num("reduce").unwrap_or(0) == 1 {
            ColorReduction::Kempe(KempeConfig {
                target_colors: match header.num("reduce_target").unwrap_or(0) {
                    0 => None,
                    t => Some(t as u32),
                },
                max_chain: header
                    .num("reduce_chain")
                    .filter(|&c| c > 0)
                    .unwrap_or(KempeConfig::default().max_chain as u64)
                    as usize,
                max_attempts: header
                    .num("reduce_attempts")
                    .filter(|&a| a > 0)
                    .unwrap_or(u64::from(KempeConfig::default().max_attempts))
                    as u32,
                max_rounds: match header.num("reduce_rounds").unwrap_or(0) {
                    0 => None,
                    r => Some(r),
                },
            })
        } else {
            ColorReduction::Off
        },
    };
    Ok(ServiceConfig { protocol, coloring, watchdog_ticks: header_num(header, "watchdog")? })
}

/// Write `entries` (occupying history indices `from_h + 1 ..`) in the
/// journal wire format — shared by the full snapshot body and delta
/// checkpoints.
fn push_history_lines(out: &mut String, epoch: u64, from_h: u64, entries: &[HistoryEntry]) {
    for (i, entry) in entries.iter().enumerate() {
        let h = from_h + i as u64 + 1;
        match entry {
            HistoryEntry::Batch { seq, round, events } => {
                for ev in events {
                    out.push_str(&event_line(ev));
                }
                out.push_str(&ColoringService::journal_commit_line(epoch, h, *seq, *round));
            }
            HistoryEntry::Recolor { round } => {
                out.push_str(&ColoringService::journal_recolor_line(epoch, h, *round));
            }
        }
    }
}

/// The committed slot map, keyed `(u, v)` with `u < v`, holding (u's
/// slot toward v, v's slot toward u).
type SlotMap = HashMap<(u32, u32), (Option<Color>, Option<Color>)>;

/// Per-node adoption payload for a strong-coloring rebase: outgoing
/// slots, incoming slots, and the accumulated forbidden set.
type StrongRebaseSlots = (Vec<Option<Color>>, Vec<Option<Color>>, ColorSet);

/// Verified linkage facts about a chain's base file.
struct BaseInfo {
    crc: u32,
    epoch: u64,
    quiescent: bool,
    hash: u64,
    /// Staged events the base carried (materialized bases only) —
    /// restaged when no journal supersedes them.
    staged: Vec<ChurnEvent>,
}

/// One verified delta checkpoint.
struct ParsedDelta {
    entries: Vec<HistoryEntry>,
    crc: u32,
    quiescent: bool,
    hash: u64,
}

fn event_line(ev: &ChurnEvent) -> String {
    // Link endpoints are written normalized (min, max) — the feed
    // stores them that way, so journal replay reconstructs the exact
    // history the live service recorded.
    match ev {
        ChurnEvent::LinkUp(u, v) => {
            let (a, b) = (u.min(v), u.max(v));
            format!("{{\"type\":\"event\",\"kind\":\"link-up\",\"u\":{},\"v\":{}}}\n", a.0, b.0)
        }
        ChurnEvent::LinkDown(u, v) => {
            let (a, b) = (u.min(v), u.max(v));
            format!("{{\"type\":\"event\",\"kind\":\"link-down\",\"u\":{},\"v\":{}}}\n", a.0, b.0)
        }
        ChurnEvent::NodeJoin(v) => {
            format!("{{\"type\":\"event\",\"kind\":\"join\",\"node\":{}}}\n", v.0)
        }
        ChurnEvent::NodeLeave(v) => {
            format!("{{\"type\":\"event\",\"kind\":\"leave\",\"node\":{}}}\n", v.0)
        }
    }
}

fn event_from_record(rec: &Record) -> Option<ChurnEvent> {
    let vertex = |key: &str| -> Option<VertexId> {
        let n = rec.num(key)?;
        (n <= u32::MAX as u64).then_some(VertexId(n as u32))
    };
    match rec.str("kind")? {
        "link-up" => Some(ChurnEvent::LinkUp(vertex("u")?, vertex("v")?)),
        "link-down" => Some(ChurnEvent::LinkDown(vertex("u")?, vertex("v")?)),
        "join" => Some(ChurnEvent::NodeJoin(vertex("node")?)),
        "leave" => Some(ChurnEvent::NodeLeave(vertex("node")?)),
        _ => None,
    }
}

#[derive(Default)]
struct ParsedEntries {
    entries: Vec<HistoryEntry>,
    staged: Vec<ChurnEvent>,
    torn: bool,
    /// `(epoch, h)` of the first marker that survived staleness
    /// filtering — the point this stream attaches to. `None` when every
    /// marker was stale (or there were none).
    first_marker: Option<(u64, u64)>,
}

/// Parse a history-entry stream (shared between snapshot bodies, delta
/// checkpoints, and the journal). Markers already captured by the
/// checkpoint being restored — an earlier epoch, or `skip_epoch` with
/// `h <= skip_h` (markers without an epoch field predate compaction and
/// read as epoch 0) — are dropped, commits along with their buffered
/// events. In `strict` mode any unparseable line is an error; otherwise
/// it is a torn tail and parsing stops there.
fn parse_entry_stream<'a>(
    lines: impl Iterator<Item = (usize, &'a str)>,
    skip_epoch: u64,
    skip_h: u64,
    strict: bool,
) -> Result<ParsedEntries, ServiceError> {
    let stale = |e: u64, h: u64| e < skip_epoch || (e == skip_epoch && h <= skip_h);
    let mut out = ParsedEntries::default();
    let mut buffer: Vec<ChurnEvent> = Vec::new();
    for (idx, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let bad = |message: &str| -> Result<(), ServiceError> {
            if strict {
                Err(ServiceError::Snapshot { line: idx + 1, message: message.into() })
            } else {
                Ok(())
            }
        };
        let Some(rec) = parse_line(line) else {
            bad("unparseable history line")?;
            out.torn = true;
            break;
        };
        match rec.tag() {
            Some("event") => match event_from_record(&rec) {
                Some(ev) => buffer.push(ev),
                None => {
                    bad("malformed event line")?;
                    out.torn = true;
                    break;
                }
            },
            Some("commit") => {
                let (Some(h), Some(seq), Some(round)) =
                    (rec.num("h"), rec.num("seq"), rec.num("round"))
                else {
                    bad("commit marker missing h/seq/round")?;
                    out.torn = true;
                    break;
                };
                let e = rec.num("e").unwrap_or(0);
                if stale(e, h) {
                    buffer.clear();
                } else {
                    if out.first_marker.is_none() {
                        out.first_marker = Some((e, h));
                    }
                    out.entries.push(HistoryEntry::Batch {
                        seq,
                        round,
                        events: std::mem::take(&mut buffer),
                    });
                }
            }
            Some("recolor") => {
                let (Some(h), Some(round)) = (rec.num("h"), rec.num("round")) else {
                    bad("recolor marker missing h/round")?;
                    out.torn = true;
                    break;
                };
                let e = rec.num("e").unwrap_or(0);
                if !stale(e, h) {
                    if out.first_marker.is_none() {
                        out.first_marker = Some((e, h));
                    }
                    out.entries.push(HistoryEntry::Recolor { round });
                }
            }
            _ => {
                bad("unknown history line type")?;
                out.torn = true;
                break;
            }
        }
    }
    out.staged = buffer;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dima_graph::gen::structured;

    fn svc(protocol: ServeProtocol, seed: u64) -> ColoringService {
        let g = structured::path(8);
        let mut s = ColoringService::new(&g, ServiceConfig::new(protocol, seed)).unwrap();
        s.run_to_quiescence(s.tick_budget()).unwrap();
        s
    }

    fn waves() -> Vec<Vec<ChurnEvent>> {
        use ChurnEvent::*;
        vec![
            vec![LinkUp(VertexId(0), VertexId(2)), LinkDown(VertexId(4), VertexId(5))],
            vec![NodeLeave(VertexId(7)), LinkUp(VertexId(2), VertexId(5))],
            vec![NodeJoin(VertexId(7)), LinkUp(VertexId(0), VertexId(7))],
        ]
    }

    /// Drive `svc` through `waves`, journaling exactly as the serve CLI
    /// does (event lines on accept, the commit marker before commit).
    fn drive(s: &mut ColoringService, waves: &[Vec<ChurnEvent>], journal: &mut String) {
        for wave in waves {
            for ev in wave {
                s.stage(*ev).unwrap();
                journal.push_str(&ColoringService::journal_event_line(ev));
            }
            let (seq, round) = s.next_commit().unwrap();
            journal.push_str(&ColoringService::journal_commit_line(
                s.epoch(),
                s.history_len() + 1,
                seq,
                round,
            ));
            assert_eq!(s.commit().unwrap(), Some((seq, round)));
            s.run_to_quiescence(s.tick_budget()).unwrap();
        }
    }

    fn assert_proper(s: &ColoringService) {
        let coloring = s.coloring();
        for e in &coloring {
            assert!(e.forward.is_some(), "uncolored edge {}-{}", e.u, e.v);
            if s.config().protocol == ServeProtocol::EdgeColoring {
                assert_eq!(e.forward, e.reverse, "endpoint disagreement on {}-{}", e.u, e.v);
            }
        }
        // Edge coloring propriety: a node's incident colors are distinct.
        if s.config().protocol == ServeProtocol::EdgeColoring {
            let mut per_node: HashMap<u32, Vec<Color>> = HashMap::new();
            for e in &coloring {
                per_node.entry(e.u.0).or_default().push(e.forward.unwrap());
                per_node.entry(e.v.0).or_default().push(e.forward.unwrap());
            }
            for (node, mut colors) in per_node {
                let len = colors.len();
                colors.sort();
                colors.dedup();
                assert_eq!(colors.len(), len, "node {node} repeats a color");
            }
        }
    }

    #[test]
    fn fresh_service_colors_the_initial_graph() {
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let s = svc(protocol, 7);
            assert!(s.is_settled());
            assert_proper(&s);
            let st = s.status();
            assert_eq!(st.nodes, 8);
            assert_eq!(st.alive, 8);
            assert_eq!(st.batches, 0);
            assert!(st.colors_used >= 2);
        }
    }

    #[test]
    fn feed_rejections_are_structured_and_harmless() {
        let mut s = svc(ServeProtocol::EdgeColoring, 1);
        let before = s.coloring_hash();
        assert!(matches!(
            s.stage(ChurnEvent::LinkUp(VertexId(0), VertexId(99))),
            Err(ServiceError::Feed(FeedError::UnknownNode { .. }))
        ));
        assert!(matches!(
            s.stage(ChurnEvent::LinkUp(VertexId(0), VertexId(1))),
            Err(ServiceError::Feed(FeedError::DuplicateLink { .. }))
        ));
        assert_eq!(s.staged(), 0);
        assert_eq!(s.coloring_hash(), before);
        // Queries validate too.
        assert!(matches!(
            s.edge_color(VertexId(0), VertexId(3)),
            Err(ServiceError::NoSuchEdge { .. })
        ));
        assert!(matches!(s.node_palette(VertexId(50)), Err(ServiceError::NoSuchNode { .. })));
    }

    #[test]
    fn batches_commit_and_reports_accumulate() {
        let mut s = svc(ServeProtocol::EdgeColoring, 3);
        let mut journal = String::new();
        drive(&mut s, &waves(), &mut journal);
        assert_eq!(s.batches_committed(), 3);
        assert_proper(&s);
        let reports = s.take_reports();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.repair_rounds >= 1);
        }
        // The new edge 0-2 got a color: at least one change in batch 1.
        assert!(reports[0].colors_changed >= 1);
        assert!(s.take_reports().is_empty());
        // Edge queries see the churned topology.
        assert!(s.edge_color(VertexId(0), VertexId(2)).unwrap().0.is_some());
        assert!(matches!(
            s.edge_color(VertexId(4), VertexId(5)),
            Err(ServiceError::NoSuchEdge { .. })
        ));
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let mut s = svc(protocol, 11);
            let mut journal = String::new();
            drive(&mut s, &waves(), &mut journal);
            let snap = s.snapshot_text();
            let (r, report) = ColoringService::restore(&snap, None).unwrap();
            assert_eq!(report.snapshot_entries, 3);
            assert_eq!(report.tail_entries, 0);
            assert_eq!(r.coloring_hash(), s.coloring_hash());
            assert_eq!(r.coloring(), s.coloring());
            assert_eq!(r.round(), s.round());
            assert_eq!(r.history(), s.history());
        }
    }

    #[test]
    fn journal_tail_recovers_post_snapshot_batches() {
        let all = waves();
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let mut s = svc(protocol, 23);
            let mut journal = String::new();
            drive(&mut s, &all[..1], &mut journal);
            let snap = s.snapshot_text();
            // Rotated journal: only the tail since the snapshot.
            let mut tail = String::new();
            drive(&mut s, &all[1..], &mut tail);
            let (r, rep) = ColoringService::restore(&snap, Some(&tail)).unwrap();
            assert_eq!(rep.tail_entries, 2);
            assert_eq!(r.coloring_hash(), s.coloring_hash());
            assert_eq!(r.history(), s.history());
            // Unrotated journal: the full log dedupes against the
            // snapshot by history index.
            journal.push_str(&tail);
            let (r2, rep2) = ColoringService::restore(&snap, Some(&journal)).unwrap();
            assert_eq!(rep2.tail_entries, 2);
            assert_eq!(r2.coloring_hash(), s.coloring_hash());
        }
    }

    #[test]
    fn journal_tolerates_torn_tail_and_restages_events() {
        let all = waves();
        let mut s = svc(ServeProtocol::EdgeColoring, 5);
        let mut journal = String::new();
        drive(&mut s, &all[..1], &mut journal);
        let snap = s.snapshot_text();
        let mut tail = String::new();
        drive(&mut s, &all[1..2], &mut tail);
        // Accepted-but-uncommitted events, then a torn final line.
        let ev = ChurnEvent::LinkUp(VertexId(1), VertexId(6));
        s.stage(ev).unwrap();
        tail.push_str(&ColoringService::journal_event_line(&ev));
        tail.push_str("{\"type\":\"ev");
        let (r, rep) = ColoringService::restore(&snap, Some(&tail)).unwrap();
        assert_eq!(rep.tail_entries, 1);
        assert_eq!(rep.staged, 1);
        assert!(rep.torn_tail);
        assert_eq!(r.staged(), 1);
        // Committing the restaged event lands on the same trajectory.
        let mut live = s;
        let (ls, lr) = live.next_commit().unwrap();
        let mut restored = r;
        assert_eq!(restored.next_commit(), Some((ls, lr)));
        live.commit().unwrap();
        live.run_to_quiescence(live.tick_budget()).unwrap();
        restored.commit().unwrap();
        restored.run_to_quiescence(restored.tick_budget()).unwrap();
        assert_eq!(restored.coloring_hash(), live.coloring_hash());
    }

    #[test]
    fn corrupted_snapshots_are_rejected_not_panicked() {
        let mut s = svc(ServeProtocol::EdgeColoring, 9);
        let mut journal = String::new();
        drive(&mut s, &waves(), &mut journal);
        let snap = s.snapshot_text();
        // Bit flip in the middle.
        let mut flipped = snap.clone().into_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] = flipped[mid].wrapping_add(1);
        let flipped = String::from_utf8_lossy(&flipped).into_owned();
        assert!(matches!(
            ColoringService::restore(&flipped, None),
            Err(ServiceError::CrcMismatch { .. })
        ));
        // Truncation drops the trailer.
        let truncated = &snap[..snap.len() * 2 / 3];
        assert!(ColoringService::restore(truncated, None).is_err());
        // Garbage is structurally rejected.
        assert!(ColoringService::restore("not a snapshot\n", None).is_err());
        assert!(ColoringService::restore("", None).is_err());
    }

    #[test]
    fn recompute_matches_live_on_both_engines() {
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let mut s = svc(protocol, 41);
            let mut journal = String::new();
            drive(&mut s, &waves(), &mut journal);
            let live = s.coloring();
            let seq = s.recompute(Engine::Sequential).unwrap();
            let par = s.recompute(Engine::Parallel { threads: 2 }).unwrap();
            assert_eq!(seq, live, "{protocol}: sequential recompute diverged");
            assert_eq!(par, live, "{protocol}: parallel recompute diverged");
        }
    }

    #[test]
    fn forced_recolor_is_recorded_and_replays() {
        let mut s = svc(ServeProtocol::EdgeColoring, 13);
        let mut journal = String::new();
        let all = waves();
        drive(&mut s, &all[..1], &mut journal);
        let snap = s.snapshot_text();
        let mut tail = String::new();
        // Commit a batch, escalate mid-repair, then settle.
        for ev in &all[1] {
            s.stage(*ev).unwrap();
            tail.push_str(&ColoringService::journal_event_line(ev));
        }
        let (seq, round) = s.next_commit().unwrap();
        tail.push_str(&ColoringService::journal_commit_line(
            s.epoch(),
            s.history_len() + 1,
            seq,
            round,
        ));
        s.commit().unwrap();
        s.tick().unwrap();
        s.tick().unwrap();
        let rec_round = s.force_recolor();
        tail.push_str(&ColoringService::journal_recolor_line(
            s.epoch(),
            s.history_len(),
            rec_round,
        ));
        s.run_to_quiescence(s.tick_budget()).unwrap();
        assert_eq!(s.escalations(), 1);
        assert_proper(&s);
        let (r, rep) = ColoringService::restore(&snap, Some(&tail)).unwrap();
        assert_eq!(rep.tail_entries, 2);
        assert_eq!(r.escalations(), 1);
        assert_eq!(r.coloring_hash(), s.coloring_hash());
        assert_eq!(r.history(), s.history());
        // Escalated histories refuse the batch-engine cross-check.
        assert!(s.recompute(Engine::Sequential).is_err());
    }

    #[test]
    fn hair_trigger_watchdog_escalates_but_still_converges() {
        // A 1-tick watchdog fires on the very first stalled tick (the
        // opening invite round commits nothing), so escalations are
        // guaranteed — and the exponential backoff guarantees the
        // repair still converges instead of livelocking. Two runs see
        // identical tick sequences, so they escalate identically.
        let g = structured::cycle(6);
        let mut cfg = ServiceConfig::new(ServeProtocol::EdgeColoring, 2);
        cfg.watchdog_ticks = 1;
        let run = |cfg: ServiceConfig| {
            let mut s = ColoringService::new(&g, cfg).unwrap();
            s.run_to_quiescence(s.tick_budget()).unwrap();
            assert_proper(&s);
            (s.escalations(), s.coloring_hash())
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert!(a.0 >= 1, "hair-trigger watchdog never fired");
        assert_eq!(a, b);
    }

    #[test]
    fn service_config_rejects_incompatible_modes() {
        let g = structured::path(4);
        // threads: 0 is a config error (the coloring config validates
        // it), but a well-formed parallel engine is accepted.
        let mut cfg = ServiceConfig::new(ServeProtocol::EdgeColoring, 1);
        cfg.coloring.engine = Engine::Parallel { threads: 0 };
        assert!(matches!(ColoringService::new(&g, cfg), Err(ServiceError::Config(_))));
        let mut cfg = ServiceConfig::new(ServeProtocol::EdgeColoring, 1);
        cfg.coloring.faults = FaultPlan::uniform(0.5);
        assert!(matches!(ColoringService::new(&g, cfg), Err(ServiceError::Config(_))));
    }

    #[test]
    fn parallel_service_matches_sequential() {
        // The full serve lifecycle — initial coloring, staged churn
        // commits, repairs, history — is bit-identical when the service
        // runs on the pooled parallel stepper.
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let mut seq = svc(protocol, 29);
            let mut journal = String::new();
            drive(&mut seq, &waves(), &mut journal);

            let g = structured::path(8);
            let mut cfg = ServiceConfig::new(protocol, 29);
            cfg.coloring.engine = Engine::Parallel { threads: 3 };
            let mut par = ColoringService::new(&g, cfg).unwrap();
            par.run_to_quiescence(par.tick_budget()).unwrap();
            let mut journal_par = String::new();
            drive(&mut par, &waves(), &mut journal_par);

            assert_eq!(par.coloring_hash(), seq.coloring_hash(), "{protocol}");
            assert_eq!(par.coloring(), seq.coloring(), "{protocol}");
            assert_eq!(par.history(), seq.history(), "{protocol}");
            assert_eq!(journal_par, journal, "{protocol}");
            assert_proper(&par);
        }
    }

    #[test]
    fn consecutive_service_runs_reuse_the_pool() {
        // Regression: the parallel stepper must draw workers from the
        // persistent pool — ticking a service (or running two of them
        // back to back) never spawns threads beyond the pool's
        // high-water mark.
        let g = structured::cycle(12);
        let build = || {
            let mut cfg = ServiceConfig::new(ServeProtocol::EdgeColoring, 7);
            cfg.coloring.engine = Engine::Parallel { threads: 2 };
            let mut s = ColoringService::new(&g, cfg).unwrap();
            s.run_to_quiescence(s.tick_budget()).unwrap();
            assert_proper(&s);
        };
        // Warm the pool to this width.
        build();
        let spawned_before = dima_sim::pool::global().threads_spawned();
        build();
        build();
        assert_eq!(
            dima_sim::pool::global().threads_spawned(),
            spawned_before,
            "repeat service runs must reuse pooled workers, not spawn new ones"
        );
    }

    /// Churn valid against the graph waves() leaves behind.
    fn extra_waves() -> Vec<Vec<ChurnEvent>> {
        use ChurnEvent::*;
        vec![
            vec![LinkUp(VertexId(3), VertexId(5)), LinkDown(VertexId(0), VertexId(2))],
            vec![NodeLeave(VertexId(6)), LinkUp(VertexId(4), VertexId(7))],
        ]
    }

    #[test]
    fn compaction_rebases_live_and_restored_identically() {
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let mut live = svc(protocol, 17);
            let mut journal = String::new();
            drive(&mut live, &waves(), &mut journal);
            let hash = live.coloring_hash();
            let report = live.compact_history().unwrap();
            assert_eq!(report.epoch, 1);
            assert_eq!(report.folded_entries, 3);
            assert_eq!(live.epoch(), 1);
            assert_eq!(live.history_len(), 0);
            assert_eq!(live.round(), 0);
            assert!(live.is_settled());
            assert_eq!(live.coloring_hash(), hash, "{protocol}: rebase changed the coloring");
            assert_eq!(live.batches_committed(), 3);
            assert_proper(&live);

            let base = live.base_text().unwrap();
            let (mut restored, rep) =
                ColoringService::restore_chain(&base, &[], None, Engine::Sequential).unwrap();
            assert_eq!(rep.deltas_applied, 0);
            assert_eq!(restored.coloring_hash(), hash);
            assert_eq!(restored.epoch(), 1);

            // Post-compaction churn lands on the same trajectory whether
            // the rebase happened live or through a base restore.
            let mut jl = String::new();
            let mut jr = String::new();
            drive(&mut live, &extra_waves(), &mut jl);
            drive(&mut restored, &extra_waves(), &mut jr);
            assert_eq!(jl, jr, "{protocol}");
            assert_eq!(restored.coloring_hash(), live.coloring_hash(), "{protocol}");
            assert_eq!(restored.history(), live.history());
            assert_proper(&live);

            // The pooled engine rebases bit-identically too.
            let g = structured::path(8);
            let mut cfg = ServiceConfig::new(protocol, 17);
            cfg.coloring.engine = Engine::Parallel { threads: 2 };
            let mut par = ColoringService::new(&g, cfg).unwrap();
            par.run_to_quiescence(par.tick_budget()).unwrap();
            drive(&mut par, &waves(), &mut String::new());
            par.compact_history().unwrap();
            drive(&mut par, &extra_waves(), &mut String::new());
            assert_eq!(par.coloring_hash(), live.coloring_hash(), "{protocol}: parallel rebase");
        }
    }

    #[test]
    fn chain_restore_applies_deltas_and_dedups_stale_journal() {
        let extra = extra_waves();
        let mut s = svc(ServeProtocol::EdgeColoring, 31);
        // One unrotated journal across the compaction — its epoch-0
        // markers must dedup away against the epoch-1 base.
        let mut journal = String::new();
        drive(&mut s, &waves(), &mut journal);
        s.compact_history().unwrap();
        let base = s.base_text().unwrap();
        let base_crc = checkpoint_crc(&base).unwrap();
        drive(&mut s, &extra[..1], &mut journal);
        let delta1 = s.delta_text(0, 1, base_crc).unwrap();
        let d1_crc = checkpoint_crc(&delta1).unwrap();
        drive(&mut s, &extra[1..], &mut journal);
        let delta2 = s.delta_text(1, 2, d1_crc).unwrap();
        // Accepted-but-uncommitted event on top.
        let ev = ChurnEvent::LinkUp(VertexId(1), VertexId(5));
        s.stage(ev).unwrap();
        journal.push_str(&ColoringService::journal_event_line(&ev));

        let (r, rep) = ColoringService::restore_chain(
            &base,
            &[&delta1, &delta2],
            Some(&journal),
            Engine::Sequential,
        )
        .unwrap();
        assert_eq!(rep.deltas_applied, 2);
        assert_eq!(rep.delta_entries, 2);
        assert_eq!(rep.deltas_discarded, 0);
        assert_eq!(rep.fallback, None);
        assert_eq!(rep.tail_entries, 0, "every journaled batch was captured by a delta");
        assert_eq!(rep.staged, 1);
        assert_eq!(r.coloring_hash(), s.coloring_hash());
        assert_eq!(r.history(), s.history());
        assert_eq!(r.staged(), 1);

        // Chain restore on the pooled engine is bit-identical.
        let (rp, _) = ColoringService::restore_chain(
            &base,
            &[&delta1, &delta2],
            Some(&journal),
            Engine::Parallel { threads: 2 },
        )
        .unwrap();
        assert_eq!(rp.coloring_hash(), s.coloring_hash());
        assert_eq!(rp.history(), s.history());
    }

    #[test]
    fn base_carries_staged_events_across_torn_journal_rotation() {
        let mut s = svc(ServeProtocol::EdgeColoring, 23);
        drive(&mut s, &waves(), &mut String::new());
        s.run_to_quiescence(s.tick_budget()).unwrap();
        let ev = ChurnEvent::LinkUp(VertexId(1), VertexId(5));
        s.compact_history().unwrap();
        s.stage(ev).unwrap();
        let base = s.base_text().unwrap();

        // No journal at all (crash between base rename and rotation):
        // the acked event survives via the base.
        let (r, rep) =
            ColoringService::restore_chain(&base, &[], None, Engine::Sequential).unwrap();
        assert_eq!(rep.staged, 1);
        assert_eq!(r.staged(), 1);
        assert_eq!(r.coloring_hash(), s.coloring_hash());

        // An empty journal (rotation renamed but wrote nothing) reads
        // as torn rotation — base staged still wins.
        let (r2, rep2) =
            ColoringService::restore_chain(&base, &[], Some(""), Engine::Sequential).unwrap();
        assert_eq!(rep2.staged, 1);
        assert_eq!(r2.staged(), 1);

        // A rotated journal that recorded the staged set supersedes it
        // (no double-staging).
        let journal = ColoringService::journal_event_line(&ev);
        let (r3, rep3) =
            ColoringService::restore_chain(&base, &[], Some(&journal), Engine::Sequential).unwrap();
        assert_eq!(rep3.staged, 1);
        assert_eq!(r3.staged(), 1);

        // And a journal where the staged batch committed replays the
        // commit instead of restaging.
        let mut s2 = s;
        let mut journal2 = journal.clone();
        let (seq, round) = s2.next_commit().unwrap();
        journal2.push_str(&ColoringService::journal_commit_line(
            s2.epoch(),
            s2.history_len() + 1,
            seq,
            round,
        ));
        s2.commit().unwrap();
        s2.run_to_quiescence(s2.tick_budget()).unwrap();
        let (r4, rep4) =
            ColoringService::restore_chain(&base, &[], Some(&journal2), Engine::Sequential)
                .unwrap();
        assert_eq!(rep4.staged, 0);
        assert_eq!(rep4.tail_entries, 1);
        assert_eq!(r4.staged(), 0);
        assert_eq!(r4.coloring_hash(), s2.coloring_hash());
    }

    #[test]
    fn broken_chain_falls_back_to_newest_verifiable_checkpoint() {
        let extra = extra_waves();
        let mut s = svc(ServeProtocol::EdgeColoring, 43);
        drive(&mut s, &waves(), &mut String::new());
        s.compact_history().unwrap();
        let base = s.base_text().unwrap();
        let base_crc = checkpoint_crc(&base).unwrap();
        drive(&mut s, &extra[..1], &mut String::new());
        let hash_at_d1 = s.coloring_hash();
        let h_at_d1 = s.history_len();
        let delta1 = s.delta_text(0, 1, base_crc).unwrap();
        let d1_crc = checkpoint_crc(&delta1).unwrap();
        let mut bridge_journal = String::new();
        drive(&mut s, &extra[1..], &mut bridge_journal);
        let delta2 = s.delta_text(h_at_d1, 2, d1_crc).unwrap();

        // Bit-flipped newest delta, journal already rotated against it
        // (empty): recover to delta 1.
        let mut bad = delta2.clone().into_bytes();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x20;
        let bad = String::from_utf8_lossy(&bad).into_owned();
        let (r, rep) =
            ColoringService::restore_chain(&base, &[&delta1, &bad], Some(""), Engine::Sequential)
                .unwrap();
        assert_eq!(rep.deltas_applied, 1);
        assert_eq!(rep.deltas_discarded, 1);
        assert_eq!(rep.fallback, Some(ChainFallback::Corrupt));
        assert!(!rep.journal_discarded);
        assert_eq!(r.coloring_hash(), hash_at_d1);

        // Same torn delta but the journal was not yet rotated — it
        // still starts at the fallback point and bridges the gap, so
        // the acked batches survive the lost checkpoint.
        let (rb, repb) = ColoringService::restore_chain(
            &base,
            &[&delta1, &bad],
            Some(&bridge_journal),
            Engine::Sequential,
        )
        .unwrap();
        assert_eq!(repb.fallback, Some(ChainFallback::Corrupt));
        assert!(!repb.journal_discarded);
        assert!(repb.tail_entries > 0);
        assert_eq!(rb.coloring_hash(), s.coloring_hash());
        assert_eq!(rb.history_len(), s.history_len());

        // A journal rotated against the lost delta starts past the
        // verified prefix; it cannot bridge the gap and is discarded.
        let orphan = ColoringService::journal_commit_line(s.epoch(), s.history_len() + 2, 99, 0);
        let (ro, repo) = ColoringService::restore_chain(
            &base,
            &[&delta1, &bad],
            Some(&orphan),
            Engine::Sequential,
        )
        .unwrap();
        assert!(repo.journal_discarded);
        assert_eq!(repo.tail_entries, 0);
        assert_eq!(ro.coloring_hash(), hash_at_d1);

        // A clean delta chained to the wrong parent is a stale leftover,
        // not corruption.
        let unlinked = s.delta_text(1, 2, d1_crc ^ 1).unwrap();
        let (r2, rep2) =
            ColoringService::restore_chain(&base, &[&delta1, &unlinked], None, Engine::Sequential)
                .unwrap();
        assert_eq!(rep2.fallback, Some(ChainFallback::BrokenLink));
        assert_eq!(r2.coloring_hash(), hash_at_d1);

        // A corrupt base is a hard error, not a fallback.
        let mut bad_base = base.clone().into_bytes();
        bad_base[20] ^= 0x01;
        let bad_base = String::from_utf8_lossy(&bad_base).into_owned();
        assert!(ColoringService::restore_chain(&bad_base, &[], None, Engine::Sequential).is_err());
    }

    #[test]
    fn compacted_services_guard_snapshot_and_recompute_paths() {
        let mut s = svc(ServeProtocol::EdgeColoring, 19);
        drive(&mut s, &waves(), &mut String::new());
        // base_text before compaction: replay prefix still present.
        assert!(matches!(s.base_text(), Err(ServiceError::NotSettled { .. })));
        s.compact_history().unwrap();
        // Full snapshots of a compacted service don't replay.
        let snap = s.snapshot_text();
        assert!(ColoringService::restore(&snap, None).is_err());
        // And the from-scratch cross-check no longer applies.
        assert!(matches!(s.recompute(Engine::Sequential), Err(ServiceError::Config(_))));
        // Compacting while unsettled is refused.
        s.stage(ChurnEvent::LinkUp(VertexId(1), VertexId(4))).unwrap();
        s.commit().unwrap();
        assert!(matches!(s.compact_history(), Err(ServiceError::NotSettled { .. })));
        s.run_to_quiescence(s.tick_budget()).unwrap();
        assert_proper(&s);
    }
}
