//! Long-running coloring service: the engine behind `dima serve`.
//!
//! A [`ColoringService`] owns a live coloring of a mutating graph. Churn
//! events are *staged* through the validating [`EventFeed`], *committed*
//! as a batch whenever the repair automata are quiescent, and repaired
//! incrementally by ticking the round [`Stepper`] — the service never
//! blocks a query on a repair in flight.
//!
//! # Determinism and crash safety
//!
//! The service commits a staged batch only at quiescence, so the round
//! at which each batch lands is a pure function of the event sequence —
//! not of wall-clock arrival times. That makes the whole trajectory
//! replayable: a snapshot records nothing but the initial graph and the
//! *history* (committed batches and recolor escalations, each pinned to
//! its round), and [`ColoringService::restore`] re-executes that history
//! through the very same tick loop to a bit-identical coloring. A
//! crash-recovery journal of the same line format covers the tail since
//! the last snapshot; its markers carry a history index so a stale
//! (unrotated) journal deduplicates cleanly against the snapshot.
//!
//! Snapshots are flat JSONL guarded by a CRC-32 trailer: truncation and
//! corruption are detected and reported as structured
//! [`ServiceError`]s, never a panic.
//!
//! # Watchdog
//!
//! A convergence watchdog counts consecutive non-quiescent ticks in
//! which the progress high-water mark (committed color slots plus done
//! nodes) fails to rise; after [`ServiceConfig::watchdog_ticks`] of
//! those it escalates to a full recolor via [`Stepper::restart`]. Each
//! consecutive escalation doubles the stall threshold, so even a
//! hair-trigger watchdog cannot livelock a legitimate repair.
//! Escalations are recorded in the history (RNG streams continue
//! across a restart, so replaying the recorded escalation round
//! reproduces the live trajectory exactly; during replay the watchdog
//! itself is disarmed).

use std::collections::HashMap;
use std::fmt;

use dima_graph::{Digraph, Graph, GraphBuilder, VertexId};
use dima_sim::fault::FaultPlan;
use dima_sim::telemetry::read::{parse_line, Record};
use dima_sim::telemetry::NoopTracer;
use dima_sim::wire::crc32;
use dima_sim::{
    ChurnBatch, ChurnEvent, ChurnSchedule, EngineConfig, EventFeed, FeedError, NodeSeed,
    ParStepper, SimError, Stepper, Topology,
};

use crate::config::{
    ColorPolicy, ColorReduction, ColoringConfig, Engine, KempeConfig, ResponsePolicy, Transport,
};
use crate::edge_coloring::EdgeColoringNode;
use crate::error::CoreError;
use crate::kempe::KempeReport;
use crate::palette::{Color, ColorSet};
use crate::runner::run_protocol_churn_traced;
use crate::strong_coloring::StrongColoringNode;

/// Snapshot format version accepted by [`ColoringService::restore`].
pub const SNAPSHOT_VERSION: u64 = 1;

/// Which repair protocol a service runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeProtocol {
    /// DiMaEC proper edge coloring (Algorithm 1).
    EdgeColoring,
    /// DiMa2ED strong edge coloring of the symmetric closure
    /// (Algorithm 2).
    StrongColoring,
}

impl ServeProtocol {
    /// Stable wire name (`ec` / `strong`), used in snapshots and CLI
    /// flags.
    pub fn name(self) -> &'static str {
        match self {
            ServeProtocol::EdgeColoring => "ec",
            ServeProtocol::StrongColoring => "strong",
        }
    }
}

impl fmt::Display for ServeProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ServeProtocol {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "ec" | "color" => Ok(ServeProtocol::EdgeColoring),
            "strong" | "strong-color" => Ok(ServeProtocol::StrongColoring),
            other => Err(format!("unknown protocol '{other}' (expected 'ec' or 'strong')")),
        }
    }
}

/// Configuration for a [`ColoringService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Repair protocol.
    pub protocol: ServeProtocol,
    /// Coloring parameters. The service requires the bare transport and
    /// a reliable fault plan (quiescence must mean "every node is
    /// done", and snapshots must replay); either engine is accepted —
    /// the parallel stepper is bit-identical to the sequential one.
    pub coloring: ColoringConfig,
    /// Consecutive stalled ticks (no rise of the progress high-water
    /// mark — committed color slots plus done nodes — while not
    /// quiescent) before the watchdog escalates to a full recolor. The
    /// threshold doubles after each consecutive escalation so a small
    /// value cannot livelock. `0` disables the watchdog.
    pub watchdog_ticks: u64,
}

impl ServiceConfig {
    /// Service defaults for `protocol` under master seed `seed`:
    /// measurement-profile coloring config (no send validation), no
    /// per-round stat collection (the service runs unbounded), watchdog
    /// at 512 ticks.
    pub fn new(protocol: ServeProtocol, seed: u64) -> Self {
        ServiceConfig {
            protocol,
            coloring: ColoringConfig {
                collect_round_stats: false,
                ..ColoringConfig::for_measurement(seed)
            },
            watchdog_ticks: 512,
        }
    }

    fn validate(&self) -> Result<(), ServiceError> {
        self.coloring.validate().map_err(|e| ServiceError::Config(e.to_string()))?;
        // Both engines are accepted: the parallel stepper is
        // bit-identical to the sequential one (same colorings, same
        // round clock, same snapshots), so serving from the pool is an
        // implementation detail, not a semantic choice.
        if self.coloring.transport != Transport::Bare {
            return Err(ServiceError::Config("the service requires the bare transport".into()));
        }
        if !self.coloring.faults.is_reliable() {
            return Err(ServiceError::Config(
                "the service requires a reliable fault plan: quiescence detection and snapshot \
                 replay assume no injected loss or crashes"
                    .into(),
            ));
        }
        if self.coloring.reduction.is_on() && self.protocol != ServeProtocol::EdgeColoring {
            return Err(ServiceError::Config(
                "palette reduction is an edge-coloring pass; it is not defined for the strong \
                 (directed) protocol"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// A structured service failure. Every invalid input — malformed event,
/// corrupt snapshot, inconsistent history — surfaces as one of these;
/// the service never panics on untrusted data.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// Invalid service configuration.
    Config(String),
    /// A staged event was rejected by topology validation.
    Feed(FeedError),
    /// A query named a vertex outside the graph.
    NoSuchNode {
        /// The offending vertex.
        node: VertexId,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// A query named an edge absent from the current topology.
    NoSuchEdge {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// A snapshot failed structural parsing.
    Snapshot {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A snapshot's CRC-32 trailer did not match its body (truncation
    /// or corruption).
    CrcMismatch {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC computed over the body.
        actual: u32,
    },
    /// Replaying a recorded history diverged from the recorded rounds —
    /// the snapshot does not describe this build's trajectory.
    Replay(String),
    /// A repair failed to quiesce within the tick budget.
    Budget {
        /// Ticks executed before giving up.
        ticks: u64,
    },
    /// The underlying simulator rejected a round.
    Sim(SimError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(m) => write!(f, "invalid service config: {m}"),
            ServiceError::Feed(e) => write!(f, "rejected event: {e}"),
            ServiceError::NoSuchNode { node, num_vertices } => {
                write!(f, "no such node {node}: graph has {num_vertices} vertices")
            }
            ServiceError::NoSuchEdge { u, v } => {
                write!(f, "no edge {u}-{v} in the current topology")
            }
            ServiceError::Snapshot { line, message } => {
                write!(f, "bad snapshot (line {line}): {message}")
            }
            ServiceError::CrcMismatch { expected, actual } => write!(
                f,
                "snapshot CRC mismatch: trailer says {expected:#010x}, body hashes to \
                 {actual:#010x} (truncated or corrupted file)"
            ),
            ServiceError::Replay(m) => write!(f, "history replay diverged: {m}"),
            ServiceError::Budget { ticks } => {
                write!(f, "repair failed to quiesce within {ticks} ticks")
            }
            ServiceError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<FeedError> for ServiceError {
    fn from(e: FeedError) -> Self {
        ServiceError::Feed(e)
    }
}

impl From<SimError> for ServiceError {
    fn from(e: SimError) -> Self {
        ServiceError::Sim(e)
    }
}

/// One entry of the service's replayable history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryEntry {
    /// A churn batch committed at `round`.
    Batch {
        /// 1-based commit sequence number.
        seq: u64,
        /// Round the batch was committed (and applied) at.
        round: u64,
        /// The events, in staging order.
        events: Vec<ChurnEvent>,
    },
    /// A watchdog (or operator) escalation to a full recolor at
    /// `round`.
    Recolor {
        /// Round the restart took effect at.
        round: u64,
    },
}

impl HistoryEntry {
    fn round(&self) -> u64 {
        match self {
            HistoryEntry::Batch { round, .. } | HistoryEntry::Recolor { round } => *round,
        }
    }
}

/// What one [`ColoringService::tick`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tick {
    /// Quiescent with no batch pending — no round was executed.
    Idle,
    /// One communication round executed.
    Round {
        /// 0-based index of the executed round.
        round: u64,
        /// Nodes still repairing after the round.
        active: usize,
        /// Commit sequence number of the batch applied this round, if
        /// any.
        applied: Option<u64>,
        /// Whether the service reached quiescence on this round.
        quiesced: bool,
        /// Round recorded for a watchdog escalation fired by this tick,
        /// if one was.
        escalated: Option<u64>,
    },
}

/// Per-batch repair accounting, drained via
/// [`ColoringService::take_reports`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeBatchReport {
    /// Commit sequence number.
    pub seq: u64,
    /// Round the batch was applied at.
    pub round: u64,
    /// Events in the batch.
    pub events: usize,
    /// Rounds from application to quiescence (≥ 1).
    pub repair_rounds: u64,
    /// Edges whose color assignment after repair differs from before
    /// the batch (new edges count once they are colored; removed edges
    /// are not counted) — the churn-amplification numerator. Counted
    /// against the repaired coloring, before any palette compaction.
    pub colors_changed: u64,
    /// Distinct colors in use once the batch settled (after compaction,
    /// when configured) — the serve-mode quality metric.
    pub colors_used: u64,
    /// What the post-repair Kempe compaction did, when
    /// [`crate::ColorReduction::Kempe`] is configured.
    pub reduction: Option<KempeReport>,
}

/// A service liveness/convergence summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Current round clock.
    pub round: u64,
    /// Quiescent with no batch pending.
    pub settled: bool,
    /// Vertex-slot count of the graph.
    pub nodes: usize,
    /// Nodes currently alive (per the feed's staged view).
    pub alive: usize,
    /// Staged, uncommitted events.
    pub staged: usize,
    /// Batches committed so far.
    pub batches: u64,
    /// Recolor escalations so far.
    pub escalations: u64,
    /// Distinct colors in the current coloring.
    pub colors_used: usize,
    /// [`hash_coloring`] of the current coloring.
    pub hash: u64,
}

/// What [`ColoringService::restore`] replayed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// History entries replayed from the snapshot itself.
    pub snapshot_entries: u64,
    /// History entries recovered from the journal tail.
    pub tail_entries: u64,
    /// Journal events re-staged (accepted but uncommitted at the
    /// crash).
    pub staged: u64,
    /// The journal ended mid-line (torn write) — everything before the
    /// tear was recovered.
    pub torn_tail: bool,
}

/// One edge of a coloring, endpoints normalized `u < v`.
///
/// For [`ServeProtocol::EdgeColoring`], `forward` and `reverse` are the
/// two endpoints' views of the single edge color (equal once repair has
/// quiesced). For [`ServeProtocol::StrongColoring`] they are the
/// `u → v` and `v → u` arc colors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColoredEdge {
    /// Lower endpoint.
    pub u: VertexId,
    /// Higher endpoint.
    pub v: VertexId,
    /// Color of the `u → v` slot.
    pub forward: Option<Color>,
    /// Color of the `v → u` slot.
    pub reverse: Option<Color>,
}

/// FNV-1a over a coloring — the bit-identity fingerprint used by
/// snapshot self-checks, the chaos harness and the serve CLI.
pub fn hash_coloring(edges: &[ColoredEdge]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for e in edges {
        for x in [
            u64::from(e.u.0) + 1,
            u64::from(e.v.0) + 1,
            e.forward.map_or(0, |c| u64::from(c.0) + 1),
            e.reverse.map_or(0, |c| u64::from(c.0) + 1),
        ] {
            h ^= x;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

// `Fn + Sync` (not just `FnMut + Send`) so the same boxed factory drives
// either engine — the parallel stepper's workers call it concurrently
// when churn joins land in different shards.
type EcFactory = Box<dyn Fn(NodeSeed<'_>) -> EdgeColoringNode + Send + Sync>;
type StrongFactory = Box<dyn Fn(NodeSeed<'_>) -> StrongColoringNode + Send + Sync>;

enum Inner {
    Ec(Stepper<EdgeColoringNode, EcFactory>),
    Strong(Stepper<StrongColoringNode, StrongFactory>),
    EcPar(ParStepper<EdgeColoringNode, EcFactory>),
    StrongPar(ParStepper<StrongColoringNode, StrongFactory>),
}

/// Dispatch one method call over all four stepper variants (the
/// sequential and parallel steppers expose the same API by design).
macro_rules! each_stepper {
    ($inner:expr, $s:ident => $body:expr) => {
        match $inner {
            Inner::Ec($s) => $body,
            Inner::Strong($s) => $body,
            Inner::EcPar($s) => $body,
            Inner::StrongPar($s) => $body,
        }
    };
}

impl Inner {
    fn round(&self) -> u64 {
        each_stepper!(self, s => s.round())
    }

    fn is_quiescent(&self) -> bool {
        each_stepper!(self, s => s.is_quiescent())
    }

    fn still_active(&self) -> usize {
        each_stepper!(self, s => s.still_active())
    }

    fn num_nodes(&self) -> usize {
        each_stepper!(self, s => s.num_nodes())
    }

    fn topology(&self) -> &Topology {
        each_stepper!(self, s => s.topology())
    }

    fn tick(&mut self, batch: Option<&ChurnBatch>) -> Result<dima_sim::RoundStats, SimError> {
        each_stepper!(self, s => s.tick(batch, &mut NoopTracer))
    }

    fn restart(&mut self) {
        each_stepper!(self, s => s.restart())
    }

    /// The edge-coloring automata, when this service runs that protocol
    /// (on either engine).
    fn ec_nodes_mut(&mut self) -> Option<&mut [EdgeColoringNode]> {
        match self {
            Inner::Ec(s) => Some(s.nodes_mut()),
            Inner::EcPar(s) => Some(s.nodes_mut()),
            Inner::Strong(_) | Inner::StrongPar(_) => None,
        }
    }

    fn edge_slots(&self, u: VertexId, v: VertexId) -> (Option<Color>, Option<Color>) {
        match self {
            Inner::Ec(s) => {
                let nodes = s.nodes();
                (nodes[u.0 as usize].color_toward(v), nodes[v.0 as usize].color_toward(u))
            }
            Inner::EcPar(s) => {
                let nodes = s.nodes();
                (nodes[u.0 as usize].color_toward(v), nodes[v.0 as usize].color_toward(u))
            }
            Inner::Strong(s) => {
                let nodes = s.nodes();
                (nodes[u.0 as usize].out_color_toward(v), nodes[v.0 as usize].out_color_toward(u))
            }
            Inner::StrongPar(s) => {
                let nodes = s.nodes();
                (nodes[u.0 as usize].out_color_toward(v), nodes[v.0 as usize].out_color_toward(u))
            }
        }
    }

    fn palette(&self, v: VertexId) -> Vec<Color> {
        each_stepper!(self, s => s.nodes()[v.0 as usize].palette())
    }
}

struct OpenBatch {
    seq: u64,
    round: u64,
    events: usize,
    pre: HashMap<(u32, u32), (Option<Color>, Option<Color>)>,
}

/// A live, crash-recoverable coloring of a mutating graph. See the
/// [module docs](self) for the execution and recovery model.
pub struct ColoringService {
    cfg: ServiceConfig,
    g0: Graph,
    d0: Option<Digraph>,
    palette_bound0: u32,
    feed: EventFeed,
    inner: Inner,
    pending: Option<ChurnBatch>,
    pending_seq: u64,
    history: Vec<HistoryEntry>,
    batches_committed: u64,
    escalations: u64,
    watchdog_armed: bool,
    stall_ticks: u64,
    progress_hwm: u64,
    backoff: u32,
    open_batch: Option<OpenBatch>,
    reports: Vec<ServeBatchReport>,
}

impl ColoringService {
    /// Start a fresh service over `g0`. The initial coloring has not
    /// run yet — call [`ColoringService::run_to_quiescence`] (or tick)
    /// to converge it.
    pub fn new(g0: &Graph, cfg: ServiceConfig) -> Result<Self, ServiceError> {
        cfg.validate()?;
        let delta = g0.max_degree();
        let palette_bound0 = ((2 * delta).saturating_sub(1)).max(1) as u32;
        let engine_cfg = EngineConfig {
            seed: cfg.coloring.seed,
            max_rounds: u64::MAX,
            collect_round_stats: false,
            validate_sends: cfg.coloring.validate_sends,
            faults: FaultPlan::reliable(),
            profile: false,
            metrics: false,
        };
        let topo = Topology::from_graph(g0);
        let mut d0 = None;
        let inner = match cfg.protocol {
            ServeProtocol::EdgeColoring => {
                let ccfg = cfg.coloring.clone();
                let factory: EcFactory = Box::new(move |seed: NodeSeed<'_>| {
                    EdgeColoringNode::new(&seed, &ccfg, palette_bound0)
                });
                match cfg.coloring.engine {
                    Engine::Sequential => Inner::Ec(Stepper::new(&topo, &engine_cfg, factory)),
                    Engine::Parallel { threads } => {
                        Inner::EcPar(ParStepper::new(&topo, &engine_cfg, threads, factory))
                    }
                }
            }
            ServeProtocol::StrongColoring => {
                let d = Digraph::symmetric_closure(g0);
                d0 = Some(d.clone());
                let ccfg = cfg.coloring.clone();
                let factory: StrongFactory =
                    Box::new(move |seed: NodeSeed<'_>| StrongColoringNode::new(&seed, &d, &ccfg));
                match cfg.coloring.engine {
                    Engine::Sequential => Inner::Strong(Stepper::new(&topo, &engine_cfg, factory)),
                    Engine::Parallel { threads } => {
                        Inner::StrongPar(ParStepper::new(&topo, &engine_cfg, threads, factory))
                    }
                }
            }
        };
        Ok(ColoringService {
            cfg,
            g0: g0.clone(),
            d0,
            palette_bound0,
            feed: EventFeed::new(g0),
            inner,
            pending: None,
            pending_seq: 0,
            history: Vec::new(),
            batches_committed: 0,
            escalations: 0,
            watchdog_armed: true,
            stall_ticks: 0,
            progress_hwm: 0,
            backoff: 0,
            open_batch: None,
            reports: Vec::new(),
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Current round clock.
    pub fn round(&self) -> u64 {
        self.inner.round()
    }

    /// Quiescent with no committed batch awaiting application — the
    /// state in which the next staged batch may commit.
    pub fn is_settled(&self) -> bool {
        self.pending.is_none() && self.inner.is_quiescent()
    }

    /// Staged, uncommitted events.
    pub fn staged(&self) -> usize {
        self.feed.staged()
    }

    /// The staged, uncommitted events in staging order — what a journal
    /// rotation must carry over.
    pub fn staged_events(&self) -> &[ChurnEvent] {
        self.feed.staged_events()
    }

    /// Committed batches so far.
    pub fn batches_committed(&self) -> u64 {
        self.batches_committed
    }

    /// Recolor escalations so far.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// The replayable history (committed batches and escalations).
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// Number of history entries — the `h` index the next journal
    /// marker should carry is `history_len() + 1`.
    pub fn history_len(&self) -> u64 {
        self.history.len() as u64
    }

    /// Validate and stage one churn event for the next batch. Rejected
    /// events leave the service untouched.
    pub fn stage(&mut self, ev: ChurnEvent) -> Result<(), ServiceError> {
        self.feed.stage(ev).map_err(ServiceError::Feed)
    }

    /// `(seq, round)` the staged events would commit as right now, or
    /// `None` if there is nothing staged or a repair is still running.
    pub fn next_commit(&self) -> Option<(u64, u64)> {
        (self.is_settled() && self.feed.staged() > 0)
            .then(|| (self.batches_committed + 1, self.inner.round()))
    }

    /// Commit the staged events as one batch, to be applied on the next
    /// tick. Returns the commit `(seq, round)`, or `None` when
    /// [`ColoringService::next_commit`] is `None`.
    pub fn commit(&mut self) -> Option<(u64, u64)> {
        let (seq, round) = self.next_commit()?;
        let batch = self.feed.commit(round).expect("staged() > 0 implies a batch");
        self.history.push(HistoryEntry::Batch { seq, round, events: batch.events.clone() });
        self.pending = Some(batch);
        self.pending_seq = seq;
        self.batches_committed = seq;
        Some((seq, round))
    }

    /// Escalate to a full recolor now: every surviving node restarts
    /// the protocol on the current topology. Recorded in the history
    /// (journal it with [`ColoringService::journal_recolor_line`]).
    /// Returns the recorded round.
    pub fn force_recolor(&mut self) -> u64 {
        self.escalate()
    }

    fn escalate(&mut self) -> u64 {
        let round = self.inner.round();
        self.inner.restart();
        self.history.push(HistoryEntry::Recolor { round });
        self.escalations += 1;
        self.stall_ticks = 0;
        self.progress_hwm = 0;
        self.backoff = self.backoff.saturating_add(1);
        round
    }

    /// Committed color slots plus done nodes — the watchdog's progress
    /// metric. A healthy repair raises it every few ticks; a genuinely
    /// wedged one cannot.
    fn progress_metric(&self, done: usize) -> u64 {
        let slots =
            self.coloring_map().values().flat_map(|&(a, b)| [a, b]).filter(Option::is_some).count();
        slots as u64 + done as u64
    }

    /// Execute one communication round, applying a pending batch first
    /// if one was committed. Idle (quiescent, nothing pending) ticks
    /// execute nothing and consume no randomness.
    pub fn tick(&mut self) -> Result<Tick, ServiceError> {
        if self.pending.is_none() && self.inner.is_quiescent() {
            return Ok(Tick::Idle);
        }
        let applied = self.pending.take();
        let applied_seq = applied.as_ref().map(|_| self.pending_seq);
        if let Some(b) = &applied {
            self.open_batch = Some(OpenBatch {
                seq: self.pending_seq,
                round: b.round,
                events: b.events.len(),
                pre: self.coloring_map(),
            });
            self.stall_ticks = 0;
            self.progress_hwm = 0;
            self.backoff = 0;
        }
        let rs = self.inner.tick(applied.as_ref())?;
        let mut escalated = None;
        let quiesced = self.inner.is_quiescent();
        if quiesced {
            self.stall_ticks = 0;
            self.backoff = 0;
            let open = self.open_batch.take();
            // The churn-amplification numerator measures the *repair*,
            // so diff before compacting.
            let colors_changed = open.as_ref().map(|open| {
                let post = self.coloring_map();
                post.iter().filter(|(k, v)| open.pre.get(k) != Some(*v)).count() as u64
            });
            let reduction = self.compact();
            if let Some(open) = open {
                self.reports.push(ServeBatchReport {
                    seq: open.seq,
                    round: open.round,
                    events: open.events,
                    repair_rounds: self.inner.round() - open.round,
                    colors_changed: colors_changed.unwrap_or(0),
                    colors_used: self.distinct_colors(),
                    reduction,
                });
            }
        } else if self.watchdog_armed && self.cfg.watchdog_ticks > 0 {
            let progress = self.progress_metric(rs.done);
            if progress > self.progress_hwm {
                self.progress_hwm = progress;
                self.stall_ticks = 0;
            } else {
                self.stall_ticks += 1;
                let threshold =
                    self.cfg.watchdog_ticks.saturating_mul(1u64 << self.backoff.min(16));
                if self.stall_ticks >= threshold {
                    escalated = Some(self.escalate());
                }
            }
        }
        Ok(Tick::Round {
            round: rs.round,
            active: self.inner.still_active(),
            applied: applied_seq,
            quiesced,
            escalated,
        })
    }

    /// Tick until settled, at most `max_ticks` rounds. Returns the
    /// number of rounds executed, or [`ServiceError::Budget`].
    pub fn run_to_quiescence(&mut self, max_ticks: u64) -> Result<u64, ServiceError> {
        let mut ticks = 0u64;
        while !self.is_settled() {
            if ticks >= max_ticks {
                return Err(ServiceError::Budget { ticks });
            }
            self.tick()?;
            ticks += 1;
        }
        Ok(ticks)
    }

    /// A generous tick budget for one repair on the current topology:
    /// three communication rounds per computation round of the
    /// configured budget, tripled for escalation headroom.
    pub fn tick_budget(&self) -> u64 {
        let topo = self.inner.topology();
        let delta = topo.max_degree().max(1);
        3 * 3 * self.cfg.coloring.compute_round_budget(delta) + 64
    }

    /// Drain the per-batch repair reports accumulated since the last
    /// call.
    pub fn take_reports(&mut self) -> Vec<ServeBatchReport> {
        std::mem::take(&mut self.reports)
    }

    fn check_node(&self, v: VertexId) -> Result<(), ServiceError> {
        if (v.0 as usize) < self.inner.num_nodes() {
            Ok(())
        } else {
            Err(ServiceError::NoSuchNode { node: v, num_vertices: self.inner.num_nodes() })
        }
    }

    /// The committed color slots on edge `u`-`v` (see [`ColoredEdge`]
    /// for the per-protocol meaning). Errors on unknown vertices or a
    /// non-edge.
    pub fn edge_color(
        &self,
        u: VertexId,
        v: VertexId,
    ) -> Result<(Option<Color>, Option<Color>), ServiceError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if !self.inner.topology().are_neighbors(u, v) {
            return Err(ServiceError::NoSuchEdge { u, v });
        }
        Ok(self.inner.edge_slots(u, v))
    }

    /// Every color committed on `v`'s surviving edges, ascending.
    pub fn node_palette(&self, v: VertexId) -> Result<Vec<Color>, ServiceError> {
        self.check_node(v)?;
        Ok(self.inner.palette(v))
    }

    /// Distinct colors committed across the current coloring.
    fn distinct_colors(&self) -> u64 {
        let set: ColorSet =
            self.coloring_map().values().flat_map(|&(f, r)| [f, r]).flatten().collect();
        set.len() as u64
    }

    /// Run the configured Kempe pass over the settled coloring and
    /// write the compacted colors back into the parked automata — the
    /// serve-mode "compaction after repair commit". Out-of-band: the
    /// pass runs on an ephemeral engine and does not advance the
    /// service round clock, so recorded history rounds stay valid and
    /// snapshot replay (which re-enters this path at the same
    /// quiescence transitions) reproduces it bit-for-bit. Returns
    /// `None` when reduction is off, the protocol is not edge coloring,
    /// or the settled coloring is unusable (endpoint disagreement).
    fn compact(&mut self) -> Option<KempeReport> {
        let ColorReduction::Kempe(kcfg) = self.cfg.coloring.reduction else {
            return None;
        };
        if !matches!(self.inner, Inner::Ec(_) | Inner::EcPar(_)) {
            return None;
        }
        // Rebuild the live graph (edge ids: u ascending, then v) and
        // lift the settled coloring off the automata.
        let topo = self.inner.topology();
        let n = topo.num_nodes();
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for i in 0..n {
            let u = VertexId(i as u32);
            for &v in topo.neighbors(u) {
                if v > u {
                    pairs.push((u, v));
                }
            }
        }
        let mut colors: Vec<Option<Color>> = Vec::with_capacity(pairs.len());
        let mut b = GraphBuilder::with_capacity(n, pairs.len());
        for &(u, v) in &pairs {
            b.add_edge(u, v);
            let (fwd, rev) = self.inner.edge_slots(u, v);
            if fwd != rev {
                return None;
            }
            colors.push(fwd);
        }
        let g = b.build().ok()?;
        let alive: Vec<bool> = (0..n).map(|i| self.feed.is_alive(VertexId(i as u32))).collect();
        let report =
            crate::kempe::reduce_palette(&g, &mut colors, &alive, &kcfg, &self.cfg.coloring)
                .ok()?;
        if report.trivial_recolors + report.chains_flipped > 0 {
            // Write back: each parked node adopts its port colors and
            // its neighbors' full post-compaction palettes (so future
            // repair proposals stay exact — Proposition 2 relies on
            // one-hop knowledge being current at quiescence).
            let mut by_edge: HashMap<(u32, u32), Option<Color>> = HashMap::new();
            for (&(u, v), &c) in pairs.iter().zip(colors.iter()) {
                by_edge.insert((u.0, v.0), c);
            }
            let color_of = |u: VertexId, v: VertexId| {
                let key = if u < v { (u.0, v.0) } else { (v.0, u.0) };
                by_edge.get(&key).copied().flatten()
            };
            let palettes: Vec<ColorSet> = (0..n)
                .map(|i| {
                    let u = VertexId(i as u32);
                    topo.neighbors(u).iter().filter_map(|&v| color_of(u, v)).collect()
                })
                .collect();
            let per_node: Vec<(Vec<Option<Color>>, Vec<ColorSet>)> = (0..n)
                .map(|i| {
                    let u = VertexId(i as u32);
                    let own = topo.neighbors(u).iter().map(|&v| color_of(u, v)).collect::<Vec<_>>();
                    let knowledge = topo
                        .neighbors(u)
                        .iter()
                        .map(|&v| palettes[v.index()].clone())
                        .collect::<Vec<_>>();
                    (own, knowledge)
                })
                .collect();
            let nodes = self.inner.ec_nodes_mut().expect("matched an edge-coloring variant above");
            for (i, (own, knowledge)) in per_node.into_iter().enumerate() {
                nodes[i].adopt_compaction(&own, knowledge);
            }
        }
        Some(report)
    }

    fn coloring_map(&self) -> HashMap<(u32, u32), (Option<Color>, Option<Color>)> {
        let topo = self.inner.topology();
        let mut map = HashMap::new();
        for i in 0..topo.num_nodes() {
            let u = VertexId(i as u32);
            for &v in topo.neighbors(u) {
                if v.0 > u.0 {
                    map.insert((u.0, v.0), self.inner.edge_slots(u, v));
                }
            }
        }
        map
    }

    /// The full current coloring, sorted by `(u, v)`.
    pub fn coloring(&self) -> Vec<ColoredEdge> {
        let mut out: Vec<ColoredEdge> = self
            .coloring_map()
            .into_iter()
            .map(|((u, v), (forward, reverse))| ColoredEdge {
                u: VertexId(u),
                v: VertexId(v),
                forward,
                reverse,
            })
            .collect();
        out.sort_by_key(|e| (e.u, e.v));
        out
    }

    /// [`hash_coloring`] of [`ColoringService::coloring`].
    pub fn coloring_hash(&self) -> u64 {
        hash_coloring(&self.coloring())
    }

    /// A liveness/convergence summary.
    pub fn status(&self) -> ServiceStatus {
        let coloring = self.coloring();
        let mut colors: Vec<u32> =
            coloring.iter().flat_map(|e| [e.forward, e.reverse]).flatten().map(|c| c.0).collect();
        colors.sort_unstable();
        colors.dedup();
        let n = self.inner.num_nodes();
        let alive = (0..n).filter(|&i| self.feed.is_alive(VertexId(i as u32))).count();
        ServiceStatus {
            round: self.inner.round(),
            settled: self.is_settled(),
            nodes: n,
            alive,
            staged: self.feed.staged(),
            batches: self.batches_committed,
            escalations: self.escalations,
            colors_used: colors.len(),
            hash: hash_coloring(&coloring),
        }
    }

    // ------------------------------------------------------------------
    // Snapshot + journal wire format
    // ------------------------------------------------------------------

    /// Journal line for an accepted event. Append (and flush) this
    /// *before* acknowledging the event.
    pub fn journal_event_line(ev: &ChurnEvent) -> String {
        event_line(ev)
    }

    /// Journal line for a batch commit. `h` is the history index the
    /// entry will occupy ([`ColoringService::history_len`]` + 1` when
    /// written before the [`ColoringService::commit`] call), `(seq,
    /// round)` is what [`ColoringService::next_commit`] returned.
    /// Append and flush *before* committing — recovery replays the
    /// marker, and a marker without its commit is harmless because the
    /// commit round is deterministic.
    pub fn journal_commit_line(h: u64, seq: u64, round: u64) -> String {
        format!("{{\"type\":\"commit\",\"h\":{h},\"seq\":{seq},\"round\":{round}}}\n")
    }

    /// Journal line for a recolor escalation recorded at `round` as
    /// history entry `h` (equal to [`ColoringService::history_len`]
    /// right after the tick that escalated).
    pub fn journal_recolor_line(h: u64, round: u64) -> String {
        format!("{{\"type\":\"recolor\",\"h\":{h},\"round\":{round}}}\n")
    }

    /// Serialize the service to its flat-JSONL snapshot: header, the
    /// initial graph, the replayable history, a CRC-32 trailer. Valid
    /// at any point of execution — restore replays the history and
    /// fast-forwards the in-flight repair (if any) to quiescence.
    pub fn snapshot_text(&self) -> String {
        let c = &self.cfg.coloring;
        let settled = self.is_settled();
        // Reduction settings ride in the header so a restored service
        // keeps compacting exactly as the live one did. All-zero (and
        // absent, for pre-reduction snapshots) means off.
        let (rk, rt, rc, ra, rr) = match c.reduction {
            ColorReduction::Off => (0, 0, 0, 0, 0),
            ColorReduction::Kempe(k) => (
                1u64,
                u64::from(k.target_colors.unwrap_or(0)),
                k.max_chain as u64,
                u64::from(k.max_attempts),
                k.max_rounds.unwrap_or(0),
            ),
        };
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"serve-snapshot\",\"version\":{SNAPSHOT_VERSION},\
             \"protocol\":\"{}\",\"seed\":{},\"invite_bits\":{},\
             \"color_policy\":\"{}\",\"response_policy\":\"{}\",\"width\":{},\
             \"max_compute\":{},\"validate_sends\":{},\"watchdog\":{},\
             \"reduce\":{rk},\"reduce_target\":{rt},\"reduce_chain\":{rc},\
             \"reduce_attempts\":{ra},\"reduce_rounds\":{rr},\
             \"n\":{},\"edges\":{},\"history\":{},\"batches\":{},\
             \"quiescent\":{},\"round\":{},\"hash\":{}}}\n",
            self.cfg.protocol.name(),
            c.seed,
            c.invite_probability.to_bits(),
            color_policy_name(c.color_policy),
            response_policy_name(c.response_policy),
            c.proposal_width,
            c.max_compute_rounds.unwrap_or(0),
            u64::from(c.validate_sends),
            self.cfg.watchdog_ticks,
            self.g0.num_vertices(),
            self.g0.num_edges(),
            self.history.len(),
            self.batches_committed,
            u64::from(settled),
            self.inner.round(),
            self.coloring_hash(),
        ));
        for (_, (u, v)) in self.g0.edges() {
            out.push_str(&format!("{{\"type\":\"edge\",\"u\":{},\"v\":{}}}\n", u.0, v.0));
        }
        for (i, entry) in self.history.iter().enumerate() {
            let h = i as u64 + 1;
            match entry {
                HistoryEntry::Batch { seq, round, events } => {
                    for ev in events {
                        out.push_str(&event_line(ev));
                    }
                    out.push_str(&Self::journal_commit_line(h, *seq, *round));
                }
                HistoryEntry::Recolor { round } => {
                    out.push_str(&Self::journal_recolor_line(h, *round));
                }
            }
        }
        let crc = crc32(out.as_bytes());
        out.push_str(&format!("{{\"type\":\"crc\",\"value\":{crc}}}\n"));
        out
    }

    /// Rebuild a service from a snapshot, then recover the tail from a
    /// journal if one is given. The snapshot is CRC-checked and
    /// structurally validated; the journal is read tolerantly (a torn
    /// final line ends recovery at the tear). The restored service has
    /// finished any in-flight repair (it is settled unless journal
    /// events were re-staged).
    pub fn restore(
        snapshot: &str,
        journal: Option<&str>,
    ) -> Result<(Self, RestoreReport), ServiceError> {
        let trimmed = snapshot.trim_end();
        let (body, crc_text) = trimmed.rsplit_once('\n').ok_or(ServiceError::Snapshot {
            line: 1,
            message: "truncated snapshot: missing CRC trailer".into(),
        })?;
        let crc_lineno = body.lines().count() + 1;
        let crc_rec = parse_line(crc_text).filter(|r| r.tag() == Some("crc")).ok_or(
            ServiceError::Snapshot {
                line: crc_lineno,
                message: "truncated snapshot: last line is not a CRC trailer".into(),
            },
        )?;
        let expected = crc_rec.num("value").ok_or(ServiceError::Snapshot {
            line: crc_lineno,
            message: "CRC trailer has no value".into(),
        })? as u32;
        let mut hashed = body.as_bytes().to_vec();
        hashed.push(b'\n');
        let actual = crc32(&hashed);
        if expected != actual {
            return Err(ServiceError::CrcMismatch { expected, actual });
        }

        let mut lines = body.lines().enumerate();
        let (_, header_text) = lines
            .next()
            .ok_or(ServiceError::Snapshot { line: 1, message: "empty snapshot".into() })?;
        let header = parse_line(header_text).filter(|r| r.tag() == Some("serve-snapshot")).ok_or(
            ServiceError::Snapshot {
                line: 1,
                message: "first line is not a serve-snapshot header".into(),
            },
        )?;
        let version = header_num(&header, "version")?;
        if version != SNAPSHOT_VERSION {
            return Err(ServiceError::Snapshot {
                line: 1,
                message: format!("unsupported snapshot version {version}"),
            });
        }
        let protocol: ServeProtocol = header
            .str("protocol")
            .unwrap_or("")
            .parse()
            .map_err(|e| ServiceError::Snapshot { line: 1, message: e })?;
        let coloring = ColoringConfig {
            seed: header_num(&header, "seed")?,
            invite_probability: f64::from_bits(header_num(&header, "invite_bits")?),
            color_policy: parse_color_policy(header.str("color_policy").unwrap_or("")).ok_or_else(
                || ServiceError::Snapshot { line: 1, message: "unknown color_policy".into() },
            )?,
            response_policy: parse_response_policy(header.str("response_policy").unwrap_or(""))
                .ok_or_else(|| ServiceError::Snapshot {
                    line: 1,
                    message: "unknown response_policy".into(),
                })?,
            proposal_width: header_num(&header, "width")? as usize,
            max_compute_rounds: match header_num(&header, "max_compute")? {
                0 => None,
                m => Some(m),
            },
            validate_sends: header_num(&header, "validate_sends")? != 0,
            collect_round_stats: false,
            collect_metrics: false,
            // Snapshots do not record the engine: the coloring (and its
            // replay) is bit-identical on either, so a restored service
            // defaults to sequential and the host may choose parallel
            // for fresh sessions.
            engine: Engine::Sequential,
            faults: FaultPlan::reliable(),
            transport: Transport::Bare,
            profile: false,
            // Absent in pre-reduction snapshots: off.
            reduction: if header.num("reduce").unwrap_or(0) == 1 {
                ColorReduction::Kempe(KempeConfig {
                    target_colors: match header.num("reduce_target").unwrap_or(0) {
                        0 => None,
                        t => Some(t as u32),
                    },
                    max_chain: header
                        .num("reduce_chain")
                        .filter(|&c| c > 0)
                        .unwrap_or(KempeConfig::default().max_chain as u64)
                        as usize,
                    max_attempts: header
                        .num("reduce_attempts")
                        .filter(|&a| a > 0)
                        .unwrap_or(u64::from(KempeConfig::default().max_attempts))
                        as u32,
                    max_rounds: match header.num("reduce_rounds").unwrap_or(0) {
                        0 => None,
                        r => Some(r),
                    },
                })
            } else {
                ColorReduction::Off
            },
        };
        let cfg =
            ServiceConfig { protocol, coloring, watchdog_ticks: header_num(&header, "watchdog")? };
        let n = header_num(&header, "n")? as usize;
        let num_edges = header_num(&header, "edges")? as usize;
        let num_history = header_num(&header, "history")? as usize;
        let quiescent = header_num(&header, "quiescent")? != 0;
        let recorded_hash = header_num(&header, "hash")?;

        let mut edges = Vec::with_capacity(num_edges.min(1 << 20));
        for _ in 0..num_edges {
            let (idx, text) = lines.next().ok_or(ServiceError::Snapshot {
                line: crc_lineno,
                message: "snapshot ends inside the edge list".into(),
            })?;
            let rec = parse_line(text).filter(|r| r.tag() == Some("edge")).ok_or_else(|| {
                ServiceError::Snapshot { line: idx + 1, message: "expected an edge line".into() }
            })?;
            let u = rec.num("u").ok_or(ServiceError::Snapshot {
                line: idx + 1,
                message: "edge line missing u".into(),
            })?;
            let v = rec.num("v").ok_or(ServiceError::Snapshot {
                line: idx + 1,
                message: "edge line missing v".into(),
            })?;
            if u > u32::MAX as u64 || v > u32::MAX as u64 {
                return Err(ServiceError::Snapshot {
                    line: idx + 1,
                    message: "edge endpoint out of range".into(),
                });
            }
            edges.push((VertexId(u as u32), VertexId(v as u32)));
        }
        let g0 = Graph::from_edges(n, edges).map_err(|e| ServiceError::Snapshot {
            line: 1,
            message: format!("invalid initial graph: {e}"),
        })?;

        let snap_entries = parse_entry_stream(lines, 0, true)?;
        if snap_entries.torn || !snap_entries.staged.is_empty() {
            return Err(ServiceError::Snapshot {
                line: crc_lineno,
                message: "snapshot history ends with dangling events".into(),
            });
        }
        if snap_entries.entries.len() != num_history {
            return Err(ServiceError::Snapshot {
                line: crc_lineno,
                message: format!(
                    "header declares {num_history} history entries, found {}",
                    snap_entries.entries.len()
                ),
            });
        }

        let tail = match journal {
            Some(text) => parse_entry_stream(text.lines().enumerate(), num_history as u64, false)?,
            None => ParsedEntries::default(),
        };

        let mut svc = Self::new(&g0, cfg)?;
        let mut entries = snap_entries.entries;
        let tail_count = tail.entries.len() as u64;
        entries.extend(tail.entries);
        svc.replay(&entries)?;
        for ev in &tail.staged {
            svc.stage(*ev)?;
        }
        if quiescent && tail_count == 0 && svc.coloring_hash() != recorded_hash {
            return Err(ServiceError::Replay(format!(
                "replayed coloring hash {:#018x} != recorded {recorded_hash:#018x}",
                svc.coloring_hash()
            )));
        }
        Ok((
            svc,
            RestoreReport {
                snapshot_entries: num_history as u64,
                tail_entries: tail_count,
                staged: tail.staged.len() as u64,
                torn_tail: tail.torn,
            },
        ))
    }

    /// Re-execute `entries` (batches pinned to their recorded rounds,
    /// escalations restarted at theirs) through the normal tick loop,
    /// with the watchdog disarmed — recorded escalations stand in for
    /// it. Finishes by repairing to quiescence with the watchdog back
    /// on.
    fn replay(&mut self, entries: &[HistoryEntry]) -> Result<(), ServiceError> {
        self.watchdog_armed = false;
        for entry in entries {
            let target = entry.round();
            while self.inner.round() < target && !self.is_settled() {
                self.tick()?;
            }
            if self.inner.round() != target {
                return Err(ServiceError::Replay(format!(
                    "settled at round {} but the next history entry is recorded at round {target}",
                    self.inner.round()
                )));
            }
            match entry {
                HistoryEntry::Batch { seq, round, events } => {
                    if !self.is_settled() {
                        return Err(ServiceError::Replay(format!(
                            "batch {seq} recorded at round {round}, but the service is not \
                             quiescent there"
                        )));
                    }
                    if *seq != self.batches_committed + 1 {
                        return Err(ServiceError::Replay(format!(
                            "batch sequence jump: recorded {seq}, expected {}",
                            self.batches_committed + 1
                        )));
                    }
                    for ev in events {
                        self.feed.stage(*ev).map_err(|e| {
                            ServiceError::Replay(format!("batch {seq} event rejected: {e}"))
                        })?;
                    }
                    let batch = self
                        .feed
                        .commit(*round)
                        .ok_or_else(|| ServiceError::Replay(format!("batch {seq} is empty")))?;
                    self.history.push(entry.clone());
                    self.pending = Some(batch);
                    self.pending_seq = *seq;
                    self.batches_committed = *seq;
                }
                HistoryEntry::Recolor { .. } => {
                    // escalate() records Recolor{round: inner.round()},
                    // which the round-match check above pins to the
                    // recorded entry — and it updates the backoff state
                    // exactly as the live watchdog did.
                    self.escalate();
                }
            }
        }
        self.watchdog_armed = true;
        self.run_to_quiescence(self.tick_budget())?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Cross-engine recompute
    // ------------------------------------------------------------------

    /// Recompute the coloring from scratch by compiling the committed
    /// history into a [`ChurnSchedule`] and running it through the
    /// batch engines under `engine` — the independent cross-check the
    /// acceptance suite diffs against the live state. Only available
    /// for escalation-free histories (the batch engines have no restart
    /// path).
    pub fn recompute(&self, engine: Engine) -> Result<Vec<ColoredEdge>, ServiceError> {
        if self.history.iter().any(|e| matches!(e, HistoryEntry::Recolor { .. })) {
            return Err(ServiceError::Config(
                "recompute requires an escalation-free history".into(),
            ));
        }
        let mut feed = EventFeed::new(&self.g0);
        let mut batches = Vec::new();
        for entry in &self.history {
            if let HistoryEntry::Batch { seq, round, events } = entry {
                for ev in events {
                    feed.stage(*ev).map_err(|e| {
                        ServiceError::Replay(format!("batch {seq} event rejected: {e}"))
                    })?;
                }
                batches.push(
                    feed.commit(*round)
                        .ok_or_else(|| ServiceError::Replay(format!("batch {seq} is empty")))?,
                );
            }
        }
        let schedule = ChurnSchedule::from_batches(batches);
        let cfg = ColoringConfig { engine, ..self.cfg.coloring.clone() };
        cfg.validate().map_err(|e| ServiceError::Config(e.to_string()))?;
        let delta = self.g0.max_degree().max(schedule.max_degree()).max(1);
        let max_rounds =
            schedule.last_round().unwrap_or(0) + 3 * 3 * cfg.compute_round_budget(delta) + 64;
        let topo = Topology::from_graph(&self.g0);
        let final_graph = schedule.final_graph().unwrap_or(&self.g0).clone();
        let slots: Vec<ColoredEdge> = match self.cfg.protocol {
            ServeProtocol::EdgeColoring => {
                let bound = self.palette_bound0;
                let run = run_protocol_churn_traced(
                    &topo,
                    &cfg,
                    max_rounds,
                    &schedule,
                    |seed: NodeSeed<'_>| EdgeColoringNode::new(&seed, &cfg, bound),
                    &mut NoopTracer,
                )
                .map_err(|e| match e {
                    CoreError::Sim(s) => ServiceError::Sim(s),
                    other => ServiceError::Config(other.to_string()),
                })?;
                collect_coloring(&final_graph, |u, v| {
                    (
                        run.nodes[u.0 as usize].color_toward(v),
                        run.nodes[v.0 as usize].color_toward(u),
                    )
                })
            }
            ServeProtocol::StrongColoring => {
                let d0 = self.d0.as_ref().expect("strong service stores its digraph");
                let run = run_protocol_churn_traced(
                    &topo,
                    &cfg,
                    max_rounds,
                    &schedule,
                    |seed: NodeSeed<'_>| StrongColoringNode::new(&seed, d0, &cfg),
                    &mut NoopTracer,
                )
                .map_err(|e| match e {
                    CoreError::Sim(s) => ServiceError::Sim(s),
                    other => ServiceError::Config(other.to_string()),
                })?;
                collect_coloring(&final_graph, |u, v| {
                    (
                        run.nodes[u.0 as usize].out_color_toward(v),
                        run.nodes[v.0 as usize].out_color_toward(u),
                    )
                })
            }
        };
        Ok(slots)
    }
}

fn collect_coloring(
    g: &Graph,
    slots: impl Fn(VertexId, VertexId) -> (Option<Color>, Option<Color>),
) -> Vec<ColoredEdge> {
    let mut out: Vec<ColoredEdge> = g
        .edges()
        .map(|(_, (a, b))| {
            let (u, v) = if a.0 <= b.0 { (a, b) } else { (b, a) };
            let (forward, reverse) = slots(u, v);
            ColoredEdge { u, v, forward, reverse }
        })
        .collect();
    out.sort_by_key(|e| (e.u, e.v));
    out
}

fn color_policy_name(p: ColorPolicy) -> &'static str {
    match p {
        ColorPolicy::LowestIndex => "lowest-index",
        ColorPolicy::RandomLegal => "random-legal",
    }
}

fn parse_color_policy(s: &str) -> Option<ColorPolicy> {
    match s {
        "lowest-index" => Some(ColorPolicy::LowestIndex),
        "random-legal" => Some(ColorPolicy::RandomLegal),
        _ => None,
    }
}

fn response_policy_name(p: ResponsePolicy) -> &'static str {
    match p {
        ResponsePolicy::Random => "random",
        ResponsePolicy::FirstSender => "first-sender",
        ResponsePolicy::LowestColor => "lowest-color",
    }
}

fn parse_response_policy(s: &str) -> Option<ResponsePolicy> {
    match s {
        "random" => Some(ResponsePolicy::Random),
        "first-sender" => Some(ResponsePolicy::FirstSender),
        "lowest-color" => Some(ResponsePolicy::LowestColor),
        _ => None,
    }
}

fn header_num(rec: &Record, key: &str) -> Result<u64, ServiceError> {
    rec.num(key).ok_or_else(|| ServiceError::Snapshot {
        line: 1,
        message: format!("header missing numeric field '{key}'"),
    })
}

fn event_line(ev: &ChurnEvent) -> String {
    // Link endpoints are written normalized (min, max) — the feed
    // stores them that way, so journal replay reconstructs the exact
    // history the live service recorded.
    match ev {
        ChurnEvent::LinkUp(u, v) => {
            let (a, b) = (u.min(v), u.max(v));
            format!("{{\"type\":\"event\",\"kind\":\"link-up\",\"u\":{},\"v\":{}}}\n", a.0, b.0)
        }
        ChurnEvent::LinkDown(u, v) => {
            let (a, b) = (u.min(v), u.max(v));
            format!("{{\"type\":\"event\",\"kind\":\"link-down\",\"u\":{},\"v\":{}}}\n", a.0, b.0)
        }
        ChurnEvent::NodeJoin(v) => {
            format!("{{\"type\":\"event\",\"kind\":\"join\",\"node\":{}}}\n", v.0)
        }
        ChurnEvent::NodeLeave(v) => {
            format!("{{\"type\":\"event\",\"kind\":\"leave\",\"node\":{}}}\n", v.0)
        }
    }
}

fn event_from_record(rec: &Record) -> Option<ChurnEvent> {
    let vertex = |key: &str| -> Option<VertexId> {
        let n = rec.num(key)?;
        (n <= u32::MAX as u64).then_some(VertexId(n as u32))
    };
    match rec.str("kind")? {
        "link-up" => Some(ChurnEvent::LinkUp(vertex("u")?, vertex("v")?)),
        "link-down" => Some(ChurnEvent::LinkDown(vertex("u")?, vertex("v")?)),
        "join" => Some(ChurnEvent::NodeJoin(vertex("node")?)),
        "leave" => Some(ChurnEvent::NodeLeave(vertex("node")?)),
        _ => None,
    }
}

#[derive(Default)]
struct ParsedEntries {
    entries: Vec<HistoryEntry>,
    staged: Vec<ChurnEvent>,
    torn: bool,
}

/// Parse a history-entry stream (shared between the snapshot body and
/// the journal). Markers with `h <= skip_h` were already captured by
/// the snapshot and are dropped along with their buffered events. In
/// `strict` mode any unparseable line is an error; otherwise it is a
/// torn tail and parsing stops there.
fn parse_entry_stream<'a>(
    lines: impl Iterator<Item = (usize, &'a str)>,
    skip_h: u64,
    strict: bool,
) -> Result<ParsedEntries, ServiceError> {
    let mut out = ParsedEntries::default();
    let mut buffer: Vec<ChurnEvent> = Vec::new();
    for (idx, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let bad = |message: &str| -> Result<(), ServiceError> {
            if strict {
                Err(ServiceError::Snapshot { line: idx + 1, message: message.into() })
            } else {
                Ok(())
            }
        };
        let Some(rec) = parse_line(line) else {
            bad("unparseable history line")?;
            out.torn = true;
            break;
        };
        match rec.tag() {
            Some("event") => match event_from_record(&rec) {
                Some(ev) => buffer.push(ev),
                None => {
                    bad("malformed event line")?;
                    out.torn = true;
                    break;
                }
            },
            Some("commit") => {
                let (Some(h), Some(seq), Some(round)) =
                    (rec.num("h"), rec.num("seq"), rec.num("round"))
                else {
                    bad("commit marker missing h/seq/round")?;
                    out.torn = true;
                    break;
                };
                if h <= skip_h {
                    buffer.clear();
                } else {
                    out.entries.push(HistoryEntry::Batch {
                        seq,
                        round,
                        events: std::mem::take(&mut buffer),
                    });
                }
            }
            Some("recolor") => {
                let (Some(h), Some(round)) = (rec.num("h"), rec.num("round")) else {
                    bad("recolor marker missing h/round")?;
                    out.torn = true;
                    break;
                };
                if h > skip_h {
                    out.entries.push(HistoryEntry::Recolor { round });
                }
            }
            _ => {
                bad("unknown history line type")?;
                out.torn = true;
                break;
            }
        }
    }
    out.staged = buffer;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dima_graph::gen::structured;

    fn svc(protocol: ServeProtocol, seed: u64) -> ColoringService {
        let g = structured::path(8);
        let mut s = ColoringService::new(&g, ServiceConfig::new(protocol, seed)).unwrap();
        s.run_to_quiescence(s.tick_budget()).unwrap();
        s
    }

    fn waves() -> Vec<Vec<ChurnEvent>> {
        use ChurnEvent::*;
        vec![
            vec![LinkUp(VertexId(0), VertexId(2)), LinkDown(VertexId(4), VertexId(5))],
            vec![NodeLeave(VertexId(7)), LinkUp(VertexId(2), VertexId(5))],
            vec![NodeJoin(VertexId(7)), LinkUp(VertexId(0), VertexId(7))],
        ]
    }

    /// Drive `svc` through `waves`, journaling exactly as the serve CLI
    /// does (event lines on accept, the commit marker before commit).
    fn drive(s: &mut ColoringService, waves: &[Vec<ChurnEvent>], journal: &mut String) {
        for wave in waves {
            for ev in wave {
                s.stage(*ev).unwrap();
                journal.push_str(&ColoringService::journal_event_line(ev));
            }
            let (seq, round) = s.next_commit().unwrap();
            journal.push_str(&ColoringService::journal_commit_line(
                s.history_len() + 1,
                seq,
                round,
            ));
            assert_eq!(s.commit(), Some((seq, round)));
            s.run_to_quiescence(s.tick_budget()).unwrap();
        }
    }

    fn assert_proper(s: &ColoringService) {
        let coloring = s.coloring();
        for e in &coloring {
            assert!(e.forward.is_some(), "uncolored edge {}-{}", e.u, e.v);
            if s.config().protocol == ServeProtocol::EdgeColoring {
                assert_eq!(e.forward, e.reverse, "endpoint disagreement on {}-{}", e.u, e.v);
            }
        }
        // Edge coloring propriety: a node's incident colors are distinct.
        if s.config().protocol == ServeProtocol::EdgeColoring {
            let mut per_node: HashMap<u32, Vec<Color>> = HashMap::new();
            for e in &coloring {
                per_node.entry(e.u.0).or_default().push(e.forward.unwrap());
                per_node.entry(e.v.0).or_default().push(e.forward.unwrap());
            }
            for (node, mut colors) in per_node {
                let len = colors.len();
                colors.sort();
                colors.dedup();
                assert_eq!(colors.len(), len, "node {node} repeats a color");
            }
        }
    }

    #[test]
    fn fresh_service_colors_the_initial_graph() {
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let s = svc(protocol, 7);
            assert!(s.is_settled());
            assert_proper(&s);
            let st = s.status();
            assert_eq!(st.nodes, 8);
            assert_eq!(st.alive, 8);
            assert_eq!(st.batches, 0);
            assert!(st.colors_used >= 2);
        }
    }

    #[test]
    fn feed_rejections_are_structured_and_harmless() {
        let mut s = svc(ServeProtocol::EdgeColoring, 1);
        let before = s.coloring_hash();
        assert!(matches!(
            s.stage(ChurnEvent::LinkUp(VertexId(0), VertexId(99))),
            Err(ServiceError::Feed(FeedError::UnknownNode { .. }))
        ));
        assert!(matches!(
            s.stage(ChurnEvent::LinkUp(VertexId(0), VertexId(1))),
            Err(ServiceError::Feed(FeedError::DuplicateLink { .. }))
        ));
        assert_eq!(s.staged(), 0);
        assert_eq!(s.coloring_hash(), before);
        // Queries validate too.
        assert!(matches!(
            s.edge_color(VertexId(0), VertexId(3)),
            Err(ServiceError::NoSuchEdge { .. })
        ));
        assert!(matches!(s.node_palette(VertexId(50)), Err(ServiceError::NoSuchNode { .. })));
    }

    #[test]
    fn batches_commit_and_reports_accumulate() {
        let mut s = svc(ServeProtocol::EdgeColoring, 3);
        let mut journal = String::new();
        drive(&mut s, &waves(), &mut journal);
        assert_eq!(s.batches_committed(), 3);
        assert_proper(&s);
        let reports = s.take_reports();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.repair_rounds >= 1);
        }
        // The new edge 0-2 got a color: at least one change in batch 1.
        assert!(reports[0].colors_changed >= 1);
        assert!(s.take_reports().is_empty());
        // Edge queries see the churned topology.
        assert!(s.edge_color(VertexId(0), VertexId(2)).unwrap().0.is_some());
        assert!(matches!(
            s.edge_color(VertexId(4), VertexId(5)),
            Err(ServiceError::NoSuchEdge { .. })
        ));
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let mut s = svc(protocol, 11);
            let mut journal = String::new();
            drive(&mut s, &waves(), &mut journal);
            let snap = s.snapshot_text();
            let (r, report) = ColoringService::restore(&snap, None).unwrap();
            assert_eq!(report.snapshot_entries, 3);
            assert_eq!(report.tail_entries, 0);
            assert_eq!(r.coloring_hash(), s.coloring_hash());
            assert_eq!(r.coloring(), s.coloring());
            assert_eq!(r.round(), s.round());
            assert_eq!(r.history(), s.history());
        }
    }

    #[test]
    fn journal_tail_recovers_post_snapshot_batches() {
        let all = waves();
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let mut s = svc(protocol, 23);
            let mut journal = String::new();
            drive(&mut s, &all[..1], &mut journal);
            let snap = s.snapshot_text();
            // Rotated journal: only the tail since the snapshot.
            let mut tail = String::new();
            drive(&mut s, &all[1..], &mut tail);
            let (r, rep) = ColoringService::restore(&snap, Some(&tail)).unwrap();
            assert_eq!(rep.tail_entries, 2);
            assert_eq!(r.coloring_hash(), s.coloring_hash());
            assert_eq!(r.history(), s.history());
            // Unrotated journal: the full log dedupes against the
            // snapshot by history index.
            journal.push_str(&tail);
            let (r2, rep2) = ColoringService::restore(&snap, Some(&journal)).unwrap();
            assert_eq!(rep2.tail_entries, 2);
            assert_eq!(r2.coloring_hash(), s.coloring_hash());
        }
    }

    #[test]
    fn journal_tolerates_torn_tail_and_restages_events() {
        let all = waves();
        let mut s = svc(ServeProtocol::EdgeColoring, 5);
        let mut journal = String::new();
        drive(&mut s, &all[..1], &mut journal);
        let snap = s.snapshot_text();
        let mut tail = String::new();
        drive(&mut s, &all[1..2], &mut tail);
        // Accepted-but-uncommitted events, then a torn final line.
        let ev = ChurnEvent::LinkUp(VertexId(1), VertexId(6));
        s.stage(ev).unwrap();
        tail.push_str(&ColoringService::journal_event_line(&ev));
        tail.push_str("{\"type\":\"ev");
        let (r, rep) = ColoringService::restore(&snap, Some(&tail)).unwrap();
        assert_eq!(rep.tail_entries, 1);
        assert_eq!(rep.staged, 1);
        assert!(rep.torn_tail);
        assert_eq!(r.staged(), 1);
        // Committing the restaged event lands on the same trajectory.
        let mut live = s;
        let (ls, lr) = live.next_commit().unwrap();
        let mut restored = r;
        assert_eq!(restored.next_commit(), Some((ls, lr)));
        live.commit();
        live.run_to_quiescence(live.tick_budget()).unwrap();
        restored.commit();
        restored.run_to_quiescence(restored.tick_budget()).unwrap();
        assert_eq!(restored.coloring_hash(), live.coloring_hash());
    }

    #[test]
    fn corrupted_snapshots_are_rejected_not_panicked() {
        let mut s = svc(ServeProtocol::EdgeColoring, 9);
        let mut journal = String::new();
        drive(&mut s, &waves(), &mut journal);
        let snap = s.snapshot_text();
        // Bit flip in the middle.
        let mut flipped = snap.clone().into_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] = flipped[mid].wrapping_add(1);
        let flipped = String::from_utf8_lossy(&flipped).into_owned();
        assert!(matches!(
            ColoringService::restore(&flipped, None),
            Err(ServiceError::CrcMismatch { .. })
        ));
        // Truncation drops the trailer.
        let truncated = &snap[..snap.len() * 2 / 3];
        assert!(ColoringService::restore(truncated, None).is_err());
        // Garbage is structurally rejected.
        assert!(ColoringService::restore("not a snapshot\n", None).is_err());
        assert!(ColoringService::restore("", None).is_err());
    }

    #[test]
    fn recompute_matches_live_on_both_engines() {
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let mut s = svc(protocol, 41);
            let mut journal = String::new();
            drive(&mut s, &waves(), &mut journal);
            let live = s.coloring();
            let seq = s.recompute(Engine::Sequential).unwrap();
            let par = s.recompute(Engine::Parallel { threads: 2 }).unwrap();
            assert_eq!(seq, live, "{protocol}: sequential recompute diverged");
            assert_eq!(par, live, "{protocol}: parallel recompute diverged");
        }
    }

    #[test]
    fn forced_recolor_is_recorded_and_replays() {
        let mut s = svc(ServeProtocol::EdgeColoring, 13);
        let mut journal = String::new();
        let all = waves();
        drive(&mut s, &all[..1], &mut journal);
        let snap = s.snapshot_text();
        let mut tail = String::new();
        // Commit a batch, escalate mid-repair, then settle.
        for ev in &all[1] {
            s.stage(*ev).unwrap();
            tail.push_str(&ColoringService::journal_event_line(ev));
        }
        let (seq, round) = s.next_commit().unwrap();
        tail.push_str(&ColoringService::journal_commit_line(s.history_len() + 1, seq, round));
        s.commit();
        s.tick().unwrap();
        s.tick().unwrap();
        let rec_round = s.force_recolor();
        tail.push_str(&ColoringService::journal_recolor_line(s.history_len(), rec_round));
        s.run_to_quiescence(s.tick_budget()).unwrap();
        assert_eq!(s.escalations(), 1);
        assert_proper(&s);
        let (r, rep) = ColoringService::restore(&snap, Some(&tail)).unwrap();
        assert_eq!(rep.tail_entries, 2);
        assert_eq!(r.escalations(), 1);
        assert_eq!(r.coloring_hash(), s.coloring_hash());
        assert_eq!(r.history(), s.history());
        // Escalated histories refuse the batch-engine cross-check.
        assert!(s.recompute(Engine::Sequential).is_err());
    }

    #[test]
    fn hair_trigger_watchdog_escalates_but_still_converges() {
        // A 1-tick watchdog fires on the very first stalled tick (the
        // opening invite round commits nothing), so escalations are
        // guaranteed — and the exponential backoff guarantees the
        // repair still converges instead of livelocking. Two runs see
        // identical tick sequences, so they escalate identically.
        let g = structured::cycle(6);
        let mut cfg = ServiceConfig::new(ServeProtocol::EdgeColoring, 2);
        cfg.watchdog_ticks = 1;
        let run = |cfg: ServiceConfig| {
            let mut s = ColoringService::new(&g, cfg).unwrap();
            s.run_to_quiescence(s.tick_budget()).unwrap();
            assert_proper(&s);
            (s.escalations(), s.coloring_hash())
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert!(a.0 >= 1, "hair-trigger watchdog never fired");
        assert_eq!(a, b);
    }

    #[test]
    fn service_config_rejects_incompatible_modes() {
        let g = structured::path(4);
        // threads: 0 is a config error (the coloring config validates
        // it), but a well-formed parallel engine is accepted.
        let mut cfg = ServiceConfig::new(ServeProtocol::EdgeColoring, 1);
        cfg.coloring.engine = Engine::Parallel { threads: 0 };
        assert!(matches!(ColoringService::new(&g, cfg), Err(ServiceError::Config(_))));
        let mut cfg = ServiceConfig::new(ServeProtocol::EdgeColoring, 1);
        cfg.coloring.faults = FaultPlan::uniform(0.5);
        assert!(matches!(ColoringService::new(&g, cfg), Err(ServiceError::Config(_))));
    }

    #[test]
    fn parallel_service_matches_sequential() {
        // The full serve lifecycle — initial coloring, staged churn
        // commits, repairs, history — is bit-identical when the service
        // runs on the pooled parallel stepper.
        for protocol in [ServeProtocol::EdgeColoring, ServeProtocol::StrongColoring] {
            let mut seq = svc(protocol, 29);
            let mut journal = String::new();
            drive(&mut seq, &waves(), &mut journal);

            let g = structured::path(8);
            let mut cfg = ServiceConfig::new(protocol, 29);
            cfg.coloring.engine = Engine::Parallel { threads: 3 };
            let mut par = ColoringService::new(&g, cfg).unwrap();
            par.run_to_quiescence(par.tick_budget()).unwrap();
            let mut journal_par = String::new();
            drive(&mut par, &waves(), &mut journal_par);

            assert_eq!(par.coloring_hash(), seq.coloring_hash(), "{protocol}");
            assert_eq!(par.coloring(), seq.coloring(), "{protocol}");
            assert_eq!(par.history(), seq.history(), "{protocol}");
            assert_eq!(journal_par, journal, "{protocol}");
            assert_proper(&par);
        }
    }

    #[test]
    fn consecutive_service_runs_reuse_the_pool() {
        // Regression: the parallel stepper must draw workers from the
        // persistent pool — ticking a service (or running two of them
        // back to back) never spawns threads beyond the pool's
        // high-water mark.
        let g = structured::cycle(12);
        let build = || {
            let mut cfg = ServiceConfig::new(ServeProtocol::EdgeColoring, 7);
            cfg.coloring.engine = Engine::Parallel { threads: 2 };
            let mut s = ColoringService::new(&g, cfg).unwrap();
            s.run_to_quiescence(s.tick_budget()).unwrap();
            assert_proper(&s);
        };
        // Warm the pool to this width.
        build();
        let spawned_before = dima_sim::pool::global().threads_spawned();
        build();
        build();
        assert_eq!(
            dima_sim::pool::global().threads_spawned(),
            spawned_before,
            "repeat service runs must reuse pooled workers, not spawn new ones"
        );
    }
}
