//! Engine × transport dispatch shared by the protocol entry points.
//!
//! Every public algorithm ([`crate::maximal_matching`],
//! [`crate::color_edges`], [`crate::strong_color_digraph`]) runs its
//! per-vertex protocol through [`run_protocol`], which picks the engine
//! ([`Engine::Sequential`] or [`Engine::Parallel`]) and, when
//! [`Transport::Reliable`] is configured, wraps every node in the ARQ
//! layer of [`dima_sim::reliable`] so lossy links look perfect to the
//! protocol. The extra engine rounds the ARQ layer spends on
//! retransmission and synchronization are reported as
//! [`EngineRun::transport_overhead_rounds`] so experiments can separate
//! algorithm cost from transport cost.

use dima_sim::churn::ChurnSchedule;
use dima_sim::telemetry::Tracer;
use dima_sim::{
    run_parallel_churn_traced, run_parallel_traced, run_sequential_churn_traced,
    run_sequential_traced, EngineConfig, NodeSeed, Protocol, ReliableNode, Topology,
};

use crate::config::{ColoringConfig, Engine, Transport};
use crate::error::CoreError;

/// What comes back from [`run_protocol`]: final protocol states plus the
/// run metadata the result assemblers need.
pub(crate) struct EngineRun<P> {
    /// Final per-node protocol states (inner protocols — the ARQ wrapper,
    /// if any, has been peeled off).
    pub nodes: Vec<P>,
    /// Simulator statistics. Under the reliable transport these count the
    /// *engine's* rounds and messages — i.e. they include the ARQ
    /// layer's retransmissions, acks and synchronization stalls.
    pub stats: dima_sim::RunStats,
    /// `crashed[v]` iff the fault plan crash-stopped node `v` mid-run.
    pub crashed: Vec<bool>,
    /// Engine rounds spent by the transport on top of the protocol's own
    /// rounds (0 under [`Transport::Bare`]).
    pub transport_overhead_rounds: u64,
}

impl<P> EngineRun<P> {
    /// `alive[v]` iff node `v` ran to completion (was not crashed).
    pub fn alive(&self) -> Vec<bool> {
        self.crashed.iter().map(|&c| !c).collect()
    }
}

/// Run `factory`'s protocol on `topo` under the engine and transport the
/// config selects, feeding telemetry events to `tracer` (callers pass
/// [`NoopTracer`](dima_sim::telemetry::NoopTracer) when untraced — the
/// tracing branches monomorphize away,
/// so the untraced call costs nothing; the equivalence proptests in
/// `tests/telemetry_equivalence.rs` pin that down). `bare_max_rounds` is
/// the round budget a bare run gets; the reliable transport scales it by
/// [`ArqConfig::round_budget`] to cover retransmission stalls and
/// link-death detection.
///
/// [`ArqConfig::round_budget`]: dima_sim::ArqConfig::round_budget
pub(crate) fn run_protocol_traced<P, F, T>(
    topo: &Topology,
    cfg: &ColoringConfig,
    bare_max_rounds: u64,
    factory: F,
    tracer: &mut T,
) -> Result<EngineRun<P>, CoreError>
where
    P: Protocol,
    F: Fn(NodeSeed<'_>) -> P + Sync,
    T: Tracer + Sync,
{
    match cfg.transport {
        Transport::Bare => {
            let engine_cfg = engine_config(cfg, bare_max_rounds);
            let outcome = match cfg.engine {
                Engine::Sequential => run_sequential_traced(topo, &engine_cfg, factory, tracer)?,
                Engine::Parallel { threads } => {
                    run_parallel_traced(topo, &engine_cfg, threads, factory, tracer)?
                }
            };
            Ok(EngineRun {
                nodes: outcome.nodes,
                stats: outcome.stats,
                crashed: outcome.crashed,
                transport_overhead_rounds: 0,
            })
        }
        Transport::Reliable(arq) => {
            let engine_cfg = engine_config(cfg, arq.round_budget(bare_max_rounds));
            let wrapped = ReliableNode::factory(arq, factory);
            let outcome = match cfg.engine {
                Engine::Sequential => run_sequential_traced(topo, &engine_cfg, wrapped, tracer)?,
                Engine::Parallel { threads } => {
                    run_parallel_traced(topo, &engine_cfg, threads, wrapped, tracer)?
                }
            };
            // The protocol's own round count is the fastest node's inner
            // progress: every non-crashed node reaches the same inner
            // round count it would in a bare run on the residual graph.
            let inner_rounds = outcome
                .nodes
                .iter()
                .zip(&outcome.crashed)
                .filter(|&(_, &c)| !c)
                .map(|(n, _)| n.inner_rounds())
                .max()
                .unwrap_or(0);
            Ok(EngineRun {
                transport_overhead_rounds: outcome.stats.rounds.saturating_sub(inner_rounds),
                nodes: outcome.nodes.into_iter().map(ReliableNode::into_inner).collect(),
                stats: outcome.stats,
                crashed: outcome.crashed,
            })
        }
    }
}

/// [`run_protocol_traced`] under a churn schedule. Bare transport only:
/// the ARQ layer binds its sequence numbers and liveness probes to a
/// static neighbor set (message-loss and crash faults compose fine).
/// Always collects per-round stats — [`crate::churn::BatchReport`]s need
/// them to locate quiescence.
pub(crate) fn run_protocol_churn_traced<P, F, T>(
    topo: &Topology,
    cfg: &ColoringConfig,
    max_rounds: u64,
    schedule: &ChurnSchedule,
    factory: F,
    tracer: &mut T,
) -> Result<EngineRun<P>, CoreError>
where
    P: Protocol,
    F: Fn(NodeSeed<'_>) -> P + Sync,
    T: Tracer + Sync,
{
    if cfg.transport != Transport::Bare {
        return Err(CoreError::Config(
            "churn runs require the bare transport: the ARQ layer assumes a static \
             neighbor set (compose churn with message-loss faults directly instead)"
                .into(),
        ));
    }
    let engine_cfg = EngineConfig { collect_round_stats: true, ..engine_config(cfg, max_rounds) };
    let outcome = match cfg.engine {
        Engine::Sequential => {
            run_sequential_churn_traced(topo, &engine_cfg, schedule, factory, tracer)?
        }
        Engine::Parallel { threads } => {
            run_parallel_churn_traced(topo, &engine_cfg, threads, schedule, factory, tracer)?
        }
    };
    Ok(EngineRun {
        nodes: outcome.nodes,
        stats: outcome.stats,
        crashed: outcome.crashed,
        transport_overhead_rounds: 0,
    })
}

fn engine_config(cfg: &ColoringConfig, max_rounds: u64) -> EngineConfig {
    EngineConfig {
        seed: cfg.seed,
        max_rounds,
        collect_round_stats: cfg.collect_round_stats,
        validate_sends: cfg.validate_sends,
        faults: cfg.faults.clone(),
        profile: cfg.profile,
        metrics: cfg.collect_metrics,
    }
}
