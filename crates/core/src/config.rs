//! Configuration shared by the DiMa protocols.
//!
//! The defaults reproduce the paper exactly; the non-default variants are
//! the ablation knobs indexed in `DESIGN.md` (ABL1/ABL2) — every deviation
//! from the paper is explicit configuration, never silent behaviour.

use dima_sim::fault::FaultPlan;
use dima_sim::reliable::ArqConfig;

use crate::error::CoreError;

/// How an inviter picks the color it proposes (paper line 1.11 picks the
/// lowest color legal for both endpoints).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ColorPolicy {
    /// The paper's rule: the lowest-indexed color used by neither
    /// endpoint (as known from one-hop exchange).
    #[default]
    LowestIndex,
    /// Ablation: a uniformly random legal color from the worst-case
    /// palette `0..2Δ−1`. Degrades quality; used by ABL2 to show the
    /// lowest-index rule is what keeps colors near Δ.
    RandomLegal,
}

/// How a listener picks among stored invitations (paper line 1.21 picks
/// uniformly at random).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ResponsePolicy {
    /// The paper's rule: a uniformly random kept invitation.
    #[default]
    Random,
    /// Ablation: the invitation from the lowest-id sender
    /// (deterministic tie-break; slightly biases the matching).
    FirstSender,
    /// Ablation: the invitation proposing the lowest color.
    LowestColor,
}

/// Which engine executes the protocol.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// Deterministic single-threaded reference engine.
    #[default]
    Sequential,
    /// Sharded multi-threaded engine; produces bit-identical results.
    Parallel {
        /// Number of worker threads.
        threads: usize,
    },
}

/// How protocol messages travel between nodes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Transport {
    /// Messages go straight onto the (possibly faulty) links — the
    /// paper's model when the [`FaultPlan`] is reliable, and a
    /// model-violation experiment otherwise.
    #[default]
    Bare,
    /// Every link is wrapped in the reliable-delivery (ARQ) layer of
    /// [`dima_sim::reliable`]: lossy links look perfect to the protocol,
    /// at the cost of extra engine rounds (reported separately as
    /// transport overhead), and crash-stopped peers are detected so the
    /// protocol can terminate on the residual graph.
    Reliable(ArqConfig),
}

impl Transport {
    /// The [`Transport::Reliable`] variant with default ARQ tuning.
    pub fn reliable() -> Self {
        Transport::Reliable(ArqConfig::default())
    }
}

/// Post-pass palette compression, run after the main coloring quiesces
/// (and, under churn, after each batch repair commits).
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub enum ColorReduction {
    /// No reduction pass — the paper's behaviour.
    #[default]
    Off,
    /// Kempe-chain recoloring toward `Δ+1` colors (see [`crate::kempe`]).
    Kempe(KempeConfig),
}

impl ColorReduction {
    /// `true` when a reduction pass will run.
    pub fn is_on(&self) -> bool {
        !matches!(self, ColorReduction::Off)
    }
}

/// Tuning for the Kempe-chain palette-reduction pass.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct KempeConfig {
    /// Palette size to compress toward: edges colored at or above this
    /// many colors are recolored below it when a Kempe flip permits.
    /// `None` targets `Δ+1` (computed from the graph at entry).
    pub target_colors: Option<u32>,
    /// Longest alternating chain a probe may walk before the operation
    /// aborts; bounds per-operation latency on path-heavy graphs.
    pub max_chain: usize,
    /// Candidate `(a, b)` pair attempts per over-threshold edge per
    /// sweep before the edge concedes the round.
    pub max_attempts: u32,
    /// Engine round budget for the pass; `None` derives `16·Δ + 64`
    /// rounds per sweep from the graph.
    pub max_rounds: Option<u64>,
}

impl Default for KempeConfig {
    fn default() -> Self {
        KempeConfig { target_colors: None, max_chain: 256, max_attempts: 16, max_rounds: None }
    }
}

/// Configuration for [`crate::color_edges`], [`crate::maximal_matching`]
/// and [`crate::strong_color_digraph`].
#[derive(Clone, Debug, PartialEq)]
pub struct ColoringConfig {
    /// Master seed (all node RNGs derive from it deterministically).
    pub seed: u64,
    /// Probability of entering the `I` (invitor) state in the `C` state
    /// coin toss. The paper uses a fair coin (0.5); ABL1 sweeps this.
    pub invite_probability: f64,
    /// Inviter color selection (Algorithm 1 / 2 proposal rule).
    pub color_policy: ColorPolicy,
    /// Listener invitation selection.
    pub response_policy: ResponsePolicy,
    /// Execution engine.
    pub engine: Engine,
    /// **DiMa2ED only**: how many candidate channels an invitation
    /// carries (Procedure 2-a sends one, the default). A responder may
    /// accept any proposed channel that is legal for it and free of
    /// overheard collisions. Widths > 1 slash the retry rounds caused by
    /// colors held two hops away (which one-hop knowledge cannot see) —
    /// the ABL3 experiment shows width ≈ 4 recovers the paper's reported
    /// ≈ 4Δ round constant.
    pub proposal_width: usize,
    /// Safety bound on *computation* rounds (each is 3 communication
    /// rounds). `None` picks `64·Δ + 256`, far above the ~2Δ–4Δ typical
    /// terminations, so hitting it signals a bug or adversarial input.
    pub max_compute_rounds: Option<u64>,
    /// Collect per-round statistics.
    pub collect_round_stats: bool,
    /// Validate every `send` against the one-hop model (a binary search
    /// per delivery). A debugging assertion, not a correctness need: the
    /// protocols only address neighbors handed to them by the engine.
    /// Defaults to `true` so the library and its tests keep the check;
    /// measurement entry points ([`ColoringConfig::for_measurement`],
    /// the experiment binaries, the CLI) turn it off and say so in their
    /// run reports.
    pub validate_sends: bool,
    /// Message-loss injection (model-violation experiments only).
    pub faults: FaultPlan,
    /// Link transport: bare (the default) or the reliable ARQ layer.
    pub transport: Transport,
    /// Palette compression after quiescence (and after each churn-batch
    /// repair). Off by default — the paper has no reduction phase.
    pub reduction: ColorReduction,
    /// Measure wall-clock time per engine stage into
    /// [`dima_sim::RunStats::phase_nanos`]. Off by default so run
    /// statistics stay bit-comparable across engines and runs.
    pub profile: bool,
    /// Collect the aggregate metrics registry
    /// ([`dima_sim::RunStats::metrics`]): engine, ARQ and Kempe
    /// counters/gauges/histograms. Deterministic — unlike `profile`,
    /// enabling this keeps run statistics bit-comparable across
    /// engines. Off by default (zero-cost when disabled).
    pub collect_metrics: bool,
}

impl Default for ColoringConfig {
    fn default() -> Self {
        ColoringConfig {
            seed: 0,
            invite_probability: 0.5,
            color_policy: ColorPolicy::default(),
            response_policy: ResponsePolicy::default(),
            engine: Engine::default(),
            proposal_width: 1,
            max_compute_rounds: None,
            collect_round_stats: false,
            validate_sends: true,
            faults: FaultPlan::reliable(),
            transport: Transport::default(),
            reduction: ColorReduction::Off,
            profile: false,
            collect_metrics: false,
        }
    }
}

impl ColoringConfig {
    /// The paper's configuration with the given seed.
    pub fn seeded(seed: u64) -> Self {
        ColoringConfig { seed, ..Default::default() }
    }

    /// [`ColoringConfig::seeded`] with per-delivery send validation off —
    /// the configuration experiments and CLI runs start from, so release
    /// measurements don't pay for a debugging assertion. Results are
    /// bit-identical either way; only wall-clock differs.
    pub fn for_measurement(seed: u64) -> Self {
        ColoringConfig { validate_sends: false, ..ColoringConfig::seeded(seed) }
    }

    /// Validate ranges; returns a [`CoreError::Config`] on nonsense.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&self.invite_probability) || !self.invite_probability.is_finite() {
            return Err(CoreError::Config(format!(
                "invite_probability = {} not in [0, 1]",
                self.invite_probability
            )));
        }
        if self.invite_probability == 0.0 || self.invite_probability == 1.0 {
            return Err(CoreError::Config(
                "invite_probability of 0 or 1 can never form a pair \
                 (needs both invitors and listeners)"
                    .into(),
            ));
        }
        if let Engine::Parallel { threads } = self.engine {
            if threads == 0 {
                return Err(CoreError::Config("parallel engine needs >= 1 thread".into()));
            }
        }
        if self.proposal_width == 0 {
            return Err(CoreError::Config("proposal_width must be >= 1".into()));
        }
        if let Transport::Reliable(arq) = self.transport {
            if arq.round_budget_factor == 0 {
                return Err(CoreError::Config("ARQ round_budget_factor must be >= 1".into()));
            }
        }
        if let ColorReduction::Kempe(k) = self.reduction {
            if k.max_chain == 0 {
                return Err(CoreError::Config("kempe max_chain must be >= 1".into()));
            }
            if k.max_attempts == 0 {
                return Err(CoreError::Config("kempe max_attempts must be >= 1".into()));
            }
            if k.target_colors == Some(0) {
                return Err(CoreError::Config("kempe target_colors must be >= 1".into()));
            }
        }
        Ok(())
    }

    /// The computation-round budget for a graph of maximum degree `delta`.
    pub fn compute_round_budget(&self, delta: usize) -> u64 {
        self.max_compute_rounds.unwrap_or(64 * delta as u64 + 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = ColoringConfig::default();
        assert_eq!(cfg.invite_probability, 0.5);
        assert_eq!(cfg.color_policy, ColorPolicy::LowestIndex);
        assert_eq!(cfg.response_policy, ResponsePolicy::Random);
        assert_eq!(cfg.engine, Engine::Sequential);
        assert_eq!(cfg.proposal_width, 1);
        assert!(cfg.validate_sends, "library default keeps the debugging check on");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn measurement_config_disables_send_validation() {
        let cfg = ColoringConfig::for_measurement(7);
        assert_eq!(cfg.seed, 7);
        assert!(!cfg.validate_sends);
        // Everything else matches the paper configuration.
        assert_eq!(ColoringConfig { validate_sends: true, ..cfg }, ColoringConfig::seeded(7));
    }

    #[test]
    fn budget_scales_with_delta() {
        let cfg = ColoringConfig::default();
        assert_eq!(cfg.compute_round_budget(10), 896);
        let cfg = ColoringConfig { max_compute_rounds: Some(50), ..Default::default() };
        assert_eq!(cfg.compute_round_budget(10), 50);
    }

    #[test]
    fn invalid_probabilities_rejected() {
        for p in [-0.1, 1.5, f64::NAN, 0.0, 1.0] {
            let cfg = ColoringConfig { invite_probability: p, ..Default::default() };
            assert!(cfg.validate().is_err(), "p = {p}");
        }
        let cfg = ColoringConfig { invite_probability: 0.3, ..Default::default() };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_proposal_width_rejected() {
        let cfg = ColoringConfig { proposal_width: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn transport_defaults_to_bare() {
        assert_eq!(ColoringConfig::default().transport, Transport::Bare);
        let cfg = ColoringConfig { transport: Transport::reliable(), ..Default::default() };
        assert!(cfg.validate().is_ok());
        let bad = ArqConfig { round_budget_factor: 0, ..ArqConfig::default() };
        let cfg = ColoringConfig { transport: Transport::Reliable(bad), ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn reduction_defaults_off_and_validates() {
        let cfg = ColoringConfig::default();
        assert_eq!(cfg.reduction, ColorReduction::Off);
        assert!(!cfg.reduction.is_on());
        let cfg = ColoringConfig {
            reduction: ColorReduction::Kempe(KempeConfig::default()),
            ..Default::default()
        };
        assert!(cfg.reduction.is_on());
        assert!(cfg.validate().is_ok());
        for bad in [
            KempeConfig { max_chain: 0, ..Default::default() },
            KempeConfig { max_attempts: 0, ..Default::default() },
            KempeConfig { target_colors: Some(0), ..Default::default() },
        ] {
            let cfg =
                ColoringConfig { reduction: ColorReduction::Kempe(bad), ..Default::default() };
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn zero_threads_rejected() {
        let cfg = ColoringConfig { engine: Engine::Parallel { threads: 0 }, ..Default::default() };
        assert!(cfg.validate().is_err());
    }
}
