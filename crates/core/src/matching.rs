//! The matching-discovery protocol — the substrate framework of the
//! paper's prior work (reference \[3\], Daigle & Prasad 2011) that both coloring
//! algorithms extend.
//!
//! Every computation round, the automata pairs up a set of nodes such
//! that the chosen edges form a matching. Iterating until every node is
//! matched or has no unmatched neighbor yields a **maximal matching**
//! (termination implies no edge joins two unmatched nodes).
//!
//! The paper's Proposition 1 argues each node pairs with probability
//! ≥ ~1/4 per round; `dima-experiments`'s PROP1 binary measures this rate
//! empirically from [`MatchingResult::pair_round`].

use dima_graph::{Graph, VertexId};
use dima_sim::telemetry::{NoopTracer, PaletteAction, Tracer};
use dima_sim::{NodeSeed, NodeStatus, Protocol, RoundCtx, RunStats, Topology};

use crate::automata::{choose_role, pick_uniform, Phase, Role};
use crate::config::{ColoringConfig, ResponsePolicy};
use crate::error::CoreError;
use crate::runner::run_protocol_traced;

/// Messages of the matching protocol. All are broadcast, as in the paper;
/// the `to` field addresses the intended recipient and everyone else
/// ignores the message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchMsg {
    /// `I` state: sender proposes to match with `to`.
    Invite {
        /// Intended recipient.
        to: VertexId,
    },
    /// `R` state: sender accepts `to`'s invitation.
    Accept {
        /// The invitor being accepted.
        to: VertexId,
    },
    /// `E`-like announce: the sender is now matched and leaves the pool.
    Matched,
}

/// Per-vertex automata state for matching discovery.
#[derive(Debug)]
pub struct MatchingNode {
    me: VertexId,
    /// Sorted neighbor ids.
    neighbors: Vec<VertexId>,
    /// Parallel to `neighbors`: still unmatched (as announced).
    available: Vec<bool>,
    /// Matched partner, once paired.
    matched_with: Option<VertexId>,
    /// Computation round (0-based) in which the pair formed.
    matched_round: Option<u64>,
    /// Role taken this computation round.
    role: Role,
    /// Neighbor invited this computation round (invitors only).
    invited: Option<VertexId>,
    invite_probability: f64,
    response_policy: ResponsePolicy,
    /// Automata state after the last round (for state censuses).
    state: &'static str,
}

impl MatchingNode {
    fn new(seed: &NodeSeed<'_>, cfg: &ColoringConfig) -> Self {
        MatchingNode {
            me: seed.node,
            neighbors: seed.neighbors.to_vec(),
            available: vec![true; seed.neighbors.len()],
            matched_with: None,
            matched_round: None,
            role: Role::Listener,
            invited: None,
            invite_probability: cfg.invite_probability,
            response_policy: cfg.response_policy,
            state: "C",
        }
    }

    fn port_of(&self, v: VertexId) -> Option<usize> {
        self.neighbors.binary_search(&v).ok()
    }

    /// Neighbors still believed unmatched.
    fn available_neighbors(&self) -> Vec<VertexId> {
        self.neighbors.iter().zip(&self.available).filter(|&(_, &a)| a).map(|(&v, _)| v).collect()
    }
}

impl Protocol for MatchingNode {
    type Msg = MatchMsg;

    fn kind_of(msg: &MatchMsg) -> &'static str {
        match msg {
            MatchMsg::Invite { .. } => "invite",
            MatchMsg::Accept { .. } => "accept",
            MatchMsg::Matched => "matched",
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, MatchMsg>) -> NodeStatus {
        match Phase::of_round(ctx.round()) {
            Phase::InviteStep => {
                // Ingest `Matched` announcements from the previous
                // exchange step.
                for env in ctx.inbox() {
                    if matches!(*env.msg(), MatchMsg::Matched) {
                        if let Some(p) = self.port_of(env.from) {
                            self.available[p] = false;
                        }
                    }
                }
                debug_assert!(self.matched_with.is_none(), "matched nodes have left");
                let candidates = self.available_neighbors();
                if candidates.is_empty() {
                    // Every neighbor is matched: this node can never pair
                    // again — it leaves unmatched (maximality preserved).
                    self.state = "D";
                    ctx.trace_state("D", "isolated");
                    return NodeStatus::Done;
                }
                self.invited = None;
                self.role = choose_role(ctx.rng(), self.invite_probability);
                self.state = if self.role == Role::Invitor { "I" } else { "L" };
                ctx.trace_state(self.state, "coin");
                if self.role == Role::Invitor {
                    let &target =
                        pick_uniform(ctx.rng(), &candidates).expect("candidates nonempty");
                    self.invited = Some(target);
                    ctx.trace_palette(PaletteAction::Proposed, 0, target);
                    ctx.broadcast(MatchMsg::Invite { to: target });
                }
                NodeStatus::Active
            }
            Phase::RespondStep => {
                if self.role == Role::Listener {
                    let me = self.me;
                    let kept: Vec<VertexId> = ctx
                        .inbox()
                        .iter()
                        .filter_map(|env| match *env.msg() {
                            MatchMsg::Invite { to } if to == me => Some(env.from),
                            _ => None,
                        })
                        .collect();
                    let chosen = match self.response_policy {
                        ResponsePolicy::Random => pick_uniform(ctx.rng(), &kept).copied(),
                        // Inbox is sorted by sender id.
                        ResponsePolicy::FirstSender | ResponsePolicy::LowestColor => {
                            kept.first().copied()
                        }
                    };
                    if let Some(partner) = chosen {
                        ctx.broadcast(MatchMsg::Accept { to: partner });
                        self.matched_with = Some(partner);
                        self.matched_round = Some(ctx.round() / 3);
                        ctx.trace_palette(PaletteAction::Committed, 0, partner);
                    }
                }
                self.state = if self.role == Role::Invitor { "W" } else { "R" };
                ctx.trace_state(self.state, "await");
                NodeStatus::Active
            }
            Phase::ExchangeStep => {
                if self.role == Role::Invitor && self.matched_with.is_none() {
                    let me = self.me;
                    let accepted = ctx.inbox().iter().any(|env| {
                        matches!(*env.msg(), MatchMsg::Accept { to } if to == me)
                            && Some(env.from) == self.invited
                    });
                    if accepted {
                        self.matched_with = self.invited;
                        self.matched_round = Some(ctx.round() / 3);
                        if let Some(partner) = self.matched_with {
                            ctx.trace_palette(PaletteAction::Committed, 0, partner);
                        }
                    }
                }
                if self.matched_with.is_some() {
                    ctx.broadcast(MatchMsg::Matched);
                    self.state = "D";
                    ctx.trace_state("D", "paired");
                    return NodeStatus::Done;
                }
                self.state = "U";
                ctx.trace_state("U", "unpaired");
                NodeStatus::Active
            }
        }
    }

    fn on_link_down(&mut self, neighbor: VertexId) {
        // The neighbor can never complete a handshake: treat it like a
        // matched (unavailable) neighbor so this node can still conclude
        // it is isolated among unmatched peers and terminate.
        if let Some(p) = self.port_of(neighbor) {
            self.available[p] = false;
        }
    }
}

/// Construct a matching node directly, for custom runs through the
/// simulator APIs (e.g. state censuses via
/// [`dima_sim::run_sequential_observed`]); normal use goes through
/// [`maximal_matching`].
pub fn new_node_for_census(seed: &NodeSeed<'_>, cfg: &ColoringConfig) -> MatchingNode {
    MatchingNode::new(seed, cfg)
}

impl dima_sim::trace::StateLabel for MatchingNode {
    fn state_label(&self) -> &'static str {
        self.state
    }
}

/// The outcome of a maximal-matching run.
#[derive(Clone, Debug)]
pub struct MatchingResult {
    /// Matched pairs `(u, v)` with `u < v`.
    pub pairs: Vec<(VertexId, VertexId)>,
    /// Computation round in which each pair formed (parallel to
    /// [`MatchingResult::pairs`]).
    pub pair_round: Vec<u64>,
    /// Computation rounds until global termination.
    pub compute_rounds: u64,
    /// Communication rounds (3 per computation round).
    pub comm_rounds: u64,
    /// Simulator statistics.
    pub stats: RunStats,
    /// `true` iff both endpoints of every pair agree on the pairing
    /// (always true under reliable delivery; with crash faults, checked
    /// between surviving endpoints only).
    pub agreement: bool,
    /// `alive[v]` iff node `v` was not crash-stopped by the fault plan.
    pub alive: Vec<bool>,
    /// Engine rounds spent by the reliable transport on retransmission
    /// and synchronization, on top of [`MatchingResult::comm_rounds`]
    /// (0 under [`crate::Transport::Bare`]). The raw engine round count
    /// is `comm_rounds + transport_overhead_rounds` (= `stats.rounds`).
    pub transport_overhead_rounds: u64,
}

impl MatchingResult {
    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` if the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Run the matching-discovery automata on `g` until every node is matched
/// or isolated among unmatched nodes, returning a **maximal matching**.
pub fn maximal_matching(g: &Graph, cfg: &ColoringConfig) -> Result<MatchingResult, CoreError> {
    maximal_matching_traced(g, cfg, &mut NoopTracer)
}

/// [`maximal_matching`] feeding structured telemetry events to `tracer`
/// (see [`dima_sim::telemetry`]). With [`NoopTracer`] this *is*
/// [`maximal_matching`]: the tracing branches compile away.
pub fn maximal_matching_traced<T: Tracer + Sync>(
    g: &Graph,
    cfg: &ColoringConfig,
    tracer: &mut T,
) -> Result<MatchingResult, CoreError> {
    cfg.validate()?;
    let topo = Topology::from_graph(g);
    let max_rounds = 3 * cfg.compute_round_budget(g.max_degree());
    let factory = |seed: NodeSeed<'_>| MatchingNode::new(&seed, cfg);
    let run = run_protocol_traced(&topo, cfg, max_rounds, factory, tracer)?;
    let alive = run.alive();

    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    let mut pair_round = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut agreement = true;
    for (node, &a) in run.nodes.iter().zip(&alive) {
        if let Some(partner) = node.matched_with {
            // Endpoint agreement is only meaningful between survivors: a
            // crashed partner may have stopped before echoing back.
            if a && alive[partner.index()] {
                agreement &= run.nodes[partner.index()].matched_with == Some(node.me);
            }
            // Record the pair from either endpoint's view (a crashed
            // invitor may never have learned its invitation was accepted,
            // but the accepting survivor has still left the pool).
            let key = if node.me < partner { (node.me, partner) } else { (partner, node.me) };
            if seen.insert(key) {
                pairs.push(key);
                pair_round.push(node.matched_round.unwrap_or(0));
            }
        }
    }
    let comm_rounds = run.stats.rounds - run.transport_overhead_rounds;
    Ok(MatchingResult {
        pairs,
        pair_round,
        compute_rounds: Phase::compute_rounds(comm_rounds),
        comm_rounds,
        stats: run.stats,
        agreement,
        alive,
        transport_overhead_rounds: run.transport_overhead_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Engine, Transport};
    use crate::verify::verify_matching;
    use dima_graph::gen::structured;
    use dima_graph::gen::{erdos_renyi_avg_degree, watts_strogatz};
    use dima_sim::fault::FaultPlan;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_maximal(g: &Graph, m: &MatchingResult) {
        assert!(m.agreement);
        verify_matching(g, &m.pairs).unwrap();
        // Maximality: no edge joins two unmatched vertices.
        let mut matched = vec![false; g.num_vertices()];
        for &(u, v) in &m.pairs {
            matched[u.index()] = true;
            matched[v.index()] = true;
        }
        for (_, (u, v)) in g.edges() {
            assert!(
                matched[u.index()] || matched[v.index()],
                "edge ({u},{v}) joins two unmatched vertices"
            );
        }
    }

    #[test]
    fn single_edge_matches() {
        let g = structured::path(2);
        let m = maximal_matching(&g, &ColoringConfig::seeded(1)).unwrap();
        assert_eq!(m.pairs, vec![(VertexId(0), VertexId(1))]);
        assert_eq!(m.pair_round, vec![0]);
        check_maximal(&g, &m);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::empty(5);
        let m = maximal_matching(&g, &ColoringConfig::seeded(1)).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.compute_rounds, 1); // one round to notice isolation
        let g = Graph::empty(0);
        let m = maximal_matching(&g, &ColoringConfig::seeded(1)).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.comm_rounds, 0);
    }

    #[test]
    fn maximal_on_structured_families() {
        for (name, g) in [
            ("complete", structured::complete(9)),
            ("cycle", structured::cycle(11)),
            ("star", structured::star(8)),
            ("grid", structured::grid(5, 6)),
            ("petersen", structured::petersen()),
            ("tree", structured::balanced_binary_tree(4)),
        ] {
            let m = maximal_matching(&g, &ColoringConfig::seeded(7)).unwrap();
            check_maximal(&g, &m);
            assert!(!m.is_empty(), "{name}");
        }
    }

    #[test]
    fn maximal_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(3);
        for seed in 0..5 {
            let g = erdos_renyi_avg_degree(100, 6.0, &mut rng).unwrap();
            let m = maximal_matching(&g, &ColoringConfig::seeded(seed)).unwrap();
            check_maximal(&g, &m);
        }
        let g = watts_strogatz(64, 6, 0.2, &mut rng).unwrap();
        let m = maximal_matching(&g, &ColoringConfig::seeded(9)).unwrap();
        check_maximal(&g, &m);
    }

    #[test]
    fn star_matches_exactly_one_pair() {
        let g = structured::star(10);
        let m = maximal_matching(&g, &ColoringConfig::seeded(5)).unwrap();
        assert_eq!(m.len(), 1);
        let (u, _) = m.pairs[0];
        assert_eq!(u, VertexId(0)); // hub is in every edge
    }

    #[test]
    fn parallel_engine_matches_sequential() {
        let g = structured::grid(7, 7);
        let seq = maximal_matching(&g, &ColoringConfig::seeded(13)).unwrap();
        let par = maximal_matching(
            &g,
            &ColoringConfig {
                engine: Engine::Parallel { threads: 4 },
                ..ColoringConfig::seeded(13)
            },
        )
        .unwrap();
        assert_eq!(seq.pairs, par.pairs);
        assert_eq!(seq.pair_round, par.pair_round);
        assert_eq!(seq.comm_rounds, par.comm_rounds);
        assert_eq!(seq.stats.messages_sent, par.stats.messages_sent);
    }

    #[test]
    fn pair_rounds_are_within_run() {
        let g = structured::complete(12);
        let m = maximal_matching(&g, &ColoringConfig::seeded(2)).unwrap();
        for &r in &m.pair_round {
            assert!(r < m.compute_rounds);
        }
    }

    #[test]
    fn rounds_stay_modest_on_complete_graph() {
        // K16: Δ = 15; expect far fewer than the 64Δ+256 budget.
        let g = structured::complete(16);
        let m = maximal_matching(&g, &ColoringConfig::seeded(4)).unwrap();
        assert!(m.compute_rounds < 200, "took {} rounds", m.compute_rounds);
    }

    #[test]
    fn reliable_transport_is_transparent_without_faults() {
        let g = structured::grid(5, 5);
        let bare = maximal_matching(&g, &ColoringConfig::seeded(21)).unwrap();
        let arq = maximal_matching(
            &g,
            &ColoringConfig { transport: Transport::reliable(), ..ColoringConfig::seeded(21) },
        )
        .unwrap();
        // Same RNG streams, same inboxes: the identical matching, in the
        // same number of protocol rounds.
        assert_eq!(bare.pairs, arq.pairs);
        assert_eq!(bare.pair_round, arq.pair_round);
        assert_eq!(bare.comm_rounds, arq.comm_rounds);
        assert!(arq.transport_overhead_rounds <= 3, "{}", arq.transport_overhead_rounds);
        check_maximal(&g, &arq);
    }

    #[test]
    fn reliable_transport_survives_loss() {
        let g = structured::complete(10);
        let bare = maximal_matching(&g, &ColoringConfig::seeded(29)).unwrap();
        let cfg = ColoringConfig {
            faults: FaultPlan::uniform(0.2),
            transport: Transport::reliable(),
            ..ColoringConfig::seeded(29)
        };
        let m = maximal_matching(&g, &cfg).unwrap();
        assert!(m.stats.dropped > 0, "the plan should actually drop messages");
        assert_eq!(m.pairs, bare.pairs);
        assert!(m.transport_overhead_rounds > 0);
        check_maximal(&g, &m);
    }

    #[test]
    fn crashes_leave_residual_maximal_matching() {
        let g = structured::complete(14);
        let cfg = ColoringConfig {
            faults: FaultPlan { crash_spread: 1, ..FaultPlan::crashing(0.3, 0) },
            transport: Transport::reliable(),
            ..ColoringConfig::seeded(33)
        };
        let m = maximal_matching(&g, &cfg).unwrap();
        assert!(m.alive.iter().any(|&a| !a), "the plan should crash someone");
        assert!(m.agreement);
        crate::verify::verify_residual_matching(&g, &m.pairs, &m.alive).unwrap();
    }

    #[test]
    fn invalid_config_rejected() {
        let g = structured::path(3);
        let cfg = ColoringConfig { invite_probability: 0.0, ..Default::default() };
        assert!(matches!(maximal_matching(&g, &cfg), Err(CoreError::Config(_))));
    }
}
