//! # dima-core — matching-discovery automata and two edge-coloring
//! algorithms
//!
//! This crate is the primary contribution of the reproduced paper:
//!
//! > J. P. Daigle and S. K. Prasad, *“Two Edge Coloring Algorithms Using a
//! > Simple Matching Discovery Automata”*, IPDPS Workshops 2012.
//!
//! All three protocols are instances of one per-vertex automata
//! ([`automata`]) running on the synchronous message-passing simulator of
//! [`dima_sim`]:
//!
//! * [`matching`] — the underlying matching-discovery protocol from the
//!   authors' 2011 framework paper: every computation round produces a
//!   matching; iterated to maximality.
//! * [`edge_coloring`] — **Algorithm 1 (DiMaEC)**: edge coloring of an
//!   undirected graph with at most `2Δ−1` colors in `O(Δ)` expected
//!   computation rounds, one-hop information only.
//! * [`strong_coloring`] — **Algorithm 2 (DiMa2ED)**: strong (distance-2)
//!   edge coloring of a symmetric digraph, the model for channel /
//!   time-slot assignment in ad-hoc radio networks.
//!
//! [`verify`] checks every output independently (direct neighborhood
//! scans, cross-checked in the test suite against the conflict-graph
//! constructions of [`dima_graph::conflict`]).
//!
//! ## Quickstart
//!
//! ```
//! use dima_core::{color_edges, ColoringConfig};
//! use dima_graph::gen::structured;
//!
//! let g = structured::petersen();
//! let result = color_edges(&g, &ColoringConfig::seeded(42)).unwrap();
//! assert!(dima_core::verify::verify_edge_coloring(&g, &result.colors).is_ok());
//! // Never more than 2Δ−1 colors (Proposition 3).
//! assert!(result.colors_used <= 2 * g.max_degree() - 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod automata;
pub mod churn;
pub mod config;
pub mod edge_coloring;
pub mod error;
pub mod kempe;
pub mod matching;
pub mod palette;
mod runner;
pub mod schedule;
pub mod service;
pub mod strong_coloring;
pub mod strong_undirected;
pub mod verify;
pub mod vertex_cover;
pub mod wire;

pub use churn::{
    BatchReport, ChurnColoringResult, ChurnKinds, ChurnPlan, ChurnSchedule, ChurnStrongResult,
};
pub use config::{
    ColorPolicy, ColorReduction, ColoringConfig, Engine, KempeConfig, ResponsePolicy, Transport,
};
pub use edge_coloring::{
    color_edges, color_edges_churn, color_edges_churn_traced, color_edges_traced,
    color_edges_with_census, EdgeColoringResult,
};
pub use error::CoreError;
pub use kempe::{reduce_palette, reduce_palette_traced, KempeReport};
pub use matching::{maximal_matching, maximal_matching_traced, MatchingResult};
pub use palette::{Color, ColorSet};
pub use service::{
    checkpoint_crc, hash_coloring, ChainFallback, ColoredEdge, ColoringService, CompactReport,
    HistoryEntry, RestoreReport, ServeBatchReport, ServeProtocol, ServiceConfig, ServiceError,
    ServiceStatus, Tick,
};
pub use strong_coloring::{
    strong_color_churn, strong_color_churn_traced, strong_color_digraph,
    strong_color_digraph_traced, StrongColoringResult,
};
pub use strong_undirected::{
    strong_color_graph, strong_color_graph_traced, StrongUndirectedResult,
};
pub use vertex_cover::{vertex_cover, vertex_cover_traced, VertexCoverResult};
