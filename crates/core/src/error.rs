//! Errors for the DiMa algorithms.

use std::fmt;

use dima_graph::GraphError;
use dima_sim::SimError;

/// Errors surfaced by the algorithm runners.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The simulator reported an error (typically the round budget —
    /// the algorithms are probabilistic, so termination is enforced with
    /// a generous bound rather than assumed).
    Sim(SimError),
    /// The input graph was invalid for the algorithm (e.g. DiMa2ED on a
    /// non-symmetric digraph).
    Graph(GraphError),
    /// An invalid configuration value.
    Config(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            CoreError::Config(_) => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dima_graph::VertexId;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::from(SimError::MaxRoundsExceeded { max_rounds: 5, still_active: 1 });
        assert!(e.to_string().contains("simulation error"));
        assert!(e.source().is_some());
        let e = CoreError::from(GraphError::SelfLoop(VertexId(0)));
        assert!(e.to_string().contains("graph error"));
        let e = CoreError::Config("p out of range".into());
        assert!(e.to_string().contains("configuration"));
        assert!(e.source().is_none());
    }
}
