//! **Algorithm 1 (DiMaEC)** — distributed matching-based edge coloring.
//!
//! A faithful implementation of the paper's Algorithm 1. Per computation
//! round (three communication rounds):
//!
//! * **invite** — each active node first ingests the `Used` exchanges
//!   broadcast at the end of the previous round (updating its per-neighbor
//!   used-color knowledge, the paper's `dead`/`used_v` lists), then tosses
//!   the `C`-state coin. An invitor picks a *random uncolored incident
//!   edge* `(u, v)` and proposes the *lowest* color used by neither `u`
//!   nor (to `u`'s knowledge) `v` (line 1.11), broadcasting the
//!   invitation.
//! * **respond** — a listener keeps the invitations addressed to it and
//!   accepts one *uniformly at random* (line 1.21), echoing it back and
//!   committing the color on its side.
//! * **exchange** — the invitor commits on receipt of the echo; both
//!   sides broadcast the newly used color (`E` state). A node whose every
//!   incident edge is colored broadcasts its final exchange and enters
//!   `D`.
//!
//! ## Why no re-validation is needed at accept time (Prop. 2)
//!
//! A listener accepts at most one invitation per computation round and
//! cannot simultaneously be an invitor, so its used set grows by at most
//! the accepted color per round; the invitor's knowledge of it — refreshed
//! by the previous exchange — is therefore *exact* at proposal time, and
//! the proposed color is legal for both sides at commit time. The fault
//! injection tests show this breaks down exactly when the reliable-
//! delivery assumption is violated.
//!
//! ## Incremental repair under churn
//!
//! [`color_edges_churn`] runs the same automata under a
//! [`dima_sim::churn::ChurnSchedule`]: when a batch mutates the topology,
//! each affected node remaps its per-port state to the new neighbor list
//! in `Protocol::on_topology_change`, prunes its palette to exactly the
//! colors on its *surviving* edges, and re-enters `C` if any port became
//! uncolored — while untouched nodes stay parked in `D`. Two additions
//! keep repairs sound where Proposition 2's exact-knowledge argument no
//! longer applies (a brand-new link starts with no knowledge of the
//! peer):
//!
//! * a node greets each new neighbor with a [`EcMsg::Hello`] carrying its
//!   used colors, priming the peer's `used_v` knowledge, and
//! * a responder re-validates invitations against its own used set — a
//!   statically vacuous check that rejects proposals made before the
//!   hello landed.

use dima_graph::{Graph, VertexId};
use dima_sim::churn::{ChurnSchedule, NeighborhoodChange};
use dima_sim::telemetry::{NoopTracer, PaletteAction, StateTimeline, Tracer};
use dima_sim::{EngineConfig, NodeSeed, NodeStatus, Protocol, RoundCtx, RunStats, Topology};
use rand::rngs::SmallRng;

use crate::automata::{choose_role, pick_uniform, pick_uniform_iter, Phase, Role};
use crate::churn::{batch_reports, ChurnColoringResult};
use crate::config::{ColorPolicy, ColoringConfig, ResponsePolicy, Transport};
use crate::error::CoreError;
use crate::kempe::{reduce_palette_metered, KempeReport};
use crate::palette::{Color, ColorSet};
use crate::runner::{run_protocol_churn_traced, run_protocol_traced};

/// Messages of Algorithm 1. All broadcast, per the paper; the `to` field
/// addresses the intended recipient.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EcMsg {
    /// `I_u^v, c`: the sender proposes to color edge `(sender, to)` with
    /// `color`.
    Invite {
        /// Intended recipient (the other endpoint).
        to: VertexId,
        /// Proposed color.
        color: Color,
    },
    /// `R_u^v, c`: the sender accepts `to`'s invitation (ids reversed,
    /// same color — "a duplicate of the invitation with the ids
    /// reversed").
    Accept {
        /// The invitor being accepted.
        to: VertexId,
        /// The agreed color.
        color: Color,
    },
    /// `E` state: the sender has newly used `color` on one of its edges.
    Used {
        /// The newly used color.
        color: Color,
    },
    /// Churn repair: the sender greets a brand-new neighbor with its full
    /// used-color set, priming the `used_v` knowledge that static runs
    /// accumulate through the `Used` exchange. Never sent without churn.
    Hello {
        /// Every color the sender has committed so far, ascending.
        used: Vec<Color>,
    },
}

/// What the invitor proposed this computation round.
#[derive(Copy, Clone, Debug)]
struct Proposal {
    /// Port (index into `neighbors`) of the invited neighbor.
    port: usize,
    color: Color,
}

/// Per-vertex automata state for Algorithm 1.
#[derive(Debug)]
pub struct EdgeColoringNode {
    me: VertexId,
    /// Sorted neighbor ids.
    neighbors: Vec<VertexId>,
    /// Color committed toward each neighbor, if any.
    edge_color: Vec<Option<Color>>,
    /// Ports of still-uncolored edges.
    uncolored: Vec<usize>,
    /// Colors this node has used (`used_u`).
    used_self: ColorSet,
    /// Colors each neighbor is known to have used (`used_v` learned via
    /// the `E` exchange; the paper's `dead` bookkeeping).
    used_nbr: Vec<ColorSet>,
    /// Role this computation round.
    role: Role,
    proposal: Option<Proposal>,
    /// Color newly committed this computation round (for the exchange
    /// broadcast).
    newly_used: Option<Color>,
    invite_probability: f64,
    color_policy: ColorPolicy,
    response_policy: ResponsePolicy,
    /// `2Δ−1`, the worst-case palette (only the RandomLegal ablation
    /// samples from it; the default rule discovers its own bound).
    palette_bound: u32,
    /// Neighbors gained through churn that still owe a [`EcMsg::Hello`]
    /// greeting (flushed at the top of the next round this node runs).
    pending_hello: Vec<VertexId>,
    /// Colors released by churn's palette pruning, awaiting a telemetry
    /// [`PaletteAction::Released`] event ([`Protocol::on_topology_change`]
    /// has no tracing context, so they are flushed at the top of the next
    /// round this node runs; drained unconditionally so the buffer never
    /// grows when tracing is off).
    pending_released: Vec<(Color, VertexId)>,
    /// Automata state after the last round (for state censuses).
    state: &'static str,
}

impl EdgeColoringNode {
    pub(crate) fn new(seed: &NodeSeed<'_>, cfg: &ColoringConfig, palette_bound: u32) -> Self {
        let degree = seed.neighbors.len();
        EdgeColoringNode {
            me: seed.node,
            neighbors: seed.neighbors.to_vec(),
            edge_color: vec![None; degree],
            uncolored: (0..degree).collect(),
            // Presized to the 2Δ−1 bound: the hot paths never reallocate
            // (Vec::clone trims to len, so build each set individually).
            used_self: ColorSet::with_capacity(palette_bound as usize),
            used_nbr: (0..degree)
                .map(|_| ColorSet::with_capacity(palette_bound as usize))
                .collect(),
            role: Role::Listener,
            proposal: None,
            newly_used: None,
            invite_probability: cfg.invite_probability,
            color_policy: cfg.color_policy,
            response_policy: cfg.response_policy,
            palette_bound,
            pending_hello: Vec::new(),
            pending_released: Vec::new(),
            state: "C",
        }
    }

    fn port_of(&self, v: VertexId) -> Option<usize> {
        self.neighbors.binary_search(&v).ok()
    }

    /// The color this node has committed on its edge toward `v`, if any
    /// — the query side of the long-running service.
    pub(crate) fn color_toward(&self, v: VertexId) -> Option<Color> {
        self.port_of(v).and_then(|p| self.edge_color[p])
    }

    /// Every color committed on this node's surviving edges, ascending.
    pub(crate) fn palette(&self) -> Vec<Color> {
        let set: ColorSet = self.edge_color.iter().flatten().copied().collect();
        set.iter().collect()
    }

    /// Pick the color to propose for the edge toward `port`
    /// (line 1.11: lowest available; or the RandomLegal ablation).
    fn propose_color(&self, port: usize, rng: &mut SmallRng) -> Color {
        match self.color_policy {
            ColorPolicy::LowestIndex => self.used_self.first_absent_in_union(&self.used_nbr[port]),
            ColorPolicy::RandomLegal => {
                // A legal color within the worst-case palette always
                // exists: |used_self| + |used_nbr| <= 2Δ−2 < 2Δ−1.
                let legal = self
                    .used_self
                    .absent_below(self.palette_bound)
                    .filter(|&c| !self.used_nbr[port].contains(c));
                pick_uniform_iter(rng, legal)
                    .unwrap_or_else(|| self.used_self.first_absent_in_union(&self.used_nbr[port]))
            }
        }
    }

    /// Overwrite this node's committed colors and per-neighbor
    /// knowledge with the outcome of an out-of-band palette compaction
    /// (serve mode runs the Kempe pass between repairs — see
    /// [`crate::kempe`]). Only sound while the node is parked: at
    /// quiescence no proposal or exchange is in flight. `own` is
    /// port-aligned with the (sorted) neighbor list; `nbr_used` is each
    /// neighbor's full post-compaction palette, replacing the stale
    /// one-hop knowledge so future repair proposals stay exact.
    pub(crate) fn adopt_compaction(&mut self, own: &[Option<Color>], nbr_used: Vec<ColorSet>) {
        debug_assert_eq!(own.len(), self.neighbors.len());
        debug_assert_eq!(nbr_used.len(), self.neighbors.len());
        self.edge_color.copy_from_slice(own);
        self.uncolored =
            (0..self.neighbors.len()).filter(|&p| self.edge_color[p].is_none()).collect();
        let mut used = ColorSet::with_capacity(self.palette_bound as usize);
        for c in self.edge_color.iter().flatten() {
            used.insert(*c);
        }
        self.used_self = used;
        self.used_nbr = nbr_used;
    }

    /// Commit `color` on the edge toward `port`.
    fn commit(&mut self, port: usize, color: Color) {
        debug_assert!(self.edge_color[port].is_none(), "edge colored twice");
        self.edge_color[port] = Some(color);
        self.uncolored.retain(|&p| p != port);
        self.used_self.insert(color);
        self.newly_used = Some(color);
    }
}

impl Protocol for EdgeColoringNode {
    type Msg = EcMsg;

    fn kind_of(msg: &EcMsg) -> &'static str {
        match msg {
            EcMsg::Invite { .. } => "invite",
            EcMsg::Accept { .. } => "accept",
            EcMsg::Used { .. } => "used",
            EcMsg::Hello { .. } => "hello",
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, EcMsg>) -> NodeStatus {
        // Repair prelude. Under churn, `Used` exchanges (flushed by
        // parking nodes) and `Hello` greetings can land at *any* phase,
        // not just the invite step — ingest them before the phase logic.
        // Static runs only ever see `Used` here and only at the invite
        // step, so the paper's schedule is unchanged.
        for env in ctx.inbox() {
            let Some(p) = self.port_of(env.from) else { continue };
            match env.msg() {
                EcMsg::Used { color } => {
                    self.used_nbr[p].insert(*color);
                }
                EcMsg::Hello { used } => {
                    for &c in used {
                        self.used_nbr[p].insert(c);
                    }
                }
                _ => {}
            }
        }
        // Greet neighbors gained through churn (re-checking that they
        // were not lost again by a later batch before this node ran).
        for w in std::mem::take(&mut self.pending_hello) {
            if self.port_of(w).is_some() {
                ctx.send(w, EcMsg::Hello { used: self.used_self.iter().collect() });
            }
        }
        for (color, peer) in std::mem::take(&mut self.pending_released) {
            ctx.trace_palette(PaletteAction::Released, color.0, peer);
        }
        match Phase::of_round(ctx.round()) {
            Phase::InviteStep => {
                if self.uncolored.is_empty() {
                    // Reached by isolated vertices in round 0 and by nodes
                    // whose last uncolored ports were removed by churn: in
                    // the latter case a final commit may still await its
                    // exchange — flush it so neighbors learn the color.
                    if let Some(color) = self.newly_used.take() {
                        ctx.broadcast(EcMsg::Used { color });
                    }
                    self.state = "D";
                    ctx.trace_state("D", "all-colored");
                    return NodeStatus::Done;
                }
                self.proposal = None;
                self.newly_used = None;
                self.role = choose_role(ctx.rng(), self.invite_probability);
                self.state = if self.role == Role::Invitor { "I" } else { "L" };
                ctx.trace_state(self.state, "coin");
                if self.role == Role::Invitor {
                    // The uncolored list is non-empty here today, but
                    // degrade to listening rather than panic if a future
                    // edit breaks that invariant.
                    let Some(&port) = pick_uniform(ctx.rng(), &self.uncolored) else {
                        self.role = Role::Listener;
                        self.state = "L";
                        ctx.trace_state("L", "no-edge");
                        return NodeStatus::Active;
                    };
                    let color = self.propose_color(port, ctx.rng());
                    self.proposal = Some(Proposal { port, color });
                    ctx.trace_palette(PaletteAction::Proposed, color.0, self.neighbors[port]);
                    ctx.broadcast(EcMsg::Invite { to: self.neighbors[port], color });
                }
                NodeStatus::Active
            }
            Phase::RespondStep => {
                // Telemetry: every invitation addressed to me that does
                // not end in the commit below is a palette conflict (the
                // invitor retries next computation round). Collected only
                // when a live trace handle is attached.
                let mut offered: Vec<(VertexId, Color)> = Vec::new();
                if ctx.trace_on() {
                    let me = self.me;
                    offered = ctx
                        .inbox()
                        .iter()
                        .filter_map(|env| match *env.msg() {
                            EcMsg::Invite { to, color } if to == me => Some((env.from, color)),
                            _ => None,
                        })
                        .collect();
                }
                let mut accepted: Option<(VertexId, Color)> = None;
                if self.role == Role::Listener {
                    let me = self.me;
                    // Keep invitations addressed to me (L state). The
                    // port-uncolored guard is vacuous under reliable
                    // delivery (nobody invites over a colored edge) but
                    // keeps fault-injected desyncs from double-coloring.
                    // The used-self guard is likewise vacuous statically
                    // (Proposition 2) but rejects proposals made over a
                    // churn-fresh link before the hello landed.
                    let kept: Vec<(VertexId, usize, Color)> = ctx
                        .inbox()
                        .iter()
                        .filter_map(|env| match *env.msg() {
                            EcMsg::Invite { to, color } if to == me => {
                                let port = self.port_of(env.from)?;
                                (self.edge_color[port].is_none() && !self.used_self.contains(color))
                                    .then_some((env.from, port, color))
                            }
                            _ => None,
                        })
                        .collect();
                    let chosen = match self.response_policy {
                        ResponsePolicy::Random => pick_uniform(ctx.rng(), &kept).copied(),
                        ResponsePolicy::FirstSender => kept.first().copied(),
                        ResponsePolicy::LowestColor => {
                            kept.iter().copied().min_by_key(|&(_, _, c)| c)
                        }
                    };
                    if let Some((partner, port, color)) = chosen {
                        ctx.broadcast(EcMsg::Accept { to: partner, color });
                        self.commit(port, color);
                        ctx.trace_palette(PaletteAction::Committed, color.0, partner);
                        accepted = Some((partner, color));
                    }
                }
                for (from, color) in offered {
                    if accepted != Some((from, color)) {
                        ctx.trace_palette(PaletteAction::Conflicted, color.0, from);
                    }
                }
                self.state = if self.role == Role::Invitor { "W" } else { "R" };
                ctx.trace_state(self.state, "await");
                NodeStatus::Active
            }
            Phase::ExchangeStep => {
                // W state: the invitor looks for the echo of its own
                // invitation (reversed ids, same color).
                if self.role == Role::Invitor {
                    if let Some(Proposal { port, color }) = self.proposal {
                        let partner = self.neighbors[port];
                        let me = self.me;
                        let accepted = ctx.inbox().iter().any(|env| {
                            env.from == partner
                                && matches!(
                                    *env.msg(),
                                    EcMsg::Accept { to, color: c } if to == me && c == color
                                )
                        });
                        if accepted {
                            self.commit(port, color);
                            ctx.trace_palette(PaletteAction::Committed, color.0, partner);
                        }
                    }
                }
                // E state: broadcast the newly used color, if any.
                if let Some(color) = self.newly_used.take() {
                    ctx.broadcast(EcMsg::Used { color });
                }
                if self.uncolored.is_empty() {
                    self.state = "D";
                    ctx.trace_state("D", "all-colored");
                    NodeStatus::Done
                } else {
                    self.state = "E";
                    ctx.trace_state("E", "exchange");
                    NodeStatus::Active
                }
            }
        }
    }

    fn on_link_down(&mut self, neighbor: VertexId) {
        // The edge toward the dead neighbor can never complete a
        // handshake: write it off so the node can finish coloring the
        // rest of its residual edges and terminate.
        if let Some(p) = self.port_of(neighbor) {
            if self.edge_color[p].is_none() {
                self.uncolored.retain(|&q| q != p);
            }
        }
    }

    fn on_topology_change(
        &mut self,
        seed: NodeSeed<'_>,
        change: &NeighborhoodChange,
    ) -> NodeStatus {
        let was_parked = self.state == "D";
        let new_neighbors = seed.neighbors.to_vec();
        // Colors on removed edges leave the palette below ("pruning");
        // queue the telemetry release events now, while the old port map
        // still resolves the departed neighbors.
        for &w in &change.removed {
            if let Some(op) = self.port_of(w) {
                if let Some(c) = self.edge_color[op] {
                    self.pending_released.push((c, w));
                }
            }
        }
        // Remap per-port state onto the new neighbor list: surviving
        // ports keep their color and accumulated neighbor knowledge, new
        // ports start blank.
        let mut edge_color = vec![None; new_neighbors.len()];
        let mut used_nbr: Vec<ColorSet> = (0..new_neighbors.len())
            .map(|_| ColorSet::with_capacity(self.palette_bound as usize))
            .collect();
        for (np, &w) in new_neighbors.iter().enumerate() {
            if let Some(op) = self.port_of(w) {
                edge_color[np] = self.edge_color[op];
                used_nbr[np] = std::mem::take(&mut self.used_nbr[op]);
            }
        }
        // A pending proposal follows its neighbor to the new port index.
        // Dropping a still-valid one would desync a mid-handshake pair —
        // the listener may already have committed — so it dies only with
        // its edge.
        self.proposal = self.proposal.and_then(|p| {
            let w = self.neighbors[p.port];
            new_neighbors.binary_search(&w).ok().map(|np| Proposal { port: np, color: p.color })
        });
        self.neighbors = new_neighbors;
        self.edge_color = edge_color;
        self.used_nbr = used_nbr;
        self.uncolored =
            (0..self.neighbors.len()).filter(|&p| self.edge_color[p].is_none()).collect();
        // Palette pruning: recompute the used set from the surviving
        // edges only, releasing the colors of removed edges for reuse. A
        // commit pending its exchange sits in `edge_color` already, so it
        // is retained iff its edge survived.
        self.used_self = self.edge_color.iter().flatten().copied().collect();
        // Churn can raise the local degree past the original Δ; keep the
        // RandomLegal ablation's palette wide enough to stay legal.
        self.palette_bound =
            self.palette_bound.max((2 * self.neighbors.len()).saturating_sub(1).max(1) as u32);
        self.pending_hello.extend(change.added.iter().copied());
        if was_parked {
            // A re-entering node resumes from a clean C state.
            self.role = Role::Listener;
            self.proposal = None;
        }
        if !self.uncolored.is_empty() {
            self.state = "C";
            NodeStatus::Active
        } else if self.newly_used.is_some() || !self.pending_hello.is_empty() {
            // Nothing left to color, but a final commit still owes its
            // exchange (or a greeting is queued): stay up one more round
            // to flush it, then park via the invite-step early return.
            NodeStatus::Active
        } else {
            self.state = "D";
            NodeStatus::Done
        }
    }
}

impl dima_sim::trace::StateLabel for EdgeColoringNode {
    fn state_label(&self) -> &'static str {
        self.state
    }
}

/// The outcome of an edge-coloring run.
#[derive(Clone, Debug)]
pub struct EdgeColoringResult {
    /// Color per edge (indexed by [`EdgeId`]), as committed by the lower
    /// endpoint. `None` only if the run was corrupted by fault injection.
    pub colors: Vec<Option<Color>>,
    /// Number of distinct colors used.
    pub colors_used: usize,
    /// Largest color index used, if any edge was colored.
    pub max_color: Option<Color>,
    /// Computation rounds until the last node finished.
    pub compute_rounds: u64,
    /// Communication rounds (3 per computation round).
    pub comm_rounds: u64,
    /// Maximum degree Δ of the input (what the paper plots against).
    pub max_degree: usize,
    /// `true` iff both endpoints committed the same color on every edge
    /// (always true under reliable delivery — Proposition 2). With crash
    /// faults, checked between surviving endpoints only.
    pub endpoint_agreement: bool,
    /// Simulator statistics (messages, deliveries, per-round breakdown).
    pub stats: RunStats,
    /// `alive[v]` iff node `v` was not crash-stopped by the fault plan.
    /// Verify residual colorings (crashed runs) with
    /// [`crate::verify::verify_residual_edge_coloring`].
    pub alive: Vec<bool>,
    /// Engine rounds spent by the reliable transport on retransmission
    /// and synchronization, on top of
    /// [`EdgeColoringResult::comm_rounds`] (0 under
    /// [`crate::Transport::Bare`]).
    pub transport_overhead_rounds: u64,
    /// What the Kempe-chain reduction pass did, when
    /// [`crate::ColorReduction::Kempe`] was configured and the coloring
    /// had endpoint agreement ([`EdgeColoringResult::colors_used`] and
    /// [`EdgeColoringResult::max_color`] reflect the reduced palette).
    pub reduction: Option<KempeReport>,
    /// Total heap bytes the nodes' palette bitsets held at the end of
    /// the run (own used set + per-neighbor knowledge). Divide by the
    /// vertex count for the bytes/node figure the run reports print.
    pub palette_bytes: u64,
}

/// Run Algorithm 1 on `g` and additionally collect a per-communication-
/// round census of automata states (sequential engine only — censuses
/// are an observation tool, not a result).
///
/// Built on the telemetry plane: the run is traced into a
/// [`StateTimeline`] whose per-round snapshots are folded into the
/// rendered [`StateCensus`](dima_sim::trace::StateCensus) shape the
/// experiment binaries consume.
pub fn color_edges_with_census(
    g: &Graph,
    cfg: &ColoringConfig,
) -> Result<(EdgeColoringResult, dima_sim::trace::StateCensus), CoreError> {
    cfg.validate()?;
    if cfg.transport != Transport::Bare {
        return Err(CoreError::Config(
            "state censuses observe the bare transport only \
             (the ARQ wrapper has no automata states)"
                .into(),
        ));
    }
    let delta = g.max_degree();
    let topo = Topology::from_graph(g);
    let engine_cfg = EngineConfig {
        seed: cfg.seed,
        max_rounds: 3 * cfg.compute_round_budget(delta),
        collect_round_stats: cfg.collect_round_stats,
        validate_sends: cfg.validate_sends,
        faults: cfg.faults.clone(),
        profile: cfg.profile,
        metrics: cfg.collect_metrics,
    };
    let palette_bound = (2 * delta).saturating_sub(1).max(1) as u32;
    let mut timeline = StateTimeline::new(g.num_vertices());
    let outcome = dima_sim::run_sequential_traced(
        &topo,
        &engine_cfg,
        |seed: NodeSeed<'_>| EdgeColoringNode::new(&seed, cfg, palette_bound),
        &mut timeline,
    )?;
    let mut census = dima_sim::trace::StateCensus::new();
    for snap in timeline.rounds() {
        census.record(snap.labels());
    }
    let result = assemble_result(g, delta, &outcome.nodes, outcome.stats, outcome.crashed, 0);
    Ok((result, census))
}

/// Run Algorithm 1 on `g`.
///
/// Returns the coloring plus the round/message statistics the paper's
/// figures report. The coloring is *not* verified here — call
/// [`crate::verify::verify_edge_coloring`] (the experiment binaries and
/// tests always do).
pub fn color_edges(g: &Graph, cfg: &ColoringConfig) -> Result<EdgeColoringResult, CoreError> {
    color_edges_traced(g, cfg, &mut NoopTracer)
}

/// [`color_edges`] with the run's telemetry events fed to `tracer`
/// (state transitions, palette negotiation, per-kind message counters,
/// round footers — see [`dima_sim::telemetry`]). With [`NoopTracer`]
/// this *is* [`color_edges`]: every tracing branch folds away at
/// monomorphization.
pub fn color_edges_traced<T: Tracer + Sync>(
    g: &Graph,
    cfg: &ColoringConfig,
    tracer: &mut T,
) -> Result<EdgeColoringResult, CoreError> {
    cfg.validate()?;
    let delta = g.max_degree();
    let topo = Topology::from_graph(g);
    let max_rounds = 3 * cfg.compute_round_budget(delta);
    let palette_bound = (2 * delta).saturating_sub(1).max(1) as u32;
    let factory = |seed: NodeSeed<'_>| EdgeColoringNode::new(&seed, cfg, palette_bound);
    let run = run_protocol_traced(&topo, cfg, max_rounds, factory, tracer)?;
    let mut r = assemble_result(
        g,
        delta,
        &run.nodes,
        run.stats,
        run.crashed,
        run.transport_overhead_rounds,
    );
    apply_reduction(g, cfg, &mut r, tracer)?;
    Ok(r)
}

/// Run Algorithm 1 on `g0` under a churn schedule: the coloring is
/// repaired incrementally after each topology batch rather than restarted
/// (see the module docs). The result's coloring is assembled against the
/// schedule's **final** graph; verify it there.
///
/// Churn runs use the bare transport only — the ARQ layer binds sequence
/// numbers to a static neighbor set. Message-loss and crash faults
/// compose freely.
pub fn color_edges_churn(
    g0: &Graph,
    schedule: &ChurnSchedule,
    cfg: &ColoringConfig,
) -> Result<ChurnColoringResult, CoreError> {
    color_edges_churn_traced(g0, schedule, cfg, &mut NoopTracer)
}

/// [`color_edges_churn`] with telemetry fed to `tracer`. Beyond the
/// static-run events, churn runs emit [`Event::Churn`] headers per batch
/// and [`PaletteAction::Released`] for every color the repair pruned off
/// a removed edge.
///
/// [`Event::Churn`]: dima_sim::telemetry::Event::Churn
pub fn color_edges_churn_traced<T: Tracer + Sync>(
    g0: &Graph,
    schedule: &ChurnSchedule,
    cfg: &ColoringConfig,
    tracer: &mut T,
) -> Result<ChurnColoringResult, CoreError> {
    cfg.validate()?;
    let final_graph = schedule.final_graph().cloned().unwrap_or_else(|| g0.clone());
    // Δ may grow mid-run: budget rounds and the ablation palette against
    // the largest degree the schedule ever produces.
    let delta = g0.max_degree().max(schedule.max_degree());
    let topo = Topology::from_graph(g0);
    // Round budget: the last batch gets a full static budget after it
    // fires; earlier repairs run inside the inter-batch gaps.
    let budget = 3 * cfg.compute_round_budget(delta);
    let max_rounds = schedule.last_round().map_or(budget, |lr| lr + budget);
    let palette_bound = (2 * delta).saturating_sub(1).max(1) as u32;
    let factory = |seed: NodeSeed<'_>| EdgeColoringNode::new(&seed, cfg, palette_bound);
    let run = run_protocol_churn_traced(&topo, cfg, max_rounds, schedule, factory, tracer)?;
    let batches = batch_reports(schedule, &run.stats);
    let mut coloring = assemble_result(&final_graph, delta, &run.nodes, run.stats, run.crashed, 0);
    apply_reduction(&final_graph, cfg, &mut coloring, tracer)?;
    Ok(ChurnColoringResult { coloring, final_graph, batches })
}

/// Build the global result from per-node protocol states.
fn assemble_result(
    g: &Graph,
    delta: usize,
    nodes: &[EdgeColoringNode],
    stats: RunStats,
    crashed: Vec<bool>,
    transport_overhead_rounds: u64,
) -> EdgeColoringResult {
    // Assemble the global coloring from the endpoints' views. The
    // residual coloring of a crashed run reflects what the *survivors*
    // committed: a crashed endpoint's view is ignored (its partner may
    // never have learned of a commitment the crasher made on its way
    // down, so including it could fabricate conflicts).
    let mut colors: Vec<Option<Color>> = vec![None; g.num_edges()];
    let mut agreement = true;
    for (e, (u, v)) in g.edges() {
        let nu = &nodes[u.index()];
        let nv = &nodes[v.index()];
        let cu = nu.port_of(v).and_then(|p| nu.edge_color[p]);
        let cv = nv.port_of(u).and_then(|p| nv.edge_color[p]);
        colors[e.index()] = match (!crashed[u.index()], !crashed[v.index()]) {
            (true, true) => {
                agreement &= cu == cv;
                cu.or(cv)
            }
            (true, false) => cu,
            (false, true) => cv,
            (false, false) => None,
        };
    }

    let mut palette = ColorSet::new();
    for c in colors.iter().flatten() {
        palette.insert(*c);
    }
    let palette_bytes: u64 = nodes
        .iter()
        .map(|n| {
            (n.used_self.heap_bytes() + n.used_nbr.iter().map(ColorSet::heap_bytes).sum::<usize>())
                as u64
        })
        .sum();
    let comm_rounds = stats.rounds - transport_overhead_rounds;
    EdgeColoringResult {
        colors_used: palette.len(),
        max_color: palette.max(),
        colors,
        compute_rounds: Phase::compute_rounds(comm_rounds),
        comm_rounds,
        max_degree: delta,
        endpoint_agreement: agreement,
        stats,
        alive: crashed.iter().map(|&c| !c).collect(),
        transport_overhead_rounds,
        reduction: None,
        palette_bytes,
    }
}

/// Run the configured palette-reduction pass over an assembled result,
/// in place. Skipped without endpoint agreement — Kempe chains assume
/// both ends of every edge see the same color, and a corrupted run has
/// no well-defined palette to compress.
fn apply_reduction<T: Tracer + Sync>(
    g: &Graph,
    cfg: &ColoringConfig,
    r: &mut EdgeColoringResult,
    tracer: &mut T,
) -> Result<(), CoreError> {
    let crate::config::ColorReduction::Kempe(kcfg) = cfg.reduction else {
        return Ok(());
    };
    if !r.endpoint_agreement {
        return Ok(());
    }
    let (report, metrics) = reduce_palette_metered(g, &mut r.colors, &r.alive, &kcfg, cfg, tracer)?;
    r.colors_used = report.colors_after;
    r.max_color = report.max_color_after;
    r.reduction = Some(report);
    // Fold the pass's registry (kempe/ counters plus its own engine
    // rounds) into the run's: the reduction is part of the run's work,
    // and counter merge keeps the total deterministic.
    if let Some(m) = metrics {
        match &mut r.stats.metrics {
            Some(reg) => reg.merge(&m),
            None => r.stats.metrics = Some(m),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Engine;
    use crate::verify::verify_edge_coloring;
    use dima_graph::gen::{erdos_renyi_avg_degree, structured, watts_strogatz};
    use dima_sim::fault::FaultPlan;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_good_coloring(g: &Graph, r: &EdgeColoringResult) {
        assert!(r.endpoint_agreement);
        verify_edge_coloring(g, &r.colors).unwrap();
        let delta = g.max_degree();
        if delta > 0 {
            assert!(
                r.colors_used < 2 * delta,
                "{} colors > 2Δ−1 = {}",
                r.colors_used,
                2 * delta - 1
            );
        }
    }

    #[test]
    fn single_edge() {
        let g = structured::path(2);
        let r = color_edges(&g, &ColoringConfig::seeded(1)).unwrap();
        assert_eq!(r.colors, vec![Some(Color(0))]);
        assert_eq!(r.colors_used, 1);
        assert_good_coloring(&g, &r);
    }

    #[test]
    fn edgeless_graphs() {
        let g = Graph::empty(4);
        let r = color_edges(&g, &ColoringConfig::seeded(1)).unwrap();
        assert!(r.colors.is_empty());
        assert_eq!(r.colors_used, 0);
        assert_eq!(r.max_color, None);
        let g = Graph::empty(0);
        let r = color_edges(&g, &ColoringConfig::seeded(1)).unwrap();
        assert_eq!(r.comm_rounds, 0);
    }

    #[test]
    fn structured_families_color_correctly() {
        for (name, g) in [
            ("complete8", structured::complete(8)),
            ("cycle9", structured::cycle(9)),
            ("star12", structured::star(12)),
            ("grid", structured::grid(5, 5)),
            ("petersen", structured::petersen()),
            ("bipartite", structured::complete_bipartite(4, 6)),
            ("hypercube", structured::hypercube(4)),
            ("tree", structured::balanced_binary_tree(5)),
        ] {
            let r = color_edges(&g, &ColoringConfig::seeded(11)).unwrap();
            assert_good_coloring(&g, &r);
            assert!(r.colors.iter().all(Option::is_some), "{name}: incomplete");
        }
    }

    #[test]
    fn star_uses_exactly_delta_colors() {
        // Every edge shares the hub: χ' = Δ, and the lowest-index rule
        // must discover exactly that.
        let g = structured::star(9);
        let r = color_edges(&g, &ColoringConfig::seeded(3)).unwrap();
        assert_eq!(r.colors_used, 8);
        assert_good_coloring(&g, &r);
    }

    #[test]
    fn random_graphs_color_correctly() {
        let mut rng = SmallRng::seed_from_u64(17);
        for seed in 0..5 {
            let g = erdos_renyi_avg_degree(120, 8.0, &mut rng).unwrap();
            let r = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
            assert_good_coloring(&g, &r);
        }
        let g = watts_strogatz(64, 8, 0.3, &mut rng).unwrap();
        let r = color_edges(&g, &ColoringConfig::seeded(23)).unwrap();
        assert_good_coloring(&g, &r);
    }

    #[test]
    fn typical_colors_near_delta_on_er() {
        // Conjecture 2: Δ or Δ+1 in the typical run (Δ+2 rare).
        let mut rng = SmallRng::seed_from_u64(5);
        let g = erdos_renyi_avg_degree(200, 8.0, &mut rng).unwrap();
        let r = color_edges(&g, &ColoringConfig::seeded(99)).unwrap();
        assert_good_coloring(&g, &r);
        assert!(
            r.colors_used <= g.max_degree() + 2,
            "colors {} vs Δ {}",
            r.colors_used,
            g.max_degree()
        );
    }

    #[test]
    fn rounds_scale_with_delta_not_n() {
        // The headline O(Δ) claim, coarse-grained: a big sparse cycle
        // terminates in few rounds despite having many more nodes than a
        // small dense clique.
        let sparse_big = structured::cycle(400); // Δ = 2
        let dense_small = structured::complete(24); // Δ = 23
        let r1 = color_edges(&sparse_big, &ColoringConfig::seeded(7)).unwrap();
        let r2 = color_edges(&dense_small, &ColoringConfig::seeded(7)).unwrap();
        assert!(
            r1.compute_rounds < r2.compute_rounds,
            "cycle {} rounds vs clique {}",
            r1.compute_rounds,
            r2.compute_rounds
        );
        assert!(r1.compute_rounds < 60, "Δ=2 should finish fast, took {}", r1.compute_rounds);
    }

    #[test]
    fn parallel_engine_bit_identical() {
        let g = structured::grid(8, 8);
        let cfg = ColoringConfig { collect_round_stats: true, ..ColoringConfig::seeded(31) };
        let seq = color_edges(&g, &cfg).unwrap();
        for threads in [2, 5] {
            let par = color_edges(
                &g,
                &ColoringConfig { engine: Engine::Parallel { threads }, ..cfg.clone() },
            )
            .unwrap();
            assert_eq!(seq.colors, par.colors, "threads={threads}");
            assert_eq!(seq.comm_rounds, par.comm_rounds);
            assert_eq!(seq.stats, par.stats);
        }
    }

    #[test]
    fn random_legal_policy_still_correct() {
        let g = structured::complete(10);
        let cfg =
            ColoringConfig { color_policy: ColorPolicy::RandomLegal, ..ColoringConfig::seeded(41) };
        let r = color_edges(&g, &cfg).unwrap();
        assert_good_coloring(&g, &r);
    }

    #[test]
    fn alternative_response_policies_still_correct() {
        let g = structured::grid(4, 6);
        for policy in [ResponsePolicy::FirstSender, ResponsePolicy::LowestColor] {
            let cfg = ColoringConfig { response_policy: policy, ..ColoringConfig::seeded(43) };
            let r = color_edges(&g, &cfg).unwrap();
            assert_good_coloring(&g, &r);
        }
    }

    #[test]
    fn biased_coin_still_correct() {
        let g = structured::petersen();
        for p in [0.1, 0.3, 0.7, 0.9] {
            let cfg = ColoringConfig { invite_probability: p, ..ColoringConfig::seeded(47) };
            let r = color_edges(&g, &cfg).unwrap();
            assert_good_coloring(&g, &r);
        }
    }

    #[test]
    fn message_loss_can_break_agreement() {
        // Violating the model's reliable-delivery assumption must be
        // *detected* (agreement flag or verification), demonstrating that
        // Proposition 2 leans on the model. With heavy loss the run may
        // also fail to terminate — both are acceptable detections.
        let g = structured::complete(12);
        let mut saw_detection = false;
        for seed in 0..10 {
            let cfg = ColoringConfig {
                faults: FaultPlan::uniform(0.4),
                max_compute_rounds: Some(400),
                ..ColoringConfig::seeded(seed)
            };
            match color_edges(&g, &cfg) {
                Ok(r) => {
                    if !r.endpoint_agreement || verify_edge_coloring(&g, &r.colors).is_err() {
                        saw_detection = true;
                    }
                }
                Err(CoreError::Sim(_)) => saw_detection = true,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_detection, "40% loss should corrupt at least one of 10 runs");
    }

    #[test]
    fn reliable_transport_is_transparent_without_faults() {
        let g = structured::grid(6, 6);
        let bare = color_edges(&g, &ColoringConfig::seeded(61)).unwrap();
        let arq = color_edges(
            &g,
            &ColoringConfig { transport: Transport::reliable(), ..ColoringConfig::seeded(61) },
        )
        .unwrap();
        assert_eq!(bare.colors, arq.colors);
        assert_eq!(bare.comm_rounds, arq.comm_rounds);
        assert!(arq.transport_overhead_rounds <= 3, "{}", arq.transport_overhead_rounds);
        assert_good_coloring(&g, &arq);
    }

    #[test]
    fn reliable_transport_survives_loss_that_breaks_bare_runs() {
        // The same loss rate that corrupts bare runs (see
        // `message_loss_can_break_agreement`) is invisible through the
        // ARQ layer: the run produces the exact coloring of a fault-free
        // run, paying only transport rounds.
        let g = structured::complete(9);
        let bare = color_edges(&g, &ColoringConfig::seeded(53)).unwrap();
        let cfg = ColoringConfig {
            faults: FaultPlan::uniform(0.2),
            transport: Transport::reliable(),
            ..ColoringConfig::seeded(53)
        };
        let r = color_edges(&g, &cfg).unwrap();
        assert!(r.stats.dropped > 0, "the plan should actually drop messages");
        assert!(r.endpoint_agreement);
        assert_eq!(r.colors, bare.colors);
        assert!(r.transport_overhead_rounds > 0);
        assert_good_coloring(&g, &r);
    }

    #[test]
    fn crashes_leave_proper_residual_coloring() {
        let g = structured::complete(10);
        let cfg = ColoringConfig {
            faults: FaultPlan { crash_spread: 1, ..FaultPlan::crashing(0.3, 0) },
            transport: Transport::reliable(),
            ..ColoringConfig::seeded(67)
        };
        let r = color_edges(&g, &cfg).unwrap();
        assert!(r.alive.iter().any(|&a| !a), "the plan should crash someone");
        assert!(r.endpoint_agreement);
        crate::verify::verify_residual_edge_coloring(&g, &r.colors, &r.alive).unwrap();
    }

    #[test]
    fn census_requires_bare_transport() {
        let g = structured::path(3);
        let cfg = ColoringConfig { transport: Transport::reliable(), ..ColoringConfig::seeded(1) };
        assert!(matches!(color_edges_with_census(&g, &cfg), Err(CoreError::Config(_))));
    }

    #[test]
    fn census_tracks_automata_states() {
        let g = structured::grid(4, 4);
        let (r, census) = color_edges_with_census(&g, &ColoringConfig::seeded(5)).unwrap();
        assert_good_coloring(&g, &r);
        assert_eq!(census.len() as u64, r.comm_rounds);
        // Round 0 is the invite step: every node is I or L.
        let n = g.num_vertices();
        assert_eq!(census.count(0, "I") + census.count(0, "L"), n);
        // Round 1 is the respond step: every node is W or R.
        assert_eq!(census.count(1, "W") + census.count(1, "R"), n);
        // Final round: everyone done.
        let last = census.len() - 1;
        assert!(census.count(last, "D") > 0);
        // Census agrees with the plain runner on the result.
        let plain = color_edges(&g, &ColoringConfig::seeded(5)).unwrap();
        assert_eq!(plain.colors, r.colors);
        assert!(!census.render().is_empty());
    }

    #[test]
    fn round_budget_error_carries_context() {
        let g = structured::complete(8);
        let cfg = ColoringConfig { max_compute_rounds: Some(1), ..ColoringConfig::seeded(1) };
        match color_edges(&g, &cfg) {
            Err(CoreError::Sim(dima_sim::SimError::MaxRoundsExceeded { max_rounds, .. })) => {
                assert_eq!(max_rounds, 3);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }
}
