//! Minimal reader for the JSONL trace format.
//!
//! Parses exactly the dialect [`crate::writer`] produces — flat objects
//! whose values are unsigned integers, strings, or booleans — which is
//! all `dima trace summarize`/`diff` need. Not a general JSON parser.

/// A parsed scalar value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// String (escapes resolved).
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// One parsed trace line: field name → value, in file order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Record {
    /// The fields, in the order they appeared.
    pub fields: Vec<(String, Value)>,
}

impl Record {
    /// Value of field `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Unsigned value of field `key`.
    pub fn num(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// String value of field `key`.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The record's `type` tag (`header`, `state`, `round`, …).
    pub fn tag(&self) -> Option<&str> {
        self.str("type")
    }

    /// Drop the named fields (used by `trace diff` to ignore
    /// fields that legitimately differ between comparable runs).
    pub fn without(mut self, keys: &[&str]) -> Record {
        self.fields.retain(|(k, _)| !keys.iter().any(|d| d == k));
        self
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                b => {
                    // Re-join multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self.bytes.get(start..start + len)?;
                    self.pos = start + len;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                }
            }
        }
    }

    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'"' => self.string().map(Value::Str),
            b't' => {
                self.expect_word("true")?;
                Some(Value::Bool(true))
            }
            b'f' => {
                self.expect_word("false")?;
                Some(Value::Bool(false))
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos]).ok()?.parse().ok().map(Value::U64)
            }
            _ => None,
        }
    }

    fn expect_word(&mut self, w: &str) -> Option<()> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(w.as_bytes()) {
            self.pos += w.len();
            Some(())
        } else {
            None
        }
    }
}

/// Parse one trace line. Returns `None` on anything that is not a flat
/// object of scalar values.
pub fn parse_line(line: &str) -> Option<Record> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.eat(b'{')?;
    let mut rec = Record::default();
    if p.peek() == Some(b'}') {
        p.eat(b'}')?;
        return Some(rec);
    }
    loop {
        let key = p.string()?;
        p.eat(b':')?;
        let val = p.value()?;
        rec.fields.push((key, val));
        match p.peek()? {
            b',' => {
                p.eat(b',')?;
            }
            b'}' => {
                p.eat(b'}')?;
                p.skip_ws();
                return (p.pos == p.bytes.len()).then_some(rec);
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::json_escape;

    #[test]
    fn parses_writer_dialect() {
        let rec =
            parse_line("{\"type\":\"state\",\"round\":3,\"node\":12,\"label\":\"I\"}").unwrap();
        assert_eq!(rec.tag(), Some("state"));
        assert_eq!(rec.num("round"), Some(3));
        assert_eq!(rec.num("node"), Some(12));
        assert_eq!(rec.str("label"), Some("I"));
        assert_eq!(rec.get("missing"), None);
    }

    #[test]
    fn roundtrips_escapes() {
        let original = "a\"b\\c\nd\tü";
        let line = format!("{{\"s\":\"{}\"}}", json_escape(original));
        let rec = parse_line(&line).unwrap();
        assert_eq!(rec.str("s"), Some(original));
    }

    #[test]
    fn rejects_trailing_garbage_and_nested_objects() {
        assert!(parse_line("{\"a\":1} extra").is_none());
        assert!(parse_line("{\"a\":{\"b\":1}}").is_none());
        assert!(parse_line("not json").is_none());
    }

    #[test]
    fn without_drops_fields() {
        let rec = parse_line("{\"type\":\"header\",\"engine\":\"seq\",\"seed\":1}").unwrap();
        let slim = rec.without(&["engine"]);
        assert_eq!(slim.get("engine"), None);
        assert_eq!(slim.num("seed"), Some(1));
    }
}
