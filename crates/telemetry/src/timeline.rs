//! [`StateTimeline`]: a bounded-memory aggregating sink that turns the
//! event stream into per-round automata-state censuses, matching /
//! colored-edge progress, and a color histogram.
//!
//! Memory is `O(n + rounds · |states| + colors)` — independent of the
//! message volume — so the timeline is safe to attach to long runs
//! where buffering raw events would not be.

use crate::event::{Event, PaletteAction};
use crate::tracer::Tracer;
use std::collections::BTreeMap;

/// Canonical automata state order (the paper's states plus a catch-all
/// for unknown labels).
pub const STATES: [&str; 9] = ["C", "I", "L", "R", "W", "U", "E", "D", "?"];

fn state_slot(label: &str) -> usize {
    STATES.iter().position(|s| *s == label).unwrap_or(STATES.len() - 1)
}

/// One engine round's aggregate view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundSnapshot {
    /// Engine round.
    pub round: u64,
    /// Nodes per automata state, indexed like [`STATES`]. Counts cover
    /// *all* nodes (done/parked nodes keep their last label), matching
    /// the observer-based censuses this type replaces.
    pub census: [u32; 9],
    /// Cumulative matched pairs (palette commits counted once per edge,
    /// at the smaller-id endpoint).
    pub matched_pairs: u64,
    /// Cumulative colored edges/arcs net of releases.
    pub colored_edges: u64,
    /// Nodes that executed this round.
    pub active: u64,
    /// Nodes done after this round.
    pub done: u64,
}

impl RoundSnapshot {
    /// Nodes in `state` (by label) this round.
    pub fn count(&self, state: &str) -> u32 {
        self.census[state_slot(state)]
    }

    /// The census as `(label, count)` pairs over non-empty states, in
    /// canonical order.
    pub fn states(&self) -> impl Iterator<Item = (&'static str, u32)> + '_ {
        STATES.iter().zip(self.census).filter(|&(_, c)| c > 0).map(|(&s, c)| (s, c))
    }

    /// Every node's label this round, expanded from the counts (for
    /// feeding census consumers that take per-node label iterators).
    pub fn labels(&self) -> impl Iterator<Item = &'static str> + '_ {
        STATES.iter().zip(self.census).flat_map(|(&s, c)| std::iter::repeat_n(s, c as usize))
    }
}

/// Aggregating tracer: per-round state census + progress + palette
/// histogram. Node labels carry forward between transitions (a done
/// node keeps `"D"` until churn says otherwise), so every snapshot
/// covers all `n` nodes.
#[derive(Clone, Debug)]
pub struct StateTimeline {
    labels: Vec<&'static str>,
    rounds: Vec<RoundSnapshot>,
    matched_pairs: u64,
    colored_edges: u64,
    /// Commits per color over the whole run (releases subtract).
    histogram: BTreeMap<u32, i64>,
    /// High-water mark of distinct in-use colors — a Kempe compaction
    /// pass shows up as `peak_colors > colors_used` at the end.
    peak_colors: usize,
    /// Palette proposals that the responder rejected.
    pub conflicts: u64,
    /// Last protocol round in which each node changed state, and the
    /// label it changed to — the raw material of "top-k slowest nodes".
    last_transition: Vec<(u64, &'static str)>,
}

impl StateTimeline {
    /// Timeline over `n` nodes, all starting in the churn/creation
    /// state `"C"`.
    pub fn new(n: usize) -> Self {
        StateTimeline {
            labels: vec!["C"; n],
            rounds: Vec::new(),
            matched_pairs: 0,
            colored_edges: 0,
            histogram: BTreeMap::new(),
            peak_colors: 0,
            conflicts: 0,
            last_transition: vec![(0, "C"); n],
        }
    }

    /// Per-round snapshots, in round order (idle-skipped rounds produce
    /// no snapshot).
    pub fn rounds(&self) -> &[RoundSnapshot] {
        &self.rounds
    }

    /// Final cumulative matched pairs.
    pub fn matched_pairs(&self) -> u64 {
        self.matched_pairs
    }

    /// Final cumulative colored edges (net of releases).
    pub fn colored_edges(&self) -> u64 {
        self.colored_edges
    }

    /// `(color, net commits)` rows of the color histogram, ascending.
    pub fn color_histogram(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.histogram.iter().filter(|&(_, &c)| c > 0).map(|(&color, &c)| (color, c as u64))
    }

    /// Distinct colors with a net-positive commit count.
    pub fn colors_used(&self) -> usize {
        self.histogram.values().filter(|&&c| c > 0).count()
    }

    /// High-water mark of [`colors_used`](Self::colors_used) across the
    /// run. Exceeds the final count exactly when colors were later
    /// vacated — by fault-induced releases or by the Kempe post-pass.
    pub fn peak_colors(&self) -> usize {
        self.peak_colors
    }

    /// The `k` nodes that kept transitioning longest, as
    /// `(node, last transition round, final label)`, slowest first.
    /// Nodes never reaching `"D"` sort before nodes that did.
    pub fn slowest_nodes(&self, k: usize) -> Vec<(u32, u64, &'static str)> {
        let mut rows: Vec<(u32, u64, &'static str)> =
            self.last_transition.iter().enumerate().map(|(v, &(r, l))| (v as u32, r, l)).collect();
        rows.sort_by_key(|&(v, r, l)| (l == "D", std::cmp::Reverse(r), v));
        rows.truncate(k);
        rows
    }
}

impl Tracer for StateTimeline {
    fn emit(&mut self, ev: Event) {
        match ev {
            Event::State { round, node, label, .. } => {
                if let Some(slot) = self.labels.get_mut(node as usize) {
                    *slot = label;
                    self.last_transition[node as usize] = (round, label);
                }
            }
            Event::Palette { node, action, color, peer, .. } => match action {
                PaletteAction::Committed => {
                    if node < peer {
                        self.matched_pairs += 1;
                        self.colored_edges += 1;
                        *self.histogram.entry(color).or_insert(0) += 1;
                        self.peak_colors = self.peak_colors.max(self.colors_used());
                    }
                }
                PaletteAction::Released => {
                    if node < peer {
                        self.colored_edges = self.colored_edges.saturating_sub(1);
                        *self.histogram.entry(color).or_insert(0) -= 1;
                    }
                }
                PaletteAction::Conflicted => self.conflicts += 1,
                PaletteAction::Proposed => {}
            },
            Event::Round { round, active, done, .. } => {
                let mut census = [0u32; 9];
                for l in &self.labels {
                    census[state_slot(l)] += 1;
                }
                self.rounds.push(RoundSnapshot {
                    round,
                    census,
                    matched_pairs: self.matched_pairs,
                    colored_edges: self.colored_edges,
                    active,
                    done,
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(round: u64, node: u32, label: &'static str) -> Event {
        Event::State { round, node, label, reason: "t" }
    }

    fn commit(node: u32, peer: u32, color: u32) -> Event {
        Event::Palette { round: 0, node, action: PaletteAction::Committed, color, peer }
    }

    fn round(round: u64, active: u64, done: u64) -> Event {
        Event::Round { round, active, done, sent: 0, delivered: 0 }
    }

    #[test]
    fn census_carries_labels_forward() {
        let mut t = StateTimeline::new(3);
        t.emit(state(0, 0, "I"));
        t.emit(state(0, 1, "L"));
        t.emit(round(0, 3, 0));
        t.emit(state(1, 0, "D"));
        t.emit(round(1, 3, 1));
        assert_eq!(t.rounds()[0].count("I"), 1);
        assert_eq!(t.rounds()[0].count("L"), 1);
        assert_eq!(t.rounds()[0].count("C"), 1, "untouched node keeps its initial label");
        assert_eq!(t.rounds()[1].count("D"), 1);
        assert_eq!(t.rounds()[1].count("L"), 1, "labels persist across rounds");
        assert_eq!(t.rounds()[1].labels().count(), 3);
    }

    #[test]
    fn commits_count_once_per_edge_and_releases_subtract() {
        let mut t = StateTimeline::new(4);
        t.emit(commit(1, 2, 5)); // counted (1 < 2)
        t.emit(commit(2, 1, 5)); // other endpoint: not counted
        t.emit(commit(0, 3, 6));
        t.emit(Event::Palette {
            round: 1,
            node: 0,
            action: PaletteAction::Released,
            color: 6,
            peer: 3,
        });
        assert_eq!(t.matched_pairs(), 2);
        assert_eq!(t.colored_edges(), 1);
        assert_eq!(t.colors_used(), 1);
        assert_eq!(t.peak_colors(), 2);
        assert_eq!(t.color_histogram().collect::<Vec<_>>(), vec![(5, 1)]);
    }

    #[test]
    fn slowest_nodes_rank_unfinished_first() {
        let mut t = StateTimeline::new(3);
        t.emit(state(4, 0, "D"));
        t.emit(state(9, 1, "D"));
        t.emit(state(2, 2, "W"));
        let slow = t.slowest_nodes(2);
        assert_eq!(slow[0], (2, 2, "W"), "never-done node is slowest");
        assert_eq!(slow[1], (1, 9, "D"));
    }
}
