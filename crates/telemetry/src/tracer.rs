//! The [`Tracer`] trait and its in-memory implementations.
//!
//! Engines are generic over `T: Tracer`; with the default
//! [`NoopTracer`] the associated `ENABLED` constant is `false`, every
//! tracing branch is `if false` after monomorphization, and the
//! telemetry plane compiles away entirely. Protocols, which cannot be
//! generic over the tracer (the `Protocol` trait knows nothing about
//! telemetry), instead receive a [`TraceHandle`] inside their round
//! context: a nullable `&mut dyn` sink that costs one pointer test per
//! emission attempt when tracing is off at the engine level.

use crate::event::{Event, Stamped};
use crate::kinds::KindTotals;
use std::collections::BTreeMap;

/// A consumer of telemetry [`Event`]s.
///
/// The associated `ENABLED` constant is the zero-cost switch: engines
/// test it (a compile-time constant) before doing *any* tracing work —
/// building kind tables, consulting sampling, buffering shard events.
pub trait Tracer {
    /// Whether this tracer observes anything at all. Engines skip all
    /// telemetry bookkeeping when this is `false`.
    const ENABLED: bool = true;

    /// Consume one event. Events arrive in the canonical deterministic
    /// order (see [`crate::event`]) regardless of engine.
    fn emit(&mut self, ev: Event);

    /// Per-node sampling predicate: when `false`, engines do not hand
    /// node `node` a live [`TraceHandle`], so its state/palette/ARQ
    /// events are never produced. Engine-level events (round footers,
    /// churn, message-kind counters) are unaffected. Sinks that sample
    /// must *also* re-check in [`Tracer::emit`] so that composed sinks
    /// ([`Tee`]) with different sampling filter independently.
    fn sample(&self, node: u32) -> bool {
        let _ = node;
        true
    }
}

/// Forwarding impl so call sites can pass `&mut tracer` without giving
/// up ownership (e.g. to compose a [`Tee`] of two locals).
impl<T: Tracer + ?Sized> Tracer for &mut T {
    const ENABLED: bool = true;

    fn emit(&mut self, ev: Event) {
        (**self).emit(ev);
    }

    fn sample(&self, node: u32) -> bool {
        (**self).sample(node)
    }
}

/// The default tracer: observes nothing, compiles to nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;

    fn emit(&mut self, _ev: Event) {}

    fn sample(&self, _node: u32) -> bool {
        false
    }
}

/// Object-safe companion of [`Tracer`] (the associated const makes
/// `dyn Tracer` illegal). [`TraceHandle`] is a nullable `&mut dyn
/// EventSink`; the blanket impl lets any tracer — and any plain
/// `Vec<Stamped>`-backed shard buffer — serve as the target.
pub trait EventSink {
    /// Consume one event.
    fn sink(&mut self, ev: Event);
}

impl<T: Tracer> EventSink for T {
    fn sink(&mut self, ev: Event) {
        self.emit(ev);
    }
}

/// A per-worker shard buffer used by the parallel engine: stamps each
/// event with the engine round and node id currently being stepped
/// (both set by the engine before handing the node its context).
#[derive(Debug, Default)]
pub struct ShardBuf {
    /// Buffered stamped events, in this worker's emission order.
    pub events: Vec<Stamped>,
    /// Stamp applied to the next sunk event: engine round.
    pub round: u64,
    /// Stamp applied to the next sunk event: node id.
    pub node: u32,
}

impl EventSink for ShardBuf {
    fn sink(&mut self, ev: Event) {
        self.events.push(Stamped { round: self.round, node: self.node, ev });
    }
}

/// Nullable dynamic event sink carried inside a protocol round context.
/// `None` when tracing is off or the node is sampled out — emitting
/// through a dead handle is a single branch.
#[derive(Default)]
pub struct TraceHandle<'a>(Option<&'a mut (dyn EventSink + 'a)>);

impl<'a> TraceHandle<'a> {
    /// A dead handle: every emission is dropped.
    pub fn none() -> Self {
        TraceHandle(None)
    }

    /// A live handle feeding `sink`.
    pub fn to(sink: &'a mut (dyn EventSink + 'a)) -> TraceHandle<'a> {
        TraceHandle(Some(sink))
    }

    /// Whether emissions go anywhere. Protocols can test this before
    /// assembling an event with non-trivial arguments.
    pub fn on(&self) -> bool {
        self.0.is_some()
    }

    /// Emit one event (dropped if the handle is dead).
    pub fn emit(&mut self, ev: Event) {
        if let Some(sink) = self.0.as_deref_mut() {
            sink.sink(ev);
        }
    }

    /// Reborrow for a nested context (the reliable transport hands its
    /// inner protocol a sub-context sharing the outer handle).
    pub fn reborrow(&mut self) -> TraceHandle<'_> {
        match &mut self.0 {
            Some(sink) => TraceHandle(Some(&mut **sink)),
            None => TraceHandle(None),
        }
    }
}

/// In-memory tracer capturing the full event sequence — the workhorse
/// of trace-equality tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BufferTracer {
    /// Captured events, in canonical order.
    pub events: Vec<Event>,
}

impl Tracer for BufferTracer {
    fn emit(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// Fan one event stream out to two tracers. Sampling is the union of
/// the parts' predicates; each part must therefore re-filter in its own
/// `emit` if it samples (see [`Tracer::sample`]).
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Tracer, B: Tracer> Tracer for Tee<A, B> {
    fn emit(&mut self, ev: Event) {
        self.0.emit(ev);
        self.1.emit(ev);
    }

    fn sample(&self, node: u32) -> bool {
        self.0.sample(node) || self.1.sample(node)
    }
}

/// Which terminal class a reliable-transport link ended the run in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkClass {
    /// Link never declared dead.
    Healthy,
    /// Link declared dead after exhausting the retry budget.
    DiedExhausted,
    /// Link declared dead after prolonged peer silence.
    DiedSilent,
}

impl LinkClass {
    /// Human-readable class name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LinkClass::Healthy => "healthy",
            LinkClass::DiedExhausted => "died-exhausted",
            LinkClass::DiedSilent => "died-silent",
        }
    }
}

/// Retransmission totals for one link class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkClassTotals {
    /// Directed links (node → peer) that ended the run in this class
    /// and saw at least one ARQ event.
    pub links: u64,
    /// Data-bundle retransmissions on those links.
    pub retransmits: u64,
}

/// Cheap aggregating tracer behind the CLI transport report: tallies
/// per-message-kind counters and ARQ link outcomes without buffering
/// events. Never samples — its inputs are engine-level counters plus
/// the (rare) ARQ events.
#[derive(Clone, Debug, Default)]
pub struct TransportTally {
    /// Totals per protocol-declared message kind, keyed by kind name.
    pub kinds: BTreeMap<&'static str, KindTotals>,
    /// Per directed link (node, peer): retransmit count and final class.
    links: BTreeMap<(u32, u32), (u64, LinkClass)>,
    /// Total retransmissions across all links.
    pub retransmits: u64,
}

impl TransportTally {
    /// Retransmission totals grouped by final link class, in
    /// `[healthy, died-exhausted, died-silent]` order.
    pub fn by_link_class(&self) -> [(LinkClass, LinkClassTotals); 3] {
        let mut out = [
            (LinkClass::Healthy, LinkClassTotals::default()),
            (LinkClass::DiedExhausted, LinkClassTotals::default()),
            (LinkClass::DiedSilent, LinkClassTotals::default()),
        ];
        for &(retransmits, class) in self.links.values() {
            let slot = &mut out.iter_mut().find(|(c, _)| *c == class).unwrap().1;
            slot.links += 1;
            slot.retransmits += retransmits;
        }
        out
    }

    /// Directed links that were declared dead.
    pub fn links_down(&self) -> u64 {
        self.links.values().filter(|&&(_, c)| c != LinkClass::Healthy).count() as u64
    }
}

impl Tracer for TransportTally {
    fn emit(&mut self, ev: Event) {
        match ev {
            Event::MsgKind { kind, sent, delivered, dropped, corrupted, duplicated, .. } => {
                let t = self.kinds.entry(kind).or_default();
                t.sent += sent;
                t.delivered += delivered;
                t.dropped += dropped;
                t.corrupted += corrupted;
                t.duplicated += duplicated;
            }
            Event::Arq { node, kind, peer, .. } => {
                let link = self.links.entry((node, peer)).or_insert((0, LinkClass::Healthy));
                match kind {
                    crate::event::ArqEventKind::Retransmit => {
                        link.0 += 1;
                        self.retransmits += 1;
                    }
                    crate::event::ArqEventKind::LinkDownExhausted => {
                        link.1 = LinkClass::DiedExhausted;
                    }
                    crate::event::ArqEventKind::LinkDownSilent => {
                        link.1 = LinkClass::DiedSilent;
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArqEventKind;

    #[test]
    fn noop_is_disabled_and_samples_nothing() {
        const { assert!(!NoopTracer::ENABLED) };
        assert!(!NoopTracer.sample(0));
    }

    #[test]
    fn handle_routes_and_dead_handle_drops() {
        let mut buf = BufferTracer::default();
        let ev = Event::Round { round: 0, active: 1, done: 0, sent: 0, delivered: 0 };
        {
            let mut h = TraceHandle::to(&mut buf);
            assert!(h.on());
            h.reborrow().emit(ev);
        }
        let mut dead = TraceHandle::none();
        assert!(!dead.on());
        dead.emit(ev);
        assert_eq!(buf.events, vec![ev]);
    }

    #[test]
    fn tee_samples_union() {
        struct Even;
        impl Tracer for Even {
            fn emit(&mut self, _ev: Event) {}
            fn sample(&self, node: u32) -> bool {
                node.is_multiple_of(2)
            }
        }
        let tee = Tee(Even, BufferTracer::default());
        assert!(tee.sample(1), "BufferTracer side accepts everything");
        let tee2 = Tee(Even, NoopTracer);
        assert!(tee2.sample(2));
        assert!(!tee2.sample(3));
    }

    #[test]
    fn transport_tally_classifies_links() {
        let mut t = TransportTally::default();
        let arq = |node, kind, peer| Event::Arq { round: 0, node, kind, peer };
        t.emit(arq(0, ArqEventKind::Retransmit, 1));
        t.emit(arq(0, ArqEventKind::Retransmit, 1));
        t.emit(arq(0, ArqEventKind::LinkDownExhausted, 1));
        t.emit(arq(2, ArqEventKind::Retransmit, 3));
        t.emit(arq(4, ArqEventKind::LinkDownSilent, 5));
        assert_eq!(t.retransmits, 3);
        assert_eq!(t.links_down(), 2);
        let [h, e, s] = t.by_link_class();
        assert_eq!(h.1, LinkClassTotals { links: 1, retransmits: 1 });
        assert_eq!(e.1, LinkClassTotals { links: 1, retransmits: 2 });
        assert_eq!(s.1, LinkClassTotals { links: 1, retransmits: 0 });
    }
}
