//! The structured event taxonomy of the telemetry plane, plus the
//! deterministic merge used by the parallel engine.
//!
//! Every event is a small `Copy` value built exclusively from integers
//! and `&'static str` labels: emitting one never allocates, and a
//! buffered trace can be compared bit-for-bit across engines.
//!
//! ## Deterministic ordering
//!
//! A trace is a sequence of events; two runs are *trace-equal* when the
//! sequences match element-wise. The sequential engine emits events in
//! its natural execution order; the parallel engine buffers per-worker
//! and merges at the end of the run. Both orders are normalized to the
//! same canonical key, per engine round:
//!
//! 1. class 0 — the round's [`Event::Churn`] batch summary (if any),
//! 2. class 1 — node events ([`Event::State`], [`Event::Palette`],
//!    [`Event::Arq`]) in increasing node id, preserving each node's own
//!    emission order,
//! 3. class 2 — per-message-kind counters ([`Event::MsgKind`]) in
//!    lexicographic kind order, partial shard rows summed,
//! 4. class 3 — the round footer ([`Event::Round`]).
//!
//! Node events under the reliable transport carry the *inner* protocol
//! round in their `round` field (that is the round the protocol logic
//! observed), so the merge key cannot be derived from the event alone;
//! the engines stamp each buffered event with the engine round and node
//! id at emission time ([`Stamped`]).

/// What happened to a color in a palette negotiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PaletteAction {
    /// An invitor proposed the color to a neighbor.
    Proposed,
    /// An endpoint committed the color on an incident edge/arc. For the
    /// plain matching protocol the "color" is 0 and the event marks the
    /// pairing itself.
    Committed,
    /// A previously committed color was released (churn repair).
    Released,
    /// A proposed color was rejected by the responder (unusable there,
    /// or collided with an overheard competing proposal).
    Conflicted,
}

impl PaletteAction {
    /// Lowercase wire name, as written to JSONL traces.
    pub fn name(self) -> &'static str {
        match self {
            PaletteAction::Proposed => "proposed",
            PaletteAction::Committed => "committed",
            PaletteAction::Released => "released",
            PaletteAction::Conflicted => "conflicted",
        }
    }
}

/// Reliable-transport (ARQ) link events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArqEventKind {
    /// A data bundle was sent again after its retransmit timer expired.
    Retransmit,
    /// The link was declared dead after exhausting the retry budget.
    LinkDownExhausted,
    /// The link was declared dead after prolonged silence from the peer.
    LinkDownSilent,
}

impl ArqEventKind {
    /// Lowercase wire name, as written to JSONL traces.
    pub fn name(self) -> &'static str {
        match self {
            ArqEventKind::Retransmit => "retransmit",
            ArqEventKind::LinkDownExhausted => "link-down-exhausted",
            ArqEventKind::LinkDownSilent => "link-down-silent",
        }
    }
}

/// One structured telemetry event.
///
/// `round` on node events is the round *as seen by the emitting
/// protocol* — under the reliable transport that is the inner protocol
/// round, which can lag the engine round. Engine-level events
/// ([`Event::Churn`], [`Event::MsgKind`], [`Event::Round`]) always carry
/// the engine round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A node's automata state after (part of) a round, with the reason
    /// for entering it.
    State {
        /// Protocol-visible round of the transition.
        round: u64,
        /// Emitting node id.
        node: u32,
        /// Automata state label (`"C"`, `"I"`, `"L"`, `"W"`, `"R"`,
        /// `"U"`, `"E"`, `"D"`).
        label: &'static str,
        /// Why the state was entered (e.g. `"coin"`, `"paired"`,
        /// `"all-colored"`).
        reason: &'static str,
    },
    /// A palette negotiation step at one endpoint.
    Palette {
        /// Protocol-visible round.
        round: u64,
        /// Emitting node id.
        node: u32,
        /// What happened to the color.
        action: PaletteAction,
        /// The color (0 for the plain matching protocol).
        color: u32,
        /// The neighbor on the other end of the edge/arc.
        peer: u32,
    },
    /// A reliable-transport link event.
    Arq {
        /// Engine round (ARQ logic runs on engine rounds).
        round: u64,
        /// Emitting node id.
        node: u32,
        /// What happened on the link.
        kind: ArqEventKind,
        /// The link's peer.
        peer: u32,
    },
    /// A churn batch was applied at the start of this round.
    Churn {
        /// Engine round the batch took effect in.
        round: u64,
        /// Nodes that joined.
        joins: u32,
        /// Nodes that left.
        leaves: u32,
        /// Surviving nodes whose neighborhood changed.
        changes: u32,
    },
    /// Per-message-kind counters for one engine round (message fates
    /// are attributed to the *sender's* round).
    MsgKind {
        /// Engine round.
        round: u64,
        /// Protocol-declared message kind (see `Protocol::kind_of`).
        kind: &'static str,
        /// Messages of this kind sent (per-recipient for broadcasts).
        sent: u64,
        /// Copies delivered.
        delivered: u64,
        /// Copies dropped by the fault plan.
        dropped: u64,
        /// Copies corrupted by the fault plan.
        corrupted: u64,
        /// Extra copies injected by the fault plan.
        duplicated: u64,
    },
    /// Round footer: engine-wide totals after every node stepped.
    Round {
        /// Engine round.
        round: u64,
        /// Nodes that executed this round.
        active: u64,
        /// Nodes done after this round.
        done: u64,
        /// Messages sent this round.
        sent: u64,
        /// Messages delivered this round.
        delivered: u64,
    },
}

impl Event {
    /// Canonical within-round ordering class (see the module docs).
    pub fn class(&self) -> u8 {
        match self {
            Event::Churn { .. } => 0,
            Event::State { .. } | Event::Palette { .. } | Event::Arq { .. } => 1,
            Event::MsgKind { .. } => 2,
            Event::Round { .. } => 3,
        }
    }

    /// The emitting node for node events, 0 otherwise (engine-level
    /// events never share a sort class with node events).
    pub fn node(&self) -> u32 {
        match *self {
            Event::State { node, .. } | Event::Palette { node, .. } | Event::Arq { node, .. } => {
                node
            }
            _ => 0,
        }
    }

    /// Message-kind name for [`Event::MsgKind`], `""` otherwise.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::MsgKind { kind, .. } => kind,
            _ => "",
        }
    }
}

/// An event stamped with its *engine* round and emitting node, as
/// buffered by the parallel engine's workers. The stamp — not the
/// event's own `round` field — drives the deterministic merge, because
/// node events under the reliable transport carry inner rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stamped {
    /// Engine round the event was emitted in.
    pub round: u64,
    /// Emitting node (0 for engine-level events).
    pub node: u32,
    /// The event itself.
    pub ev: Event,
}

impl Stamped {
    fn key(&self) -> (u64, u8, u32, &'static str) {
        (self.round, self.ev.class(), self.node, self.ev.kind_name())
    }
}

/// Merge per-worker event buffers into the canonical sequential order.
///
/// `shards` must be passed in worker (thread) order; each worker's
/// buffer is already in that worker's emission order, and workers own
/// contiguous node ranges, so a stable sort by the canonical key
/// reproduces exactly the order the sequential engine emits in.
/// Adjacent [`Event::MsgKind`] partial rows from different workers with
/// equal `(round, kind)` are summed into one row.
pub fn merge_shards(shards: Vec<Vec<Stamped>>) -> Vec<Event> {
    let mut all: Vec<Stamped> = shards.into_iter().flatten().collect();
    all.sort_by(|a, b| a.key().cmp(&b.key()));
    let mut out: Vec<Event> = Vec::with_capacity(all.len());
    for s in all {
        if let Event::MsgKind { round: _, kind, sent, delivered, dropped, corrupted, duplicated } =
            s.ev
        {
            if let Some(Event::MsgKind {
                round: pr,
                kind: pk,
                sent: ps,
                delivered: pd,
                dropped: pdr,
                corrupted: pc,
                duplicated: pdu,
            }) = out.last_mut()
            {
                if *pr == s.round && *pk == kind {
                    *ps += sent;
                    *pd += delivered;
                    *pdr += dropped;
                    *pc += corrupted;
                    *pdu += duplicated;
                    continue;
                }
            }
        }
        out.push(s.ev);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(round: u64, node: u32) -> Stamped {
        Stamped { round, node, ev: Event::State { round, node, label: "I", reason: "coin" } }
    }

    fn mk(round: u64, kind: &'static str, sent: u64) -> Stamped {
        Stamped {
            round,
            node: 0,
            ev: Event::MsgKind {
                round,
                kind,
                sent,
                delivered: sent,
                dropped: 0,
                corrupted: 0,
                duplicated: 0,
            },
        }
    }

    #[test]
    fn merge_orders_rounds_then_classes_then_nodes() {
        let round_ev = Stamped {
            round: 0,
            node: 0,
            ev: Event::Round { round: 0, active: 2, done: 0, sent: 2, delivered: 0 },
        };
        let churn_ev = Stamped {
            round: 0,
            node: 0,
            ev: Event::Churn { round: 0, joins: 1, leaves: 0, changes: 0 },
        };
        // Worker 0 owns node 0, worker 1 owns node 5; engine events from
        // worker 0 (tid 0).
        let merged =
            merge_shards(vec![vec![churn_ev, st(0, 0), round_ev, st(1, 0)], vec![st(0, 5)]]);
        assert_eq!(merged, vec![churn_ev.ev, st(0, 0).ev, st(0, 5).ev, round_ev.ev, st(1, 0).ev]);
    }

    #[test]
    fn merge_sums_msgkind_partials_and_sorts_kinds() {
        let merged = merge_shards(vec![
            vec![mk(0, "invite", 3), mk(0, "accept", 1)],
            vec![mk(0, "invite", 2)],
        ]);
        assert_eq!(
            merged,
            vec![
                Event::MsgKind {
                    round: 0,
                    kind: "accept",
                    sent: 1,
                    delivered: 1,
                    dropped: 0,
                    corrupted: 0,
                    duplicated: 0,
                },
                Event::MsgKind {
                    round: 0,
                    kind: "invite",
                    sent: 5,
                    delivered: 5,
                    dropped: 0,
                    corrupted: 0,
                    duplicated: 0,
                },
            ]
        );
    }

    #[test]
    fn merge_preserves_per_node_emission_order() {
        let a = Stamped {
            round: 0,
            node: 3,
            ev: Event::State { round: 0, node: 3, label: "W", reason: "invited" },
        };
        let b = Stamped {
            round: 0,
            node: 3,
            ev: Event::Palette {
                round: 0,
                node: 3,
                action: PaletteAction::Committed,
                color: 2,
                peer: 4,
            },
        };
        let merged = merge_shards(vec![vec![a, b]]);
        assert_eq!(merged, vec![a.ev, b.ev]);
    }

    #[test]
    fn inner_round_stamps_do_not_reorder_across_nodes() {
        // Node 2's protocol saw inner round 7 while node 9 saw inner
        // round 1 in the same engine round: engine-round stamps keep
        // node order.
        let slow = Stamped {
            round: 4,
            node: 2,
            ev: Event::State { round: 7, node: 2, label: "R", reason: "coin" },
        };
        let fast = Stamped {
            round: 4,
            node: 9,
            ev: Event::State { round: 1, node: 9, label: "I", reason: "coin" },
        };
        let merged = merge_shards(vec![vec![slow], vec![fast]]);
        assert_eq!(merged, vec![slow.ev, fast.ev]);
    }
}
