//! Byte-accounting memory introspection for run reports.
//!
//! Two complementary sources:
//!
//! * [`CountingAlloc`] — a `#[global_allocator]` wrapper around the
//!   system allocator that tracks live heap bytes and their high-water
//!   mark with two relaxed atomics (an add and a `fetch_max` per
//!   allocation — negligible against the allocation itself). Binaries
//!   opt in by declaring it as their global allocator; libraries never
//!   pay for it. When no binary installed it, the counters stay 0 and
//!   reports fall back to RSS.
//! * [`peak_rss_bytes`] — the kernel's view (`VmHWM` from
//!   `/proc/self/status`), which includes code, stacks, and allocator
//!   slack. Reported alongside the heap numbers so the two can be
//!   compared; `None` off Linux.
//!
//! [`MemReport::capture`] snapshots both plus per-node/per-edge
//! amortization — the measurement ROADMAP item 2 asks for.
//!
//! This module is the one place in the crate that needs `unsafe` (the
//! `GlobalAlloc` contract); the crate-level lint is `deny` with a
//! scoped allow here rather than `forbid` for exactly this reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// A system-allocator wrapper that maintains live/peak heap byte
/// counters. Declare as `#[global_allocator]` in a binary to enable
/// heap accounting in its [`MemReport`]s.
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    ALLOC_CALLS.fetch_add(1, Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as u64, Relaxed);
}

#[allow(unsafe_code)]
// SAFETY: every method delegates verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counters are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Heap bytes currently live (0 unless [`CountingAlloc`] is the
/// global allocator).
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Relaxed)
}

/// High-water mark of live heap bytes since process start (or the
/// last [`reset_peak`]).
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Relaxed)
}

/// Total allocation calls observed.
pub fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Relaxed)
}

/// `true` when a binary installed [`CountingAlloc`] (any allocation
/// has been observed — always true by the time `main` runs, since
/// program startup allocates).
pub fn heap_accounting_on() -> bool {
    ALLOC_CALLS.load(Relaxed) > 0
}

/// Reset the peak to the current live count — scopes the high-water
/// mark to a phase of interest (e.g. "the run itself", excluding
/// graph loading).
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Relaxed), Relaxed);
}

/// Kernel-reported peak resident set (`VmHWM`), in bytes. `None`
/// where `/proc/self/status` is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// A memory snapshot amortized over a graph's size.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemReport {
    /// Live heap bytes at capture (0 without [`CountingAlloc`]).
    pub live_bytes: u64,
    /// Peak live heap bytes (0 without [`CountingAlloc`]).
    pub peak_bytes: u64,
    /// Allocation calls so far (0 without [`CountingAlloc`]).
    pub alloc_calls: u64,
    /// Kernel peak RSS in bytes (0 where unavailable).
    pub peak_rss_bytes: u64,
    /// Peak heap bytes per node (0 when the graph is empty).
    pub bytes_per_node: f64,
    /// Peak heap bytes per edge (0 when the graph has no edges).
    pub bytes_per_edge: f64,
}

impl MemReport {
    /// Snapshot the counters, amortizing the heap peak over `nodes`
    /// and `edges`.
    pub fn capture(nodes: u64, edges: u64) -> MemReport {
        let peak = peak_bytes();
        MemReport {
            live_bytes: live_bytes(),
            peak_bytes: peak,
            alloc_calls: alloc_calls(),
            peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
            bytes_per_node: if nodes == 0 { 0.0 } else { peak as f64 / nodes as f64 },
            bytes_per_edge: if edges == 0 { 0.0 } else { peak as f64 / edges as f64 },
        }
    }

    /// Human-readable report lines (the `memory` part of the run
    /// report's metrics section).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.peak_bytes > 0 {
            out.push_str(&format!(
                "  heap peak {} B (live {} B, {} allocs), {:.1} B/node, {:.1} B/edge\n",
                self.peak_bytes,
                self.live_bytes,
                self.alloc_calls,
                self.bytes_per_node,
                self.bytes_per_edge
            ));
        } else {
            out.push_str("  heap accounting off (no CountingAlloc in this binary)\n");
        }
        if self.peak_rss_bytes > 0 {
            out.push_str(&format!("  peak RSS {} B\n", self.peak_rss_bytes));
        }
        out
    }

    /// Fold into a [`crate::metrics::MetricsRegistry`] under `mem/`
    /// gauges, so memory travels with metric dumps.
    pub fn record(&self, reg: &mut crate::metrics::MetricsRegistry) {
        reg.gauge_max("mem/heap_peak_bytes", self.peak_bytes);
        reg.gauge_max("mem/heap_live_bytes", self.live_bytes);
        reg.gauge_max("mem/alloc_calls", self.alloc_calls);
        reg.gauge_max("mem/peak_rss_bytes", self.peak_rss_bytes);
        reg.gauge_max("mem/bytes_per_node", self.bytes_per_node as u64);
        reg.gauge_max("mem/bytes_per_edge", self.bytes_per_edge as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_amortizes_and_renders() {
        // The test binary does not install CountingAlloc, so the heap
        // counters are 0 and the report says so.
        let r = MemReport::capture(10, 20);
        if r.peak_bytes == 0 {
            assert_eq!(r.bytes_per_node, 0.0);
            assert!(r.to_text().contains("heap accounting off"));
        }
        // RSS should be readable on Linux CI.
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 0);
        }
        let zero = MemReport::capture(0, 0);
        assert_eq!(zero.bytes_per_node, 0.0);
        assert_eq!(zero.bytes_per_edge, 0.0);
    }

    #[test]
    fn counter_arithmetic_balances() {
        on_alloc(100);
        on_alloc(50);
        on_dealloc(50);
        assert!(peak_bytes() >= 150);
        assert!(alloc_calls() >= 2);
        on_dealloc(100);
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }

    #[test]
    fn report_records_into_registry() {
        let mut reg = crate::metrics::MetricsRegistry::new();
        let r = MemReport { peak_rss_bytes: 4096, ..Default::default() };
        r.record(&mut reg);
        assert_eq!(reg.gauge("mem/peak_rss_bytes"), 4096);
    }
}
