//! Streaming JSONL trace writer.
//!
//! One JSON object per line: a `header` line with run metadata, one
//! line per [`Event`], and a `footer` line with the run's aggregate
//! totals. The format is hand-rolled (this workspace vendors no JSON
//! dependency): every value is an unsigned integer, a boolean, or a
//! short string, so a [few lines of escaping](json_escape) suffice.

use crate::event::Event;
use crate::tracer::Tracer;
use std::io::Write;

/// Trace file schema version, bumped on incompatible format changes.
pub const SCHEMA_VERSION: u32 = 1;

/// Run metadata written to the `header` line.
#[derive(Clone, Debug, Default)]
pub struct TraceMeta {
    /// Workload name (e.g. `color`, `strong-color`, `matching`).
    pub workload: String,
    /// Input graph description (path or generator spec).
    pub graph: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Number of nodes.
    pub nodes: u64,
    /// Engine name (`seq` / `par`).
    pub engine: String,
    /// Worker threads (1 for the sequential engine).
    pub threads: u32,
    /// Node sampling modulus (0/1 = every node).
    pub sample: u32,
}

/// Aggregate run totals written to the `footer` line (mirrors the
/// simulator's `RunStats` scalars).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunTotals {
    /// Engine rounds executed.
    pub rounds: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages delivered.
    pub deliveries: u64,
    /// Messages dropped by the fault plan.
    pub dropped: u64,
    /// Messages corrupted by the fault plan.
    pub corrupted: u64,
    /// Extra copies injected by the fault plan.
    pub duplicated: u64,
    /// Nodes crash-stopped by the fault plan.
    pub crashed: u64,
    /// Idle rounds fast-forwarded over by the engine.
    pub idle_rounds_skipped: u64,
    /// Churn batches applied.
    pub churn_batches: u64,
    /// Individual churn events applied.
    pub churn_events: u64,
}

/// Escape a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Streaming JSONL sink. IO errors are sticky: the first one is kept
/// and reported by [`TraceWriter::finish`]; later writes are skipped.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    sample: u32,
    err: Option<std::io::Error>,
    events_written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Create a writer over `w` and write the header line. `sample`
    /// (from `meta.sample`) keeps node events only for nodes with
    /// `node % sample == 0`; 0 or 1 keeps everything. Engine-level
    /// events are always kept.
    pub fn new(w: W, meta: &TraceMeta) -> Self {
        let mut tw = TraceWriter { w, sample: meta.sample, err: None, events_written: 0 };
        let line = format!(
            concat!(
                "{{\"type\":\"header\",\"schema\":{},\"workload\":\"{}\",\"graph\":\"{}\",",
                "\"seed\":{},\"nodes\":{},\"engine\":\"{}\",\"threads\":{},\"sample\":{}}}"
            ),
            SCHEMA_VERSION,
            json_escape(&meta.workload),
            json_escape(&meta.graph),
            meta.seed,
            meta.nodes,
            meta.engine,
            meta.threads,
            meta.sample,
        );
        tw.line(&line);
        tw
    }

    fn line(&mut self, s: &str) {
        if self.err.is_none() {
            if let Err(e) = writeln!(self.w, "{s}") {
                self.err = Some(e);
            }
        }
    }

    fn keeps(&self, node: u32) -> bool {
        self.sample <= 1 || node.is_multiple_of(self.sample)
    }

    /// Events written so far (excluding header/footer).
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Write the footer line, flush, and surface any sticky IO error.
    pub fn finish(mut self, totals: &RunTotals) -> std::io::Result<()> {
        let line = format!(
            concat!(
                "{{\"type\":\"footer\",\"rounds\":{},\"messages_sent\":{},\"deliveries\":{},",
                "\"dropped\":{},\"corrupted\":{},\"duplicated\":{},\"crashed\":{},",
                "\"idle_rounds_skipped\":{},\"churn_batches\":{},\"churn_events\":{}}}"
            ),
            totals.rounds,
            totals.messages_sent,
            totals.deliveries,
            totals.dropped,
            totals.corrupted,
            totals.duplicated,
            totals.crashed,
            totals.idle_rounds_skipped,
            totals.churn_batches,
            totals.churn_events,
        );
        self.line(&line);
        match self.err.take() {
            Some(e) => Err(e),
            None => self.w.flush(),
        }
    }
}

impl<W: Write> Tracer for TraceWriter<W> {
    fn emit(&mut self, ev: Event) {
        let line = match ev {
            Event::State { round, node, label, reason } => {
                if !self.keeps(node) {
                    return;
                }
                format!(
                    "{{\"type\":\"state\",\"round\":{round},\"node\":{node},\"label\":\"{label}\",\"reason\":\"{reason}\"}}"
                )
            }
            Event::Palette { round, node, action, color, peer } => {
                if !self.keeps(node) {
                    return;
                }
                format!(
                    "{{\"type\":\"palette\",\"round\":{round},\"node\":{node},\"action\":\"{}\",\"color\":{color},\"peer\":{peer}}}",
                    action.name()
                )
            }
            Event::Arq { round, node, kind, peer } => {
                if !self.keeps(node) {
                    return;
                }
                format!(
                    "{{\"type\":\"arq\",\"round\":{round},\"node\":{node},\"kind\":\"{}\",\"peer\":{peer}}}",
                    kind.name()
                )
            }
            Event::Churn { round, joins, leaves, changes } => format!(
                "{{\"type\":\"churn\",\"round\":{round},\"joins\":{joins},\"leaves\":{leaves},\"changes\":{changes}}}"
            ),
            Event::MsgKind { round, kind, sent, delivered, dropped, corrupted, duplicated } => {
                format!(
                    "{{\"type\":\"msgkind\",\"round\":{round},\"kind\":\"{kind}\",\"sent\":{sent},\"delivered\":{delivered},\"dropped\":{dropped},\"corrupted\":{corrupted},\"duplicated\":{duplicated}}}"
                )
            }
            Event::Round { round, active, done, sent, delivered } => format!(
                "{{\"type\":\"round\",\"round\":{round},\"active\":{active},\"done\":{done},\"sent\":{sent},\"delivered\":{delivered}}}"
            ),
        };
        self.events_written += 1;
        self.line(&line);
    }

    fn sample(&self, node: u32) -> bool {
        self.keeps(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PaletteAction;

    #[test]
    fn writes_header_events_footer() {
        let mut buf = Vec::new();
        let meta = TraceMeta {
            workload: "color".into(),
            graph: "g.edges".into(),
            seed: 7,
            nodes: 2,
            engine: "seq".into(),
            threads: 1,
            sample: 0,
        };
        let mut w = TraceWriter::new(&mut buf, &meta);
        w.emit(Event::State { round: 0, node: 1, label: "I", reason: "coin" });
        w.emit(Event::Palette {
            round: 0,
            node: 1,
            action: PaletteAction::Committed,
            color: 3,
            peer: 0,
        });
        w.finish(&RunTotals { rounds: 4, ..Default::default() }).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"type\":\"header\"") && lines[0].contains("\"seed\":7"));
        assert!(lines[1].contains("\"label\":\"I\""));
        assert!(lines[2].contains("\"action\":\"committed\""));
        assert!(lines[3].contains("\"idle_rounds_skipped\":0"));
    }

    #[test]
    fn sampling_filters_node_events_only() {
        let mut buf = Vec::new();
        let meta = TraceMeta { sample: 2, ..Default::default() };
        let mut w = TraceWriter::new(&mut buf, &meta);
        assert!(w.sample(0) && !w.sample(1));
        w.emit(Event::State { round: 0, node: 1, label: "I", reason: "coin" });
        w.emit(Event::Round { round: 0, active: 2, done: 0, sent: 0, delivered: 0 });
        assert_eq!(w.events_written(), 1, "node 1 filtered, round kept");
        w.finish(&RunTotals::default()).unwrap();
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
