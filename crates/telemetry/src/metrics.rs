//! Aggregate metrics plane: named counters, gauges, and log-bucketed
//! histograms.
//!
//! Where the trace plane ([`crate::tracer`]) records *events*, this
//! module records *totals*: cheap always-on aggregates a run can carry
//! around, merge across engine shards, and diff between runs. The
//! design constraints mirror the trace plane:
//!
//! * **Zero-cost when off.** Instrumented code holds a
//!   [`MetricsHandle`] — a nullable reference, one branch per update
//!   when disabled, nothing allocated.
//! * **Deterministic across engines.** Every update is commutative
//!   (counter adds, gauge maxima, histogram bucket increments), so the
//!   parallel engine can give each worker shard its own
//!   [`MetricsRegistry`] and [`MetricsRegistry::merge`] them in any
//!   order at the end of the run: the result is bit-identical to the
//!   sequential engine's single registry. Proptests pin this at
//!   threads ∈ {1, 2, 3, 8}.
//! * **Deterministic content.** Registries that participate in the
//!   cross-engine equality contract must only record quantities that
//!   are pure functions of `(topology, seed, config)` — counts and
//!   round-denominated latencies, never wall-clock time. Wall-clock
//!   metrics (per-shard work, barrier waits, serve commit latency)
//!   live in registries or name prefixes that are only populated when
//!   profiling is on, exactly like
//!   [`PhaseNanos`](crate::profile::PhaseNanos).
//!
//! Histograms use log₂ buckets: value `v` lands in bucket
//! `bit_length(v)` (0 for 0, 1 for 1, 2 for 2–3, 3 for 4–7, …), plus
//! exact `count`/`sum`/`min`/`max`. That is enough resolution for
//! round counts and chain lengths while keeping the merge a plain
//! vector add.
//!
//! Serialization is the repo's flat-JSONL dialect (one object per
//! line, parseable by [`crate::read::parse_line`]): a `metrics-meta`
//! header, one `counter`/`gauge` line per scalar, one `hist` line per
//! histogram with sparse `b<i>` bucket fields.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::read::parse_line;
use crate::writer::json_escape;

/// Metric name: `&'static str` on the hot path, owned when parsed
/// back from a dump.
pub type MetricName = Cow<'static, str>;

/// Number of log₂ buckets a u64 can land in (bit lengths 0..=64).
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// `buckets[i]` counts observations whose bit length is `i`; the
    /// value range of bucket `i > 0` is `[2^(i-1), 2^i)`.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; HIST_BUCKETS] }
    }
}

/// Bucket index of a value: its bit length.
pub fn hist_bucket(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn hist_bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl LogHistogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[hist_bucket(v)] += 1;
    }

    /// Fold another histogram in (commutative, associative).
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `min` normalized to 0 for empty histograms (display form).
    pub fn display_min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// All update operations are commutative, so per-shard registries
/// merge to the same result in any order; `BTreeMap` keys make every
/// iteration (reports, dumps, diffs, `==`) canonically sorted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricName, u64>,
    gauges: BTreeMap<MetricName, u64>,
    histograms: BTreeMap<MetricName, LogHistogram>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Add `by` to counter `name` (creating it at 0).
    pub fn inc(&mut self, name: impl Into<MetricName>, by: u64) {
        *self.counters.entry(name.into()).or_insert(0) += by;
    }

    /// Raise gauge `name` to `v` if `v` is a new maximum.
    pub fn gauge_max(&mut self, name: impl Into<MetricName>, v: u64) {
        let g = self.gauges.entry(name.into()).or_insert(0);
        *g = (*g).max(v);
    }

    /// Record observation `v` into histogram `name`.
    pub fn observe(&mut self, name: impl Into<MetricName>, v: u64) {
        self.histograms.entry(name.into()).or_default().observe(v);
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name` (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// Fold another registry in: counters add, gauges max, histograms
    /// bucket-add. Commutative and associative, which is the whole
    /// determinism argument for per-shard collection — see the module
    /// docs.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += *v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Render as flat JSONL: a `metrics-meta` header, then one line
    /// per metric in canonical (kind, name) order. Round-trips
    /// through [`MetricsRegistry::from_jsonl`].
    pub fn to_jsonl(&self, label: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"metrics-meta\",\"schema\":1,\"label\":\"{}\"}}",
            json_escape(label)
        );
        for (k, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(k),
                v
            );
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(k),
                v
            );
        }
        for (k, h) in &self.histograms {
            let _ = write!(
                out,
                "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                json_escape(k),
                h.count,
                h.sum,
                h.display_min(),
                h.max
            );
            for (i, b) in h.buckets.iter().enumerate() {
                if *b != 0 {
                    let _ = write!(out, ",\"b{}\":{}", i, b);
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Parse a dump produced by [`MetricsRegistry::to_jsonl`].
    /// Returns the registry and its label, or `None` on any malformed
    /// line.
    pub fn from_jsonl(text: &str) -> Option<(MetricsRegistry, String)> {
        let mut reg = MetricsRegistry::new();
        let mut label = String::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rec = parse_line(line)?;
            match rec.tag()? {
                "metrics-meta" => label = rec.str("label")?.to_string(),
                "counter" => {
                    let name: MetricName = Cow::Owned(rec.str("name")?.to_string());
                    *reg.counters.entry(name).or_insert(0) += rec.num("value")?;
                }
                "gauge" => {
                    let name: MetricName = Cow::Owned(rec.str("name")?.to_string());
                    let v = rec.num("value")?;
                    let g = reg.gauges.entry(name).or_insert(0);
                    *g = (*g).max(v);
                }
                "hist" => {
                    let name: MetricName = Cow::Owned(rec.str("name")?.to_string());
                    let mut h = LogHistogram {
                        count: rec.num("count")?,
                        sum: rec.num("sum")?,
                        min: rec.num("min")?,
                        max: rec.num("max")?,
                        buckets: [0; HIST_BUCKETS],
                    };
                    if h.count == 0 {
                        h.min = u64::MAX;
                    }
                    for (k, _) in rec.fields.iter() {
                        if let Some(i) = k.strip_prefix('b').and_then(|s| s.parse::<usize>().ok()) {
                            if i < HIST_BUCKETS {
                                h.buckets[i] = rec.num(k)?;
                            }
                        }
                    }
                    reg.histograms.insert(name, h);
                }
                _ => return None,
            }
        }
        Some((reg, label))
    }

    /// Drop every entry whose name starts with `prefix`. `metrics diff`
    /// uses this to exclude environment-dependent families (`mem/`,
    /// `pool/`) before a determinism comparison.
    pub fn remove_prefix(&mut self, prefix: &str) {
        self.counters.retain(|k, _| !k.starts_with(prefix));
        self.gauges.retain(|k, _| !k.starts_with(prefix));
        self.histograms.retain(|k, _| !k.starts_with(prefix));
    }

    /// Line-per-difference comparison against `other` (names present
    /// on one side only, or present on both with different values).
    /// Empty means identical.
    pub fn diff(&self, other: &MetricsRegistry) -> Vec<String> {
        let mut out = Vec::new();
        diff_maps("counter", &self.counters, &other.counters, &mut out);
        diff_maps("gauge", &self.gauges, &other.gauges, &mut out);
        let names: std::collections::BTreeSet<&MetricName> =
            self.histograms.keys().chain(other.histograms.keys()).collect();
        for name in names {
            match (self.histograms.get(name), other.histograms.get(name)) {
                (Some(a), Some(b)) if a == b => {}
                (Some(a), Some(b)) => out.push(format!(
                    "hist {}: count {} vs {}, sum {} vs {}, max {} vs {}",
                    name, a.count, b.count, a.sum, b.sum, a.max, b.max
                )),
                (Some(_), None) => out.push(format!("hist {}: only in left", name)),
                (None, Some(_)) => out.push(format!("hist {}: only in right", name)),
                (None, None) => unreachable!(),
            }
        }
        out
    }

    /// Human-readable multi-line report (the `metrics` section of run
    /// reports). Histograms render as `count/mean/min/max`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  {} = {}", k, v);
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "  {} (max) = {}", k, v);
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {} : n={} mean={:.2} min={} max={}",
                k,
                h.count,
                h.mean(),
                h.display_min(),
                h.max
            );
        }
        out
    }
}

fn diff_maps(
    kind: &str,
    a: &BTreeMap<MetricName, u64>,
    b: &BTreeMap<MetricName, u64>,
    out: &mut Vec<String>,
) {
    let names: std::collections::BTreeSet<&MetricName> = a.keys().chain(b.keys()).collect();
    for name in names {
        match (a.get(name), b.get(name)) {
            (Some(x), Some(y)) if x == y => {}
            (Some(x), Some(y)) => out.push(format!("{} {}: {} vs {}", kind, name, x, y)),
            (Some(x), None) => out.push(format!("{} {}: {} vs absent", kind, name, x)),
            (None, Some(y)) => out.push(format!("{} {}: absent vs {}", kind, name, y)),
            (None, None) => unreachable!(),
        }
    }
}

/// A nullable borrow of a [`MetricsRegistry`] — the hot-path handle
/// instrumented code holds, mirroring
/// [`TraceHandle`](crate::tracer::TraceHandle). Disabled is a `None`
/// and every update is a single predictable branch.
#[derive(Default)]
pub struct MetricsHandle<'a>(Option<&'a mut MetricsRegistry>);

impl<'a> MetricsHandle<'a> {
    /// The disabled handle.
    pub fn none() -> Self {
        MetricsHandle(None)
    }

    /// A handle recording into `reg`.
    pub fn to(reg: &'a mut MetricsRegistry) -> Self {
        MetricsHandle(Some(reg))
    }

    /// A handle from an optional registry (the engine's enablement
    /// switch collapses to this one constructor).
    pub fn from_opt(reg: Option<&'a mut MetricsRegistry>) -> Self {
        MetricsHandle(reg)
    }

    /// `true` when updates are being recorded.
    pub fn on(&self) -> bool {
        self.0.is_some()
    }

    /// Add `by` to counter `name`.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        if let Some(reg) = self.0.as_deref_mut() {
            reg.inc(name, by);
        }
    }

    /// Raise gauge `name` to `v` if it is a new maximum.
    pub fn gauge_max(&mut self, name: &'static str, v: u64) {
        if let Some(reg) = self.0.as_deref_mut() {
            reg.gauge_max(name, v);
        }
    }

    /// Record observation `v` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        if let Some(reg) = self.0.as_deref_mut() {
            reg.observe(name, v);
        }
    }

    /// A reborrowed handle with a shorter lifetime (for passing into
    /// nested contexts without giving this one up).
    pub fn reborrow(&mut self) -> MetricsHandle<'_> {
        MetricsHandle(self.0.as_deref_mut())
    }
}

impl std::fmt::Debug for MetricsHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MetricsHandle").field(&self.on()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_bit_length() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(7), 3);
        assert_eq!(hist_bucket(8), 4);
        assert_eq!(hist_bucket(u64::MAX), 64);
        assert_eq!(hist_bucket_floor(0), 0);
        assert_eq!(hist_bucket_floor(1), 1);
        assert_eq!(hist_bucket_floor(4), 8);
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = LogHistogram::default();
        assert_eq!(h.display_min(), 0);
        for v in [3u64, 5, 12] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 20);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 12);
        assert!((h.mean() - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.buckets[hist_bucket(3)], 1);
        assert_eq!(h.buckets[hist_bucket(5)], 1);
        assert_eq!(h.buckets[hist_bucket(12)], 1);
    }

    #[test]
    fn merge_is_order_independent() {
        // Simulate 3 shards recording interleaved updates; any merge
        // order must equal the sequential registry.
        let mut seq = MetricsRegistry::new();
        let mut shards =
            vec![MetricsRegistry::new(), MetricsRegistry::new(), MetricsRegistry::new()];
        for i in 0..100u64 {
            let s = (i % 3) as usize;
            seq.inc("msgs", i);
            shards[s].inc("msgs", i);
            seq.gauge_max("peak", i * 7 % 41);
            shards[s].gauge_max("peak", i * 7 % 41);
            seq.observe("len", i % 9);
            shards[s].observe("len", i % 9);
        }
        let mut fwd = MetricsRegistry::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = MetricsRegistry::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, seq);
        assert_eq!(rev, seq);
    }

    #[test]
    fn jsonl_roundtrips() {
        let mut reg = MetricsRegistry::new();
        reg.inc("engine/messages", 42);
        reg.gauge_max("engine/peak_active", 17);
        reg.observe("arq/ack_rounds", 3);
        reg.observe("arq/ack_rounds", 900);
        let text = reg.to_jsonl("demo");
        let (back, label) = MetricsRegistry::from_jsonl(&text).expect("parses");
        assert_eq!(label, "demo");
        assert_eq!(back, reg);
        assert!(reg.diff(&back).is_empty());
    }

    #[test]
    fn empty_registry_roundtrips() {
        let reg = MetricsRegistry::new();
        let (back, _) = MetricsRegistry::from_jsonl(&reg.to_jsonl("x")).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn diff_reports_each_divergence() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc("only_left", 1);
        a.inc("both", 2);
        b.inc("both", 3);
        b.gauge_max("g", 5);
        a.observe("h", 1);
        b.observe("h", 2);
        let d = a.diff(&b);
        assert_eq!(d.len(), 4, "{:?}", d);
        assert!(d.iter().any(|l| l.contains("only_left")));
        assert!(d.iter().any(|l| l.contains("both: 2 vs 3")));
    }

    #[test]
    fn handle_is_inert_when_off() {
        let mut h = MetricsHandle::none();
        assert!(!h.on());
        h.inc("x", 1);
        h.observe("y", 2);
        h.gauge_max("z", 3);
        let mut reg = MetricsRegistry::new();
        {
            let mut h = MetricsHandle::to(&mut reg);
            assert!(h.on());
            h.inc("x", 1);
            let mut r = h.reborrow();
            r.inc("x", 2);
            h.inc("x", 4);
        }
        assert_eq!(reg.counter("x"), 7);
    }

    #[test]
    fn text_report_lists_everything() {
        let mut reg = MetricsRegistry::new();
        reg.inc("c", 1);
        reg.gauge_max("g", 2);
        reg.observe("h", 3);
        let t = reg.to_text();
        assert!(t.contains("c = 1"));
        assert!(t.contains("g (max) = 2"));
        assert!(t.contains("h : n=1"));
    }
}
