//! Per-message-kind counter rows, accumulated by the engines while a
//! round executes and flushed as [`crate::Event::MsgKind`] rows at the
//! round boundary.

use crate::event::Event;

/// Counter totals for one message kind (within a round for the engine
/// tables, or across a run for aggregating sinks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindTotals {
    /// Messages sent (one per recipient for broadcasts).
    pub sent: u64,
    /// Copies delivered.
    pub delivered: u64,
    /// Copies dropped by the fault plan.
    pub dropped: u64,
    /// Copies corrupted in flight by the fault plan.
    pub corrupted: u64,
    /// Extra copies injected by the fault plan.
    pub duplicated: u64,
}

/// A tiny per-round table of kind → totals. Protocols declare a handful
/// of kinds at most, so lookup is a linear scan; rows are created on
/// first use and reused (zeroed) across rounds to avoid reallocation.
#[derive(Clone, Debug, Default)]
pub struct KindTable {
    rows: Vec<(&'static str, KindTotals)>,
}

impl KindTable {
    /// Fresh empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The (mutable) totals row for `kind`, created zeroed on first use.
    pub fn row(&mut self, kind: &'static str) -> &mut KindTotals {
        // `position` + index instead of `iter_mut().find` keeps the
        // borrow checker happy across the push in the miss path.
        match self.rows.iter().position(|(k, _)| *k == kind) {
            Some(i) => &mut self.rows[i].1,
            None => {
                self.rows.push((kind, KindTotals::default()));
                &mut self.rows.last_mut().unwrap().1
            }
        }
    }

    /// Flush non-empty rows as [`Event::MsgKind`] events for `round`,
    /// sorted by kind name (the canonical order), then zero the rows.
    pub fn flush(&mut self, round: u64, mut emit: impl FnMut(Event)) {
        self.rows.sort_by_key(|(k, _)| *k);
        for (kind, t) in &mut self.rows {
            if *t != KindTotals::default() {
                emit(Event::MsgKind {
                    round,
                    kind,
                    sent: t.sent,
                    delivered: t.delivered,
                    dropped: t.dropped,
                    corrupted: t.corrupted,
                    duplicated: t.duplicated,
                });
                *t = KindTotals::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_accumulate_and_flush_sorted_then_reset() {
        let mut t = KindTable::new();
        t.row("invite").sent += 2;
        t.row("accept").sent += 1;
        t.row("invite").delivered += 2;
        let mut out = Vec::new();
        t.flush(7, |ev| out.push(ev));
        assert_eq!(
            out,
            vec![
                Event::MsgKind {
                    round: 7,
                    kind: "accept",
                    sent: 1,
                    delivered: 0,
                    dropped: 0,
                    corrupted: 0,
                    duplicated: 0,
                },
                Event::MsgKind {
                    round: 7,
                    kind: "invite",
                    sent: 2,
                    delivered: 2,
                    dropped: 0,
                    corrupted: 0,
                    duplicated: 0,
                },
            ]
        );
        let mut again = Vec::new();
        t.flush(8, |ev| again.push(ev));
        assert!(again.is_empty(), "rows are zeroed after a flush");
    }
}
