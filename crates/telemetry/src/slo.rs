//! Service-level-objective accounting for `dima serve`.
//!
//! The serve loop feeds one [`BatchSample`] per committed churn batch
//! (repair rounds, wall time, events, colors changed) plus ingest-side
//! counters (queue depth high-water mark, shed and rejected events)
//! into an [`SloRecorder`]; [`SloRecorder::report`] reduces them to the
//! SLO summary the issue asks for — p50/p99 re-convergence rounds and
//! wall time, churn amplification (colors changed per event), and the
//! backpressure picture — rendered as one flat-JSON line per field
//! group so the artifact stays greppable and machine-readable by
//! [`crate::read::parse_line`].
//!
//! Percentiles use the nearest-rank method (the smallest sample ≥ the
//! requested fraction of the population): exact, deterministic, and
//! meaningful even for a handful of samples.

use crate::writer::json_escape;

/// One committed batch's repair cost, as observed by the serve loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchSample {
    /// Commit sequence number.
    pub seq: u64,
    /// Events in the batch.
    pub events: u64,
    /// Communication rounds from batch application to quiescence.
    pub repair_rounds: u64,
    /// Wall-clock milliseconds from application to quiescence.
    pub wall_ms: f64,
    /// Edges whose color changed across the repair.
    pub colors_changed: u64,
    /// Distinct colors in use once the batch settled (after palette
    /// compaction, when the serve loop runs one).
    pub colors_used: u64,
    /// Colors retired by the post-repair palette compaction (0 when
    /// compaction is off or found nothing to do).
    pub reduction_saved: u64,
}

/// Accumulates serve-session observations into an [`SloReport`].
#[derive(Clone, Debug, Default)]
pub struct SloRecorder {
    batches: Vec<BatchSample>,
    queue_hwm: u64,
    shed_events: u64,
    rejected_events: u64,
    malformed_lines: u64,
    escalations: u64,
    snapshots: u64,
}

impl SloRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one committed batch.
    pub fn batch(&mut self, sample: BatchSample) {
        self.batches.push(sample);
    }

    /// Raise the ingest-queue depth high-water mark to `depth` if it is
    /// the new maximum.
    pub fn queue_depth(&mut self, depth: u64) {
        self.queue_hwm = self.queue_hwm.max(depth);
    }

    /// Count one event dropped by the shed policy (queue full).
    pub fn shed(&mut self) {
        self.shed_events += 1;
    }

    /// Count one event rejected by topology validation.
    pub fn rejected(&mut self) {
        self.rejected_events += 1;
    }

    /// Count one input line that failed to parse.
    pub fn malformed(&mut self) {
        self.malformed_lines += 1;
    }

    /// Count one watchdog (or operator) recolor escalation.
    pub fn escalation(&mut self) {
        self.escalations += 1;
    }

    /// Count one snapshot written.
    pub fn snapshot(&mut self) {
        self.snapshots += 1;
    }

    /// Reduce the observations to a report.
    pub fn report(&self) -> SloReport {
        let mut rounds: Vec<u64> = self.batches.iter().map(|b| b.repair_rounds).collect();
        rounds.sort_unstable();
        let mut wall: Vec<f64> = self.batches.iter().map(|b| b.wall_ms).collect();
        wall.sort_by(f64::total_cmp);
        let total_events: u64 = self.batches.iter().map(|b| b.events).sum();
        let total_changed: u64 = self.batches.iter().map(|b| b.colors_changed).sum();
        let reduction_saved: u64 = self.batches.iter().map(|b| b.reduction_saved).sum();
        SloReport {
            batches: self.batches.len() as u64,
            total_events,
            p50_repair_rounds: percentile_u64(&rounds, 0.50),
            p99_repair_rounds: percentile_u64(&rounds, 0.99),
            max_repair_rounds: rounds.last().copied().unwrap_or(0),
            p50_wall_ms: percentile_f64(&wall, 0.50),
            p99_wall_ms: percentile_f64(&wall, 0.99),
            churn_amplification: if total_events == 0 {
                0.0
            } else {
                total_changed as f64 / total_events as f64
            },
            queue_hwm: self.queue_hwm,
            shed_events: self.shed_events,
            rejected_events: self.rejected_events,
            malformed_lines: self.malformed_lines,
            escalations: self.escalations,
            snapshots: self.snapshots,
            colors_used: self.batches.last().map_or(0, |b| b.colors_used),
            reduction_saved,
        }
    }
}

/// The reduced serve-session SLO summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloReport {
    /// Batches committed.
    pub batches: u64,
    /// Events across all committed batches.
    pub total_events: u64,
    /// Median repair length in communication rounds.
    pub p50_repair_rounds: u64,
    /// 99th-percentile repair length in rounds (nearest rank).
    pub p99_repair_rounds: u64,
    /// Worst repair length in rounds.
    pub max_repair_rounds: u64,
    /// Median repair wall time.
    pub p50_wall_ms: f64,
    /// 99th-percentile repair wall time (nearest rank).
    pub p99_wall_ms: f64,
    /// Colors changed per churn event across the session.
    pub churn_amplification: f64,
    /// Ingest-queue depth high-water mark.
    pub queue_hwm: u64,
    /// Events dropped by the shed policy.
    pub shed_events: u64,
    /// Events rejected by validation.
    pub rejected_events: u64,
    /// Input lines that failed to parse.
    pub malformed_lines: u64,
    /// Recolor escalations.
    pub escalations: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Distinct colors in use after the most recent settled batch — the
    /// session's closing quality figure.
    pub colors_used: u64,
    /// Colors retired by palette compaction across the session.
    pub reduction_saved: u64,
}

impl SloReport {
    /// Render as flat JSONL (a `serve-slo` summary line; floats carried
    /// both human-readably and as exact bit patterns so
    /// [`crate::read::parse_line`] round-trips them).
    pub fn to_jsonl(&self, label: &str) -> String {
        format!(
            "{{\"type\":\"serve-slo\",\"label\":\"{}\",\"batches\":{},\
             \"total_events\":{},\"p50_repair_rounds\":{},\"p99_repair_rounds\":{},\
             \"max_repair_rounds\":{},\"p50_wall_ms_bits\":{},\"p99_wall_ms_bits\":{},\
             \"amplification_bits\":{},\"queue_hwm\":{},\"shed_events\":{},\
             \"rejected_events\":{},\"malformed_lines\":{},\"escalations\":{},\
             \"snapshots\":{},\"colors_used\":{},\"reduction_saved\":{}}}\n",
            json_escape(label),
            self.batches,
            self.total_events,
            self.p50_repair_rounds,
            self.p99_repair_rounds,
            self.max_repair_rounds,
            self.p50_wall_ms.to_bits(),
            self.p99_wall_ms.to_bits(),
            self.churn_amplification.to_bits(),
            self.queue_hwm,
            self.shed_events,
            self.rejected_events,
            self.malformed_lines,
            self.escalations,
            self.snapshots,
            self.colors_used,
            self.reduction_saved,
        )
    }

    /// Human-readable multi-line summary for stderr.
    pub fn to_text(&self) -> String {
        format!(
            "serve SLO: {} batches / {} events\n\
             repair rounds p50 {} p99 {} max {}\n\
             repair wall ms p50 {:.3} p99 {:.3}\n\
             churn amplification {:.3} colors/event\n\
             colors used {} (compaction retired {})\n\
             queue hwm {} shed {} rejected {} malformed {}\n\
             escalations {} snapshots {}\n",
            self.batches,
            self.total_events,
            self.p50_repair_rounds,
            self.p99_repair_rounds,
            self.max_repair_rounds,
            self.p50_wall_ms,
            self.p99_wall_ms,
            self.churn_amplification,
            self.colors_used,
            self.reduction_saved,
            self.queue_hwm,
            self.shed_events,
            self.rejected_events,
            self.malformed_lines,
            self.escalations,
            self.snapshots,
        )
    }
}

/// Nearest-rank percentile of a sorted slice: the smallest element
/// whose rank covers fraction `q` of the population. Empty input
/// yields 0.
pub fn percentile_u64(sorted: &[u64], q: f64) -> u64 {
    match nearest_rank(sorted.len(), q) {
        Some(i) => sorted[i],
        None => 0,
    }
}

/// [`percentile_u64`] for floats (input sorted by `total_cmp`). Empty
/// input yields 0.0.
pub fn percentile_f64(sorted: &[f64], q: f64) -> f64 {
    match nearest_rank(sorted.len(), q) {
        Some(i) => sorted[i],
        None => 0.0,
    }
}

fn nearest_rank(len: usize, q: f64) -> Option<usize> {
    if len == 0 {
        return None;
    }
    let rank = (q * len as f64).ceil() as usize;
    Some(rank.clamp(1, len) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::parse_line;

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_u64(&v, 0.50), 50);
        assert_eq!(percentile_u64(&v, 0.99), 99);
        assert_eq!(percentile_u64(&v, 1.0), 100);
        assert_eq!(percentile_u64(&[7], 0.99), 7);
        assert_eq!(percentile_u64(&[], 0.5), 0);
        assert_eq!(percentile_u64(&[3, 9], 0.50), 3);
        assert_eq!(percentile_u64(&[3, 9], 0.51), 9);
        assert_eq!(percentile_f64(&[1.5, 2.5], 0.5), 1.5);
    }

    #[test]
    fn recorder_reduces_and_renders() {
        let mut rec = SloRecorder::new();
        for (i, rounds) in [4u64, 8, 6, 40].iter().enumerate() {
            rec.batch(BatchSample {
                seq: i as u64 + 1,
                events: 2,
                repair_rounds: *rounds,
                wall_ms: *rounds as f64 * 0.5,
                colors_changed: 3,
                colors_used: 9 - i as u64,
                reduction_saved: 1,
            });
        }
        rec.queue_depth(3);
        rec.queue_depth(17);
        rec.queue_depth(5);
        rec.shed();
        rec.rejected();
        rec.rejected();
        rec.malformed();
        rec.escalation();
        rec.snapshot();
        let r = rec.report();
        assert_eq!(r.batches, 4);
        assert_eq!(r.total_events, 8);
        assert_eq!(r.p50_repair_rounds, 6);
        assert_eq!(r.p99_repair_rounds, 40);
        assert_eq!(r.max_repair_rounds, 40);
        assert_eq!(r.queue_hwm, 17);
        assert_eq!(r.shed_events, 1);
        assert_eq!(r.rejected_events, 2);
        assert!((r.churn_amplification - 1.5).abs() < 1e-12);
        assert_eq!(r.colors_used, 6);
        assert_eq!(r.reduction_saved, 4);
        let line = r.to_jsonl("demo");
        let parsed = parse_line(line.trim()).expect("report line parses");
        assert_eq!(parsed.tag(), Some("serve-slo"));
        assert_eq!(parsed.num("batches"), Some(4));
        assert_eq!(parsed.num("queue_hwm"), Some(17));
        assert_eq!(parsed.num("colors_used"), Some(6));
        assert_eq!(parsed.num("reduction_saved"), Some(4));
        assert_eq!(
            f64::from_bits(parsed.num("amplification_bits").unwrap()),
            r.churn_amplification
        );
        assert!(r.to_text().contains("p50 6 p99 40"));
    }

    #[test]
    fn empty_session_reports_zeroes() {
        let r = SloRecorder::new().report();
        assert_eq!(r.batches, 0);
        assert_eq!(r.p99_repair_rounds, 0);
        assert_eq!(r.churn_amplification, 0.0);
        assert!(parse_line(r.to_jsonl("x").trim()).is_some());
    }
}
