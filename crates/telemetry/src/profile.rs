//! Wall-clock phase timers around the engines' stage boundaries.
//!
//! Profiling is off by default (`EngineConfig::profile`) so that
//! [`PhaseNanos`] stays all-zero and run statistics remain comparable
//! across engines with `==` (the bit-identity tests rely on it).

use std::time::Instant;

/// Nanoseconds spent per engine stage over a whole run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Applying churn batches (topology swap + node re-seeding).
    pub churn: u64,
    /// Stepping protocol state machines (including message staging).
    pub step: u64,
    /// Routing staged messages toward next-round inboxes. Both engines
    /// now deposit in place while stepping, so this is folded into
    /// `step`; the field stays for older profiles and future stages
    /// that batch their routing.
    pub route: u64,
    /// Collecting/delivering messages into inbox arenas.
    pub collect: u64,
    /// Waiting at the parallel engine's round barriers — the
    /// imbalance signal: a shard with large `barrier` relative to its
    /// `step` finished early and idled. Always 0 for the sequential
    /// engine.
    pub barrier: u64,
}

impl PhaseNanos {
    /// Sum of all stages (barrier wait included — it is wall-clock the
    /// worker spent, just not useful work).
    pub fn total(&self) -> u64 {
        self.churn + self.step + self.route + self.collect + self.barrier
    }

    /// Accumulate another reading (used to fold per-worker profiles).
    pub fn add(&mut self, other: PhaseNanos) {
        self.churn += other.churn;
        self.step += other.step;
        self.route += other.route;
        self.collect += other.collect;
        self.barrier += other.barrier;
    }
}

/// A started (or disabled) stage timer. Not RAII: the engine explicitly
/// stops it into the counter for the stage that just ended, which keeps
/// the borrow of the counters out of the hot loop.
#[derive(Clone, Copy, Debug)]
pub struct ProfileScope {
    start: Option<Instant>,
}

impl ProfileScope {
    /// Start timing if `enabled`; otherwise a free no-op.
    pub fn start(enabled: bool) -> Self {
        ProfileScope { start: enabled.then(Instant::now) }
    }

    /// Add the elapsed time to `slot` (no-op when disabled).
    pub fn stop_into(self, slot: &mut u64) {
        if let Some(t) = self.start {
            *slot += t.elapsed().as_nanos() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scope_records_nothing() {
        let mut slot = 0u64;
        ProfileScope::start(false).stop_into(&mut slot);
        assert_eq!(slot, 0);
    }

    #[test]
    fn enabled_scope_accumulates() {
        let mut p = PhaseNanos::default();
        ProfileScope::start(true).stop_into(&mut p.step);
        ProfileScope::start(true).stop_into(&mut p.step);
        assert!(p.total() == p.step);
        let mut q = PhaseNanos::default();
        q.add(p);
        assert_eq!(q, p);
    }
}
