//! Zero-cost-when-off structured telemetry for the DiMa simulator and
//! protocols.
//!
//! The plane has three layers:
//!
//! * **Events** ([`Event`]) — small `Copy` records of automata state
//!   transitions, palette negotiation steps, ARQ link events, churn
//!   batches, per-message-kind counters, and round footers.
//! * **Tracers** ([`Tracer`]) — consumers of the event stream. The
//!   default [`NoopTracer`] carries `ENABLED = false`, which the
//!   engines test as a compile-time constant: with it, the whole plane
//!   monomorphizes away. Production sinks are the bounded-memory
//!   [`StateTimeline`] aggregator and the streaming JSONL
//!   [`TraceWriter`]; [`BufferTracer`] captures raw events for tests,
//!   [`TransportTally`] aggregates the transport counters behind CLI
//!   reports, and [`Tee`] composes two sinks.
//! * **Determinism** — both engines emit the same event sequence for
//!   the same seed. The parallel engine buffers per-worker
//!   ([`ShardBuf`]) and normalizes with [`merge_shards`]; the canonical
//!   order is defined in [`event`].
//!
//! Alongside the event stream sits the **metrics plane** ([`metrics`]):
//! always-cheap aggregate counters, gauges, and log-bucketed
//! histograms behind a nullable [`MetricsHandle`], sharded per worker
//! and merged commutatively so seq/par registries are bit-identical.
//! [`mem`] adds byte-level memory accounting (tracking allocator +
//! peak RSS) for run reports.
//!
//! This crate is dependency-free and knows nothing about graphs or
//! protocols: nodes are `u32` ids, states are `&'static str` labels.

#![deny(missing_docs)]
// `deny` rather than `forbid`: `mem` needs a scoped allow for its
// `GlobalAlloc` impl; everything else stays unsafe-free.
#![deny(unsafe_code)]

pub mod event;
pub mod kinds;
pub mod mem;
pub mod metrics;
pub mod profile;
pub mod read;
pub mod slo;
pub mod timeline;
pub mod tracer;
pub mod writer;

pub use event::{merge_shards, ArqEventKind, Event, PaletteAction, Stamped};
pub use kinds::{KindTable, KindTotals};
pub use mem::{CountingAlloc, MemReport};
pub use metrics::{LogHistogram, MetricsHandle, MetricsRegistry};
pub use profile::{PhaseNanos, ProfileScope};
pub use slo::{percentile_f64, percentile_u64, BatchSample, SloRecorder, SloReport};
pub use timeline::{RoundSnapshot, StateTimeline, STATES};
pub use tracer::{
    BufferTracer, EventSink, LinkClass, LinkClassTotals, NoopTracer, ShardBuf, Tee, TraceHandle,
    Tracer, TransportTally,
};
pub use writer::{json_escape, RunTotals, TraceMeta, TraceWriter, SCHEMA_VERSION};
