//! Offline drop-in subset of `parking_lot`: a non-poisoning [`Mutex`].
//!
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered rather than
//! propagated, matching parking_lot's non-poisoning semantics.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::TryLockError;

/// A guard releasing the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
