//! Offline drop-in subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! exactly the little-endian accessors this workspace's wire codecs use.
//! The implementation is a plain `Vec<u8>` with a read cursor — no
//! refcounted zero-copy splitting, which the codecs do not need.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::ops::{Bound, Deref, DerefMut, RangeBounds};

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Bytes remaining in view.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// `true` if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of a sub-range of the current view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let view = &self.data[self.start..];
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => view.len(),
        };
        Bytes { data: view[lo..hi].to_vec(), start: 0 }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec(), start: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, start: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// Sequential big-bag-of-bytes reader.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// `true` if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte. Panics on underflow.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`. Panics on underflow.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Read a little-endian `u32`. Panics on underflow.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a little-endian `u64`. Panics on underflow.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, start: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut { data: data.to_vec() }
    }
}

/// Sequential byte writer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0102_0304_0506_0708);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b: Bytes = vec![1, 2, 3, 4, 5].into();
        b.advance(1);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        assert_eq!(&b.slice(1..3)[..], &[3, 4]);
        assert_eq!(&b.slice(..)[..], &[2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b: Bytes = vec![1u8].into();
        b.advance(2);
    }
}
