//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the patterns this workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(..)]` and `name in strategy`
//! arguments, range/tuple/`Just`/`prop_oneof!` strategies, `prop_map`,
//! `any::<T>()`, `collection::{vec, btree_set}`, and the `prop_assert*`
//! macros. No shrinking: a failing case reports its case index and the
//! deterministic runner seed, which reproduces it exactly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Commonly imported items.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn it_holds(x in 0u32..10, y in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strat,)+);
            let outcome = runner.run(&strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(msg) = outcome {
                panic!("{}", msg);
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a property test, failing the case (with an
/// optional formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            concat!("assertion failed: ", stringify!($left), " == ", stringify!($right))
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert two values differ inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            concat!("assertion failed: ", stringify!($left), " != ", stringify!($right))
        );
    }};
}

/// Choose uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
