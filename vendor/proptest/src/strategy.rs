//! Value-generation strategies.

use core::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of some type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_just_union_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[(u.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
        let (a, b) = (0usize..3, 5i64..6).generate(&mut rng);
        assert!(a < 3);
        assert_eq!(b, 5);
    }
}
