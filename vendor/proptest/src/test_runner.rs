//! The case runner and its configuration.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A failed test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Fixed base seed: runs are fully deterministic, so a failing case index
/// identifies the exact input.
const RUNNER_SEED: u64 = 0x5EED_1E57_CA5E_0001;

/// Drives a strategy through a test closure for the configured number of
/// cases.
pub struct TestRunner {
    config: ProptestConfig,
    rng: SmallRng,
}

impl TestRunner {
    /// Build a runner with a deterministic RNG.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config, rng: SmallRng::seed_from_u64(RUNNER_SEED) }
    }

    /// Run `test` on `config.cases` generated inputs; the first failure
    /// aborts with its case index.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> TestCaseResult,
    ) -> Result<(), String> {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            if let Err(e) = test(value) {
                return Err(format!(
                    "proptest failed at case {case} of {} (seed {RUNNER_SEED:#x}): {e}",
                    self.config.cases
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_configured_cases_and_reports_failure() {
        let mut runner = TestRunner::new(ProptestConfig { cases: 10, ..ProptestConfig::default() });
        let mut seen = 0;
        runner
            .run(&(0u32..5), |v| {
                assert!(v < 5);
                seen += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, 10);

        let mut runner = TestRunner::new(ProptestConfig { cases: 10, ..ProptestConfig::default() });
        let err = runner.run(&(0u32..5), |_| Err(TestCaseError::fail("boom"))).unwrap_err();
        assert!(err.contains("boom") && err.contains("case 0"));
    }
}
