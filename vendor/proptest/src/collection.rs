//! Collection strategies: `vec` and `btree_set`.

use core::ops::Range;
use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate vectors of elements from `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`
/// (duplicates may make the realised set smaller).
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate ordered sets of elements from `element`.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
        let target = if self.size.is_empty() {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        let mut set = BTreeSet::new();
        // Bounded attempts: element domains smaller than `target` must not
        // loop forever.
        for _ in 0..target.saturating_mul(4) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = vec(0u32..5, 1..4);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_bounded_and_sorted() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = btree_set(0u32..10, 0..8);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 8);
            assert!(set.iter().all(|&x| x < 10));
        }
    }
}
