//! The `any::<T>()` strategy over types with a canonical distribution.

use core::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical "any value" distribution.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.random()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}
