//! Offline drop-in subset of the `criterion` API.
//!
//! Each benchmark closure is executed a small fixed number of times and
//! the mean wall-clock time is printed — enough to smoke-test the bench
//! targets and get rough numbers without the statistics machinery.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// How many times [`Bencher::iter`] runs its closure.
const ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub runs a fixed iteration
    /// count regardless.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.name, &id.0);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// Just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Runs and times a benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Time `f`, running it [`ITERS`] times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(f());
        }
        self.nanos_per_iter = Some(start.elapsed().as_nanos() as f64 / ITERS as f64);
    }

    fn report(&self, group: &str, id: &str) {
        match self.nanos_per_iter {
            Some(ns) => println!("bench {group}/{id}: {:.1} µs/iter", ns / 1000.0),
            None => println!("bench {group}/{id}: no measurement"),
        }
    }
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = 0;
        group.sample_size(10);
        group.bench_function("a", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert_eq!(ran, ITERS);
    }
}
