//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! This workspace builds in environments with no registry access, so the
//! handful of `rand` items it actually uses are vendored here: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits and [`rngs::SmallRng`]
//! (xoshiro256++, the same family upstream `SmallRng` uses on 64-bit
//! targets). Streams are deterministic per seed but are **not**
//! bit-compatible with upstream `rand` — everything in this repo derives
//! its expectations from these streams, so that is fine.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;

/// A low-level source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG (the subset of the
/// `StandardUniform` distribution this workspace uses).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        f64::sample(self) < p
    }

    /// A uniform draw from `range`.
    #[inline]
    fn random_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly imported items.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(2);
        assert_ne!(SmallRng::seed_from_u64(1).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_bias_is_respected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.random_range(2usize..9);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(0u32..=3);
            assert!(v <= 3);
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 30_000;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            let rate = b as f64 / n as f64;
            assert!((rate - 0.1).abs() < 0.02, "bucket rate {rate}");
        }
    }
}
