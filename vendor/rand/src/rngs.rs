//! Concrete RNGs: a small, fast, non-cryptographic generator.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the generator family upstream `rand` uses for
/// `SmallRng` on 64-bit targets. Fast, 256-bit state, passes BigCrush.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed through SplitMix64, the expansion the
        // xoshiro authors recommend; it cannot produce the all-zero state.
        let mut sm = state;
        SmallRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonzero_state_from_zero_seed() {
        let rng = SmallRng::seed_from_u64(0);
        assert!(rng.s.iter().any(|&w| w != 0));
    }

    #[test]
    fn reference_vector() {
        // xoshiro256++ with state {1, 2, 3, 4}: first output is
        // rotl(1 + 4, 23) + 1 = 5 << 23 | 0 ... computed directly.
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 5u64.rotate_left(23).wrapping_add(1));
    }
}
