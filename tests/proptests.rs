//! Property-based tests of the core invariants: every run of every
//! algorithm produces verified output with the paper's bounds, on
//! arbitrary random graphs.

use dima::baselines::{greedy_edge_coloring, misra_gries_edge_coloring, EdgeOrder};
use dima::core::verify::{
    count_colors, verify_edge_coloring, verify_matching, verify_strong_coloring,
};
use dima::core::{color_edges, maximal_matching, strong_color_digraph, ColoringConfig};
use dima::graph::gen::erdos_renyi_gnm;
use dima::graph::{Digraph, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..36, 0usize..70, any::<u64>()).prop_map(|(n, m_pct, seed)| {
        let max = n * (n - 1) / 2;
        let m = (max * m_pct / 100).min(max);
        let mut rng = SmallRng::seed_from_u64(seed);
        erdos_renyi_gnm(n, m, &mut rng).expect("valid parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Proposition 2 + Proposition 3: DiMaEC colorings are always proper,
    /// complete, and within 2Δ−1 colors.
    #[test]
    fn dimaec_always_proper_and_bounded(g in arb_graph(), seed in any::<u64>()) {
        let r = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
        prop_assert!(r.endpoint_agreement);
        prop_assert!(verify_edge_coloring(&g, &r.colors).is_ok());
        let delta = g.max_degree();
        if delta > 0 {
            prop_assert!(r.colors_used < 2 * delta);
        }
    }

    /// The matching automata always yields a valid *maximal* matching.
    #[test]
    fn matching_always_valid_and_maximal(g in arb_graph(), seed in any::<u64>()) {
        let m = maximal_matching(&g, &ColoringConfig::seeded(seed)).unwrap();
        prop_assert!(m.agreement);
        prop_assert!(verify_matching(&g, &m.pairs).is_ok());
        let mut matched = vec![false; g.num_vertices()];
        for &(u, v) in &m.pairs {
            matched[u.index()] = true;
            matched[v.index()] = true;
        }
        for (_, (u, v)) in g.edges() {
            prop_assert!(matched[u.index()] || matched[v.index()], "not maximal at ({u},{v})");
        }
    }

    /// Proposition 5: DiMa2ED colorings satisfy Definition 2, always.
    #[test]
    fn dima2ed_always_proper(g in arb_graph(), seed in any::<u64>()) {
        let d = Digraph::symmetric_closure(&g);
        let r = strong_color_digraph(&d, &ColoringConfig::seeded(seed)).unwrap();
        prop_assert!(r.endpoint_agreement);
        prop_assert!(verify_strong_coloring(&d, &r.colors).is_ok());
    }

    /// Misra–Gries is always within Vizing's bound, and never worse than
    /// greedy's worst case.
    #[test]
    fn misra_gries_always_within_vizing(g in arb_graph()) {
        let colors = misra_gries_edge_coloring(&g);
        prop_assert!(verify_edge_coloring(&g, &colors).is_ok());
        prop_assert!(count_colors(&colors) <= g.max_degree() + 1);
    }

    /// Greedy first-fit is proper and within 2Δ−1 for any order seed.
    #[test]
    fn greedy_always_proper(g in arb_graph(), order_seed in any::<u64>()) {
        let colors = greedy_edge_coloring(&g, &EdgeOrder::Random { seed: order_seed });
        prop_assert!(verify_edge_coloring(&g, &colors).is_ok());
        let delta = g.max_degree();
        if delta > 0 {
            prop_assert!(count_colors(&colors) < 2 * delta);
        }
    }

    /// DiMaEC never does worse than the worst-case bound even with biased
    /// coins and alternative response policies.
    #[test]
    fn dimaec_bounds_hold_under_config_sweep(
        g in arb_graph(),
        seed in any::<u64>(),
        p_step in 1u32..10,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            dima::core::ResponsePolicy::Random,
            dima::core::ResponsePolicy::FirstSender,
            dima::core::ResponsePolicy::LowestColor,
        ][policy_idx];
        let cfg = ColoringConfig {
            invite_probability: p_step as f64 / 10.0,
            response_policy: policy,
            ..ColoringConfig::seeded(seed)
        };
        let r = color_edges(&g, &cfg).unwrap();
        prop_assert!(verify_edge_coloring(&g, &r.colors).is_ok());
        let delta = g.max_degree();
        if delta > 0 {
            prop_assert!(r.colors_used < 2 * delta);
        }
    }
}
