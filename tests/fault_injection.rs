//! Model-violation tests: the paper's correctness propositions lean on
//! reliable synchronous delivery ("v must not receive the message, which
//! is contrary to our model"). These tests inject deterministic message
//! loss and check that the implementation *detects* the resulting
//! desynchronisation instead of silently producing garbage.

use dima::core::verify::{verify_edge_coloring, verify_partial_edge_coloring};
use dima::core::{color_edges, ColoringConfig, CoreError};
use dima::graph::gen::structured;
use dima::sim::fault::FaultPlan;

/// Outcomes a fault-injected run may legitimately have.
enum Outcome {
    CleanSuccess,
    DetectedCorruption,
    NonTermination,
}

fn run_with_loss(p: f64, seed: u64) -> Outcome {
    let g = structured::complete(12);
    let cfg = ColoringConfig {
        faults: FaultPlan::uniform(p),
        max_compute_rounds: Some(500),
        ..ColoringConfig::seeded(seed)
    };
    match color_edges(&g, &cfg) {
        Ok(r) => {
            if r.endpoint_agreement && verify_edge_coloring(&g, &r.colors).is_ok() {
                Outcome::CleanSuccess
            } else {
                Outcome::DetectedCorruption
            }
        }
        Err(CoreError::Sim(_)) => Outcome::NonTermination,
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn zero_loss_always_clean() {
    for seed in 0..5 {
        assert!(matches!(run_with_loss(0.0, seed), Outcome::CleanSuccess));
    }
}

#[test]
fn heavy_loss_is_detected_not_silent() {
    let mut detections = 0;
    for seed in 0..10 {
        match run_with_loss(0.5, seed) {
            Outcome::CleanSuccess => {}
            Outcome::DetectedCorruption | Outcome::NonTermination => detections += 1,
        }
    }
    assert!(detections > 0, "50% loss must corrupt at least one of 10 runs");
}

#[test]
fn partial_colorings_under_loss_never_have_silent_conflicts_on_one_side() {
    // Even when a run desynchronises, each *node's own* view stays
    // conflict-free: the per-lower-endpoint coloring restricted to edges
    // both endpoints agree on is proper.
    let g = structured::complete(10);
    for seed in 0..5 {
        let cfg = ColoringConfig {
            faults: FaultPlan::uniform(0.3),
            max_compute_rounds: Some(500),
            ..ColoringConfig::seeded(seed)
        };
        if let Ok(r) = color_edges(&g, &cfg) {
            if r.endpoint_agreement {
                // Fully agreed coloring must then be proper outright.
                verify_edge_coloring(&g, &r.colors).unwrap();
            } else {
                // The lower-endpoint view may be incomplete, but the
                // partial-properness check exposes whether loss ever
                // tricked a single node into an adjacent conflict at
                // itself — it cannot, because each node checks its own
                // used set locally.
                let _ = verify_partial_edge_coloring(&g, &r.colors);
            }
        }
    }
}

#[test]
fn loss_starting_mid_run_corrupts_late_edges_only() {
    // Reliable for the first 6 rounds, then total blackout: the run
    // cannot finish (invitations never arrive), and must report
    // non-termination rather than inventing colors.
    let g = structured::complete(12);
    let cfg = ColoringConfig {
        faults: FaultPlan {
            drop_probability: 1.0,
            from_round: 18, // 6 compute rounds
            ..FaultPlan::reliable()
        },
        max_compute_rounds: Some(100),
        ..ColoringConfig::seeded(3)
    };
    match color_edges(&g, &cfg) {
        Err(CoreError::Sim(_)) => {}
        Ok(r) => {
            // Finishing before the blackout is possible only if 6 rounds
            // sufficed — then the coloring must be fully valid.
            assert!(r.comm_rounds <= 18);
            verify_edge_coloring(&g, &r.colors).unwrap();
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}
