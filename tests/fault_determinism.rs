//! Cross-engine fault determinism: every fault decision is a pure
//! function of `(seed, round, sender, receiver, k)`, never of engine
//! scheduling, so the sequential reference engine and the sharded
//! parallel engine must produce bit-identical runs under *any*
//! [`FaultPlan`] — same colors, same survivors, same drop/corruption
//! counters, same transport overhead.

use dima::core::{color_edges, maximal_matching, ColoringConfig, Engine, Transport};
use dima::graph::gen::structured;
use dima::sim::fault::FaultPlan;

/// One representative plan per fault mechanism, plus combinations.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("reliable", FaultPlan::reliable()),
        ("uniform-loss", FaultPlan::uniform(0.15)),
        ("bursty-loss", FaultPlan::bursty(0.02, 0.6)),
        ("corrupting", FaultPlan { corrupt_probability: 0.1, ..FaultPlan::reliable() }),
        ("duplicating", FaultPlan { duplicate_probability: 0.25, ..FaultPlan::reliable() }),
        ("crash-stop", FaultPlan::crashing(0.2, 3)),
        (
            "kitchen-sink",
            FaultPlan {
                corrupt_probability: 0.05,
                duplicate_probability: 0.1,
                crash_fraction: 0.1,
                crash_from_round: 6,
                ..FaultPlan::uniform(0.1)
            },
        ),
    ]
}

fn cfg(seed: u64, engine: Engine, plan: &FaultPlan) -> ColoringConfig {
    ColoringConfig {
        engine,
        faults: plan.clone(),
        // The ARQ layer guarantees termination under every plan above,
        // so the comparison never races a round-budget abort.
        transport: Transport::reliable(),
        ..ColoringConfig::seeded(seed)
    }
}

#[test]
fn engines_agree_bit_for_bit_under_every_fault_plan() {
    let g = structured::complete(10);
    for (name, plan) in plans() {
        for seed in [11, 29] {
            let seq = color_edges(&g, &cfg(seed, Engine::Sequential, &plan)).unwrap();
            for threads in [2, 4] {
                let par = color_edges(&g, &cfg(seed, Engine::Parallel { threads }, &plan)).unwrap();
                let tag = format!("plan {name}, seed {seed}, {threads} threads");
                assert_eq!(seq.colors, par.colors, "colors diverge: {tag}");
                assert_eq!(seq.alive, par.alive, "crash sets diverge: {tag}");
                assert_eq!(seq.comm_rounds, par.comm_rounds, "rounds diverge: {tag}");
                assert_eq!(
                    seq.transport_overhead_rounds, par.transport_overhead_rounds,
                    "transport overhead diverges: {tag}"
                );
                // Covers dropped / corrupted / duplicated / crashed
                // counters and message totals in one comparison.
                assert_eq!(seq.stats, par.stats, "fault counters diverge: {tag}");
            }
        }
    }
}

#[test]
fn matching_is_engine_independent_under_combined_faults() {
    let g = structured::complete(12);
    let plan = FaultPlan {
        duplicate_probability: 0.1,
        crash_fraction: 0.15,
        crash_from_round: 2,
        ..FaultPlan::uniform(0.1)
    };
    for seed in 0..3 {
        let seq = maximal_matching(&g, &cfg(seed, Engine::Sequential, &plan)).unwrap();
        let par = maximal_matching(&g, &cfg(seed, Engine::Parallel { threads: 3 }, &plan)).unwrap();
        assert_eq!(seq.pairs, par.pairs, "seed {seed}");
        assert_eq!(seq.pair_round, par.pair_round, "seed {seed}");
        assert_eq!(seq.alive, par.alive, "seed {seed}");
        assert_eq!(seq.stats, par.stats, "seed {seed}");
    }
}

#[test]
fn armed_but_never_firing_faults_leave_the_run_untouched() {
    // Fault decisions draw from their own splitmix64 streams, never
    // from the node RNGs: a plan whose mechanisms only arm far beyond
    // termination must be bit-identical to the reliable plan.
    let g = structured::complete(12);
    for seed in 0..3 {
        let clean = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
        let armed = color_edges(
            &g,
            &ColoringConfig {
                faults: FaultPlan {
                    drop_probability: 0.9,
                    corrupt_probability: 0.9,
                    duplicate_probability: 0.9,
                    from_round: 1_000_000,
                    crash_fraction: 1.0,
                    crash_from_round: 1_000_000,
                    ..FaultPlan::reliable()
                },
                ..ColoringConfig::seeded(seed)
            },
        )
        .unwrap();
        assert_eq!(clean.colors, armed.colors, "seed {seed}");
        assert_eq!(clean.comm_rounds, armed.comm_rounds, "seed {seed}");
        assert_eq!(clean.stats, armed.stats, "seed {seed}");
        assert!(armed.alive.iter().all(|&a| a), "nobody crashed before round 10^6");
    }
}
