//! Property tests: the sequential and parallel engines are bit-identical
//! for every protocol in the workspace, across random graphs, seeds and
//! thread counts. This is the determinism guarantee the experiment
//! methodology rests on.

use dima::baselines::random_trial_coloring;
use dima::core::{
    color_edges, color_edges_churn, maximal_matching, strong_color_churn, strong_color_digraph,
    ChurnPlan, ChurnSchedule, ColoringConfig, Engine,
};
use dima::graph::gen::erdos_renyi_gnm;
use dima::graph::{Digraph, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    // (n, edge-density proxy, generator seed)
    (2usize..40, 0usize..60, any::<u64>()).prop_map(|(n, m_pct, seed)| {
        let max = n * (n - 1) / 2;
        let m = (max * m_pct / 100).min(max);
        let mut rng = SmallRng::seed_from_u64(seed);
        erdos_renyi_gnm(n, m, &mut rng).expect("valid parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn edge_coloring_engines_agree(g in arb_graph(), seed in any::<u64>(), threads in 2usize..6) {
        let seq = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
        let par = color_edges(
            &g,
            &ColoringConfig { engine: Engine::Parallel { threads }, ..ColoringConfig::seeded(seed) },
        )
        .unwrap();
        prop_assert_eq!(&seq.colors, &par.colors);
        prop_assert_eq!(seq.comm_rounds, par.comm_rounds);
        prop_assert_eq!(seq.stats.messages_sent, par.stats.messages_sent);
        prop_assert_eq!(seq.stats.deliveries, par.stats.deliveries);
    }

    #[test]
    fn matching_engines_agree(g in arb_graph(), seed in any::<u64>(), threads in 2usize..6) {
        let seq = maximal_matching(&g, &ColoringConfig::seeded(seed)).unwrap();
        let par = maximal_matching(
            &g,
            &ColoringConfig { engine: Engine::Parallel { threads }, ..ColoringConfig::seeded(seed) },
        )
        .unwrap();
        prop_assert_eq!(&seq.pairs, &par.pairs);
        prop_assert_eq!(&seq.pair_round, &par.pair_round);
        prop_assert_eq!(seq.comm_rounds, par.comm_rounds);
    }

    #[test]
    fn strong_coloring_engines_agree(g in arb_graph(), seed in any::<u64>(), threads in 2usize..6) {
        let d = Digraph::symmetric_closure(&g);
        let seq = strong_color_digraph(&d, &ColoringConfig::seeded(seed)).unwrap();
        let par = strong_color_digraph(
            &d,
            &ColoringConfig { engine: Engine::Parallel { threads }, ..ColoringConfig::seeded(seed) },
        )
        .unwrap();
        prop_assert_eq!(&seq.colors, &par.colors);
        prop_assert_eq!(seq.comm_rounds, par.comm_rounds);
    }

    #[test]
    fn random_trial_engines_agree(g in arb_graph(), seed in any::<u64>(), threads in 2usize..6) {
        let seq = random_trial_coloring(&g, &ColoringConfig::seeded(seed)).unwrap();
        let par = random_trial_coloring(
            &g,
            &ColoringConfig { engine: Engine::Parallel { threads }, ..ColoringConfig::seeded(seed) },
        )
        .unwrap();
        prop_assert_eq!(&seq.colors, &par.colors);
        prop_assert_eq!(seq.comm_rounds, par.comm_rounds);
    }

    #[test]
    fn churn_edge_coloring_engines_agree(
        g in arb_graph(),
        seed in any::<u64>(),
        churn_seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let schedule = ChurnSchedule::generate(&g, &ChurnPlan::new(churn_seed, 0.2));
        let seq = color_edges_churn(&g, &schedule, &ColoringConfig::seeded(seed)).unwrap();
        let par = color_edges_churn(
            &g,
            &schedule,
            &ColoringConfig { engine: Engine::Parallel { threads }, ..ColoringConfig::seeded(seed) },
        )
        .unwrap();
        prop_assert_eq!(&seq.coloring.colors, &par.coloring.colors);
        prop_assert_eq!(seq.coloring.comm_rounds, par.coloring.comm_rounds);
        prop_assert_eq!(seq.coloring.stats.messages_sent, par.coloring.stats.messages_sent);
        prop_assert_eq!(seq.coloring.stats.deliveries, par.coloring.stats.deliveries);
        prop_assert_eq!(&seq.batches, &par.batches);
    }

    #[test]
    fn churn_strong_coloring_engines_agree(
        g in arb_graph(),
        seed in any::<u64>(),
        churn_seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let schedule = ChurnSchedule::generate(&g, &ChurnPlan::new(churn_seed, 0.2));
        let seq = strong_color_churn(&g, &schedule, &ColoringConfig::seeded(seed)).unwrap();
        let par = strong_color_churn(
            &g,
            &schedule,
            &ColoringConfig { engine: Engine::Parallel { threads }, ..ColoringConfig::seeded(seed) },
        )
        .unwrap();
        prop_assert_eq!(&seq.coloring.colors, &par.coloring.colors);
        prop_assert_eq!(seq.coloring.comm_rounds, par.coloring.comm_rounds);
        prop_assert_eq!(seq.coloring.stats.messages_sent, par.coloring.stats.messages_sent);
        prop_assert_eq!(&seq.batches, &par.batches);
    }

    #[test]
    fn same_seed_same_result_repeated(g in arb_graph(), seed in any::<u64>()) {
        let a = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
        let b = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
        prop_assert_eq!(a.colors, b.colors);
        prop_assert_eq!(a.comm_rounds, b.comm_rounds);
    }
}
