//! Acceptance tests for the reliable-link (ARQ) layer: lossy links
//! become invisible to the DiMa protocols — the inner run is
//! bit-identical to a fault-free bare run, with retransmission cost
//! reported separately — and crash-stopped peers degrade gracefully
//! into verified residual outputs instead of hangs or garbage.

use dima::core::verify::{
    verify_edge_coloring, verify_residual_edge_coloring, verify_residual_matching,
    verify_residual_strong_coloring,
};
use dima::core::{
    color_edges, maximal_matching, strong_color_digraph, ColoringConfig, CoreError, Transport,
};
use dima::graph::gen::structured;
use dima::graph::Digraph;
use dima::sim::fault::FaultPlan;

const LOSS: f64 = 0.2;

fn lossy(seed: u64, transport: Transport) -> ColoringConfig {
    ColoringConfig { faults: FaultPlan::uniform(LOSS), transport, ..ColoringConfig::seeded(seed) }
}

#[test]
fn fifty_of_fifty_lossy_runs_are_clean_under_arq() {
    // The ISSUE acceptance bar: 20% uniform loss on K12, 50 seeded
    // runs, every single one must agree endpoint-to-endpoint and
    // verify — and must equal the fault-free bare run bit for bit
    // (the ARQ wrapper draws nothing from the node RNG streams).
    let g = structured::complete(12);
    let (mut dropped, mut overhead) = (0u64, 0u64);
    for seed in 0..50 {
        let r = color_edges(&g, &lossy(seed, Transport::reliable())).unwrap();
        assert!(r.endpoint_agreement, "seed {seed}");
        verify_edge_coloring(&g, &r.colors).unwrap_or_else(|v| panic!("seed {seed}: {v}"));

        let clean = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
        assert_eq!(r.colors, clean.colors, "seed {seed}: inner run perturbed by loss");
        assert_eq!(r.comm_rounds, clean.comm_rounds, "seed {seed}");
        assert_eq!(
            r.comm_rounds + r.transport_overhead_rounds,
            r.stats.rounds,
            "seed {seed}: overhead accounting"
        );
        dropped += r.stats.dropped;
        overhead += r.transport_overhead_rounds;
    }
    assert!(dropped > 0, "20% loss must actually drop deliveries");
    assert!(overhead > 0, "recovering from loss must cost engine rounds");
}

#[test]
fn bare_transport_at_the_same_loss_rate_is_corrupted() {
    // Counterpoint to the test above: without the ARQ layer the same
    // loss rate must visibly corrupt at least one of the 50 runs
    // (desynchronised endpoints or a round-budget abort).
    let g = structured::complete(12);
    let mut corrupted = 0;
    for seed in 0..50 {
        let cfg = ColoringConfig { max_compute_rounds: Some(300), ..lossy(seed, Transport::Bare) };
        match color_edges(&g, &cfg) {
            Ok(r) => {
                if !r.endpoint_agreement || verify_edge_coloring(&g, &r.colors).is_err() {
                    corrupted += 1;
                }
            }
            Err(CoreError::Sim(_)) => corrupted += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(corrupted >= 1, "bare links at 20% loss never corrupted any of 50 runs");
}

#[test]
fn lossy_matching_and_strong_coloring_are_clean_under_arq() {
    let g = structured::complete(12);
    let d = Digraph::symmetric_closure(&g);
    for seed in 0..10 {
        let m = maximal_matching(&g, &lossy(seed, Transport::reliable())).unwrap();
        assert!(m.agreement, "matching seed {seed}");
        assert_eq!(m.pairs, maximal_matching(&g, &ColoringConfig::seeded(seed)).unwrap().pairs);

        let s = strong_color_digraph(&d, &lossy(seed, Transport::reliable())).unwrap();
        assert!(s.endpoint_agreement, "strong seed {seed}");
        let clean = strong_color_digraph(&d, &ColoringConfig::seeded(seed)).unwrap();
        assert_eq!(s.colors, clean.colors, "strong seed {seed}");
    }
}

#[test]
fn crash_stop_runs_terminate_with_proper_residual_outputs() {
    // 10% crash fraction arming mid-run (computation rounds 2..4-ish):
    // every protocol must still terminate, and the survivors' outputs
    // must pass the residual verifiers — proper where both endpoints
    // live, maximal/complete on the residual graph.
    let g = structured::complete(12);
    let d = Digraph::symmetric_closure(&g);
    let mut crashes = 0usize;
    for seed in 0..8 {
        let cfg = ColoringConfig {
            faults: FaultPlan::crashing(0.1, 4),
            transport: Transport::reliable(),
            ..ColoringConfig::seeded(seed)
        };

        let m = maximal_matching(&g, &cfg).unwrap();
        assert!(m.agreement, "matching seed {seed}");
        verify_residual_matching(&g, &m.pairs, &m.alive)
            .unwrap_or_else(|v| panic!("matching seed {seed}: {v}"));

        let r = color_edges(&g, &cfg).unwrap();
        assert!(r.endpoint_agreement, "edge seed {seed}");
        verify_residual_edge_coloring(&g, &r.colors, &r.alive)
            .unwrap_or_else(|v| panic!("edge seed {seed}: {v}"));

        let s = strong_color_digraph(&d, &cfg).unwrap();
        assert!(s.endpoint_agreement, "strong seed {seed}");
        verify_residual_strong_coloring(&d, &s.colors, &s.alive)
            .unwrap_or_else(|v| panic!("strong seed {seed}: {v}"));

        crashes += r.stats.crashed + m.stats.crashed + s.stats.crashed;
    }
    assert!(crashes > 0, "a 10% crash fraction must fell somebody across 8 seeds");
}

#[test]
fn arq_is_transparent_on_reliable_links() {
    // No faults: wrapping costs a few synchronisation rounds but must
    // not change a single output bit.
    let g = structured::grid(5, 5);
    for seed in [7, 19] {
        let bare = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
        let arq = color_edges(
            &g,
            &ColoringConfig { transport: Transport::reliable(), ..ColoringConfig::seeded(seed) },
        )
        .unwrap();
        assert_eq!(bare.colors, arq.colors, "seed {seed}");
        assert_eq!(bare.comm_rounds, arq.comm_rounds, "seed {seed}");
        assert!(
            arq.transport_overhead_rounds <= 3,
            "seed {seed}: fault-free overhead should be a handful of rounds, got {}",
            arq.transport_overhead_rounds
        );
    }
}
