//! Cross-crate integration: DiMaEC (Algorithm 1) end-to-end over every
//! generator family, with verification through two independent lenses —
//! the direct neighborhood verifier and proper vertex coloring of the
//! line graph.

use dima::core::verify::{count_colors, verify_edge_coloring};
use dima::core::{color_edges, ColoringConfig, Engine};
use dima::graph::conflict::line_graph;
use dima::graph::gen::{structured, GraphFamily};
use dima::graph::{Graph, VertexId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A coloring of g's edges is proper iff it is a proper vertex coloring
/// of L(g).
fn assert_proper_via_line_graph(g: &Graph, colors: &[Option<dima::core::Color>]) {
    let l = line_graph(g);
    for (_, (a, b)) in l.edges() {
        assert_ne!(
            colors[a.index()],
            colors[b.index()],
            "line-graph vertices {a} and {b} (adjacent edges) share a color"
        );
    }
}

fn full_check(g: &Graph, seed: u64) -> dima::core::EdgeColoringResult {
    let r = color_edges(g, &ColoringConfig::seeded(seed)).expect("run failed");
    assert!(r.endpoint_agreement);
    verify_edge_coloring(g, &r.colors).expect("direct verifier");
    assert_proper_via_line_graph(g, &r.colors);
    assert_eq!(count_colors(&r.colors), r.colors_used);
    let delta = g.max_degree();
    if delta > 0 {
        assert!(r.colors_used < 2 * delta, "Proposition 3 bound violated");
    }
    r
}

#[test]
fn every_random_family_end_to_end() {
    let families = [
        GraphFamily::ErdosRenyiAvgDegree { n: 120, avg_degree: 6.0 },
        GraphFamily::ErdosRenyiGnp { n: 100, p: 0.08 },
        GraphFamily::ScaleFree { n: 120, edges_per_vertex: 2, power: 1.2 },
        GraphFamily::SmallWorld { n: 100, k: 6, beta: 0.3 },
        GraphFamily::Regular { n: 90, d: 6 },
        GraphFamily::Geometric { n: 100, radius: 0.15 },
    ];
    let mut rng = SmallRng::seed_from_u64(1);
    for (i, fam) in families.iter().enumerate() {
        let g = fam.sample(&mut rng).expect("valid family");
        let r = full_check(&g, 100 + i as u64);
        assert!(r.compute_rounds > 0 || g.num_edges() == 0, "{}", fam.label());
    }
}

#[test]
fn structured_fixtures_end_to_end() {
    for g in [
        structured::complete(12),
        structured::cycle(15),
        structured::star(15),
        structured::grid(6, 7),
        structured::hypercube(5),
        structured::petersen(),
        structured::complete_bipartite(5, 7),
        structured::balanced_binary_tree(6),
        structured::path(20),
    ] {
        full_check(&g, 7);
    }
}

#[test]
fn disconnected_graph_with_isolated_vertices() {
    // Two triangles, a path, and isolated vertices.
    let mut pairs = Vec::new();
    for base in [0u32, 3] {
        pairs.push((VertexId(base), VertexId(base + 1)));
        pairs.push((VertexId(base + 1), VertexId(base + 2)));
        pairs.push((VertexId(base), VertexId(base + 2)));
    }
    pairs.push((VertexId(6), VertexId(7)));
    let g = Graph::from_edges(12, pairs).unwrap(); // vertices 8..12 isolated
    let r = full_check(&g, 5);
    assert!(r.colors.iter().all(Option::is_some));
}

#[test]
fn conjecture2_holds_on_er_sample() {
    // A smaller-scale version of the §IV-A claim: colors stay within Δ+2
    // on Erdős–Rényi graphs (statistically; this sample uses fixed seeds
    // and was verified to pass deterministically).
    let mut rng = SmallRng::seed_from_u64(9);
    let mut excess_counts = [0usize; 4];
    for seed in 0..20 {
        let g =
            GraphFamily::ErdosRenyiAvgDegree { n: 150, avg_degree: 8.0 }.sample(&mut rng).unwrap();
        let r = full_check(&g, seed);
        let excess = (r.colors_used as i64 - g.max_degree() as i64).clamp(0, 3) as usize;
        excess_counts[excess] += 1;
    }
    // Typical runs are Δ or Δ+1; allow rare Δ+2; Δ+3+ would falsify the
    // paper's observation outright on this corpus.
    assert_eq!(excess_counts[3], 0, "a run used more than Δ+2 colors: {excess_counts:?}");
    assert!(
        excess_counts[0] + excess_counts[1] >= 18,
        "most runs should use at most Δ+1 colors: {excess_counts:?}"
    );
}

#[test]
fn rounds_track_delta_across_sizes() {
    // The paper's headline: rounds grow with Δ, not with n. Compare the
    // mean rounds of (n=100, Δ≈8) against (n=400, Δ≈8): they should be
    // close; and (n=100, Δ≈16) should exceed both.
    let mut rng = SmallRng::seed_from_u64(11);
    let mean_rounds = |n: usize, d: f64, rng: &mut SmallRng| -> f64 {
        let trials = 10;
        let mut total = 0u64;
        for seed in 0..trials {
            let g = GraphFamily::ErdosRenyiAvgDegree { n, avg_degree: d }.sample(rng).unwrap();
            let r = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
            total += r.compute_rounds;
        }
        total as f64 / trials as f64
    };
    let small_d8 = mean_rounds(100, 8.0, &mut rng);
    let large_d8 = mean_rounds(400, 8.0, &mut rng);
    let small_d16 = mean_rounds(100, 16.0, &mut rng);
    // Same Δ, 4x nodes: within 40% of each other.
    let ratio = large_d8 / small_d8;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "rounds should not scale with n: {small_d8} vs {large_d8}"
    );
    // Doubling Δ increases rounds substantially.
    assert!(
        small_d16 > small_d8 * 1.3,
        "rounds should grow with Δ: d8 {small_d8} vs d16 {small_d16}"
    );
}

#[test]
fn parallel_engine_equivalent_on_integration_workload() {
    let mut rng = SmallRng::seed_from_u64(13);
    let g = GraphFamily::ErdosRenyiAvgDegree { n: 200, avg_degree: 8.0 }.sample(&mut rng).unwrap();
    let seq = color_edges(&g, &ColoringConfig::seeded(77)).unwrap();
    let par = color_edges(
        &g,
        &ColoringConfig { engine: Engine::Parallel { threads: 4 }, ..ColoringConfig::seeded(77) },
    )
    .unwrap();
    assert_eq!(seq.colors, par.colors);
    assert_eq!(seq.comm_rounds, par.comm_rounds);
    assert_eq!(seq.stats.messages_sent, par.stats.messages_sent);
    assert_eq!(seq.stats.deliveries, par.stats.deliveries);
}
