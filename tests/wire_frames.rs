//! Property tests for the checksummed wire frame: every protocol message
//! round-trips through [`encode_frame`]/[`decode_frame`], and **no**
//! single-bit flip anywhere in a frame is ever silently mis-decoded — it
//! is always rejected with a [`FrameError`].

use dima::core::edge_coloring::EcMsg;
use dima::core::matching::MatchMsg;
use dima::core::strong_coloring::StrongMsg;
use dima::core::Color;
use dima::graph::VertexId;
use dima::sim::wire::{decode_frame, encode_frame, WireCodec};
use dima::sim::Envelope;
use proptest::prelude::*;

fn arb_match_msg() -> impl Strategy<Value = MatchMsg> {
    prop_oneof![
        any::<u32>().prop_map(|v| MatchMsg::Invite { to: VertexId(v) }),
        any::<u32>().prop_map(|v| MatchMsg::Accept { to: VertexId(v) }),
        Just(MatchMsg::Matched),
    ]
}

fn arb_ec_msg() -> impl Strategy<Value = EcMsg> {
    prop_oneof![
        (any::<u32>(), any::<u32>())
            .prop_map(|(v, c)| EcMsg::Invite { to: VertexId(v), color: Color(c) }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(v, c)| EcMsg::Accept { to: VertexId(v), color: Color(c) }),
        any::<u32>().prop_map(|c| EcMsg::Used { color: Color(c) }),
    ]
}

fn arb_strong_msg() -> impl Strategy<Value = StrongMsg> {
    prop_oneof![
        (any::<u32>(), proptest::collection::vec(any::<u32>(), 0..6)).prop_map(|(v, cs)| {
            StrongMsg::Invite { to: VertexId(v), colors: cs.into_iter().map(Color).collect() }
        }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(v, c)| StrongMsg::Accept { to: VertexId(v), color: Color(c) }),
        any::<u32>().prop_map(|c| StrongMsg::Used { color: Color(c) }),
    ]
}

/// Round-trip the message and exhaustively flip every bit of the frame:
/// each flip must be detected (decode returns an error, never a wrong
/// message).
fn check_frame<M>(from: u32, msg: M) -> Result<(), proptest::test_runner::TestCaseError>
where
    M: WireCodec + Clone + PartialEq + std::fmt::Debug,
{
    let env = Envelope::new(VertexId(from), msg);
    let frame = encode_frame(&env);
    let back = decode_frame::<M>(frame.clone());
    prop_assert!(back.as_ref().is_ok_and(|b| *b == env), "roundtrip failed");
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut flipped = frame.to_vec();
            flipped[byte] ^= 1 << bit;
            let res = decode_frame::<M>(bytes::Bytes::from(flipped));
            prop_assert!(res.is_err(), "flip at byte {} bit {} not detected", byte, bit);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn match_frames_are_flip_proof(from in any::<u32>(), msg in arb_match_msg()) {
        check_frame(from, msg)?;
    }

    #[test]
    fn ec_frames_are_flip_proof(from in any::<u32>(), msg in arb_ec_msg()) {
        check_frame(from, msg)?;
    }

    #[test]
    fn strong_frames_are_flip_proof(from in any::<u32>(), msg in arb_strong_msg()) {
        check_frame(from, msg)?;
    }
}
