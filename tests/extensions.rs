//! Integration tests for the beyond-the-paper extensions: vertex cover,
//! undirected strong coloring, and TDMA schedule semantics — exercised
//! through the public umbrella API, end to end.

use dima::baselines::strong_greedy_undirected;
use dima::core::schedule::{
    verify_half_duplex, verify_interference_free, ArcSchedule, EdgeSchedule,
};
use dima::core::strong_undirected::{strong_color_graph, verify_strong_undirected};
use dima::core::verify::count_colors;
use dima::core::vertex_cover::{brute_force_min_cover, verify_vertex_cover};
use dima::core::{color_edges, strong_color_digraph, vertex_cover, ColoringConfig};
use dima::graph::gen::GraphFamily;
use dima::graph::Digraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn vertex_cover_two_approx_on_random_graphs() {
    // Small random graphs where the brute-force optimum is computable.
    let mut rng = SmallRng::seed_from_u64(41);
    for seed in 0..6 {
        let g =
            GraphFamily::ErdosRenyiAvgDegree { n: 14, avg_degree: 3.0 }.sample(&mut rng).unwrap();
        let r = vertex_cover(&g, &ColoringConfig::seeded(seed)).unwrap();
        verify_vertex_cover(&g, &r.in_cover).unwrap();
        let opt = brute_force_min_cover(&g);
        assert!(r.size <= 2 * opt, "cover {} > 2×OPT {}", r.size, 2 * opt);
    }
}

#[test]
fn undirected_strong_coloring_vs_greedy_yardstick() {
    let mut rng = SmallRng::seed_from_u64(43);
    for seed in 0..3 {
        let g =
            GraphFamily::ErdosRenyiAvgDegree { n: 50, avg_degree: 4.0 }.sample(&mut rng).unwrap();
        let dist = strong_color_graph(&g, &ColoringConfig::seeded(seed)).unwrap();
        assert!(dist.endpoint_agreement);
        verify_strong_undirected(&g, &dist.colors).unwrap();
        let greedy = strong_greedy_undirected(&g);
        verify_strong_undirected(&g, &greedy).unwrap();
        // One-hop distributed vs full-knowledge greedy: small factor.
        assert!(
            dist.colors_used <= 4 * count_colors(&greedy).max(1),
            "distributed {} vs greedy {}",
            dist.colors_used,
            count_colors(&greedy)
        );
    }
}

#[test]
fn dimaec_schedules_are_half_duplex() {
    let mut rng = SmallRng::seed_from_u64(45);
    for seed in 0..3 {
        let g = GraphFamily::Geometric { n: 50, radius: 0.2 }.sample(&mut rng).unwrap();
        let r = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
        let sched = EdgeSchedule::from_coloring(&r.colors);
        verify_half_duplex(&g, &sched).unwrap();
        assert_eq!(sched.num_transmissions(), g.num_edges());
        assert_eq!(sched.frame_len(), r.max_color.map_or(0, |c| c.index() + 1));
    }
}

#[test]
fn dima2ed_schedules_are_interference_free() {
    // The semantic (radio-level) property, checked end to end — strictly
    // stronger than the paper's Definition 2 (see core::schedule docs),
    // and still always satisfied by DiMa2ED's conservative palette.
    let mut rng = SmallRng::seed_from_u64(47);
    for seed in 0..3 {
        let g =
            GraphFamily::ErdosRenyiAvgDegree { n: 40, avg_degree: 4.0 }.sample(&mut rng).unwrap();
        let d = Digraph::symmetric_closure(&g);
        let r = strong_color_digraph(&d, &ColoringConfig::seeded(seed)).unwrap();
        let sched = ArcSchedule::from_coloring(&r.colors);
        verify_interference_free(&d, &sched).unwrap();
    }
}

#[test]
fn proposal_width_speeds_up_strong_coloring() {
    // ABL3's headline, as a regression test: width 4 must beat width 1
    // on rounds while staying correct.
    let mut rng = SmallRng::seed_from_u64(49);
    let g = GraphFamily::ErdosRenyiAvgDegree { n: 80, avg_degree: 6.0 }.sample(&mut rng).unwrap();
    let d = Digraph::symmetric_closure(&g);
    let mut narrow_total = 0u64;
    let mut wide_total = 0u64;
    for seed in 0..4 {
        let narrow = strong_color_digraph(&d, &ColoringConfig::seeded(seed)).unwrap();
        let wide = strong_color_digraph(
            &d,
            &ColoringConfig { proposal_width: 4, ..ColoringConfig::seeded(seed) },
        )
        .unwrap();
        dima::core::verify::verify_strong_coloring(&d, &narrow.colors).unwrap();
        dima::core::verify::verify_strong_coloring(&d, &wide.colors).unwrap();
        narrow_total += narrow.compute_rounds;
        wide_total += wide.compute_rounds;
    }
    assert!(
        wide_total * 3 < narrow_total * 2,
        "width 4 ({wide_total}) should cut rounds well below width 1 ({narrow_total})"
    );
}

#[test]
fn worst_case_bound_never_reached_experimentally() {
    // Paper §II-B: "in no experimental case should we ever see the
    // maximum 2Δ−1 colors used". Hammer complete graphs (the Prop-3
    // gadget: every node at degree Δ) with many seeds.
    use dima::graph::gen::structured;
    for delta in [4usize, 7, 10] {
        let g = structured::complete(delta + 1);
        for seed in 0..10 {
            let r = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
            assert!(
                r.colors_used < 2 * delta - 1 || delta <= 2,
                "Δ={delta} seed={seed}: hit the worst case {} = 2Δ−1",
                r.colors_used
            );
        }
    }
}

#[test]
fn state_labels_work_for_all_automata_protocols() {
    // The matching and strong-coloring protocols also report their Fig-1
    // states; drive them through the observer hook directly.
    use dima::graph::gen::structured;
    use dima::sim::trace::{StateCensus, StateLabel};
    use dima::sim::{run_sequential_observed, EngineConfig, Topology};

    let g = structured::cycle(8);
    let topo = Topology::from_graph(&g);
    let cfg_core = ColoringConfig::seeded(3);
    let engine_cfg = EngineConfig::seeded(3);

    // Matching protocol census.
    let mut census = StateCensus::new();
    let outcome = run_sequential_observed(
        &topo,
        &engine_cfg,
        |seed| dima::core::matching::new_node_for_census(&seed, &cfg_core),
        |view| census.record(view.nodes.iter().map(|n| n.state_label())),
    )
    .unwrap();
    assert!(outcome.stats.rounds > 0);
    assert_eq!(census.count(0, "I") + census.count(0, "L"), 8);
    let last = census.len() - 1;
    assert!(census.count(last, "D") > 0);
}
