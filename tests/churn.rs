//! Dynamic-topology integration tests: churn schedules injected mid-run,
//! repaired incrementally by both coloring algorithms.
//!
//! The acceptance bar for the subsystem: after **every** churn batch the
//! automata converge back to a proper (resp. strong) coloring without a
//! restart, across a wide seed sweep, on both engines, composing with the
//! fault layer. Per-batch quiescence is checked through prefix schedules:
//! [`ChurnSchedule::truncated`] prefixes agree batch-for-batch with the
//! full schedule, so running each prefix to completion observes exactly
//! the state the full run passes through at that batch's quiescence.

use dima::core::verify::{
    verify_edge_coloring, verify_residual_edge_coloring, verify_strong_coloring,
};
use dima::core::{
    color_edges, color_edges_churn, strong_color_churn, ChurnKinds, ChurnPlan, ChurnSchedule,
    ColoringConfig, CoreError, Engine, Transport,
};
use dima::graph::gen::erdos_renyi_gnm;
use dima::graph::Graph;
use dima::sim::fault::FaultPlan;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn er(n: usize, m: usize, seed: u64) -> Graph {
    erdos_renyi_gnm(n, m, &mut SmallRng::seed_from_u64(seed)).expect("valid parameters")
}

/// 2Δ−1 palette bound against the largest degree the run ever saw.
fn assert_palette_bound(colors_used: usize, delta: usize) {
    if delta > 0 {
        assert!(colors_used < 2 * delta, "{colors_used} colors > 2Δ−1 for Δ = {delta}");
    }
}

#[test]
fn ec_repairs_to_proper_coloring_across_fifty_seeds() {
    for seed in 0..50u64 {
        let g0 = er(40, 80, seed);
        let plan = ChurnPlan::new(seed.wrapping_mul(7).wrapping_add(1), 0.15);
        let schedule = ChurnSchedule::generate(&g0, &plan);
        let r = color_edges_churn(&g0, &schedule, &ColoringConfig::seeded(seed)).unwrap();
        assert!(r.coloring.endpoint_agreement, "seed {seed}: endpoints disagree");
        assert!(
            r.coloring.colors.iter().all(Option::is_some),
            "seed {seed}: incomplete repair on the final graph"
        );
        verify_edge_coloring(&r.final_graph, &r.coloring.colors)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        let delta = g0.max_degree().max(schedule.max_degree());
        assert_palette_bound(r.coloring.colors_used, delta);
        assert_eq!(r.coloring.stats.churn_batches, schedule.len() as u64);
        assert_eq!(r.batches.len(), schedule.len());
    }
}

#[test]
fn ec_quiesces_to_proper_coloring_after_every_batch() {
    // Prefix schedules observe the coloring at quiescence after each
    // individual batch (truncation is a generation prefix).
    for seed in [3u64, 11, 19, 27] {
        let g0 = er(36, 90, seed);
        let plan = ChurnPlan { batches: 5, ..ChurnPlan::new(seed + 100, 0.2) };
        let full = ChurnSchedule::generate(&g0, &plan);
        assert_eq!(full.len(), 5);
        for k in 0..=full.len() {
            let prefix = full.truncated(k);
            let r = color_edges_churn(&g0, &prefix, &ColoringConfig::seeded(seed)).unwrap();
            assert!(
                r.coloring.colors.iter().all(Option::is_some),
                "seed {seed}, prefix {k}: incomplete"
            );
            verify_edge_coloring(&r.final_graph, &r.coloring.colors)
                .unwrap_or_else(|v| panic!("seed {seed}, prefix {k}: {v}"));
            // The last batch always has the full round budget after it,
            // so its repair must have quiesced. Earlier windows may
            // legitimately be `None` (the next batch fired first; the
            // cost folds into its window — see `BatchReport`).
            assert!(
                r.batches.last().is_none_or(|b| b.repair_rounds.is_some()),
                "seed {seed}, prefix {k}: final batch never quiesced"
            );
        }
    }
}

#[test]
fn empty_schedule_is_exactly_a_static_run() {
    let g0 = er(30, 70, 5);
    let cfg = ColoringConfig::seeded(9);
    let churn = color_edges_churn(&g0, &ChurnSchedule::empty(), &cfg).unwrap();
    let baseline = color_edges(&g0, &cfg).unwrap();
    assert_eq!(churn.coloring.colors, baseline.colors);
    assert_eq!(churn.coloring.comm_rounds, baseline.comm_rounds);
    assert!(churn.batches.is_empty());
    assert_eq!(churn.coloring.stats.churn_batches, 0);
    assert_eq!(churn.recolored_fraction(&baseline.colors), 0.0);
}

#[test]
fn links_only_churn_keeps_node_set_and_reports_dirty_edges() {
    let g0 = er(32, 64, 2);
    let plan = ChurnPlan { kinds: ChurnKinds::links_only(), ..ChurnPlan::new(77, 0.25) };
    let schedule = ChurnSchedule::generate(&g0, &plan);
    assert!(!schedule.is_empty());
    let r = color_edges_churn(&g0, &schedule, &ColoringConfig::seeded(13)).unwrap();
    verify_edge_coloring(&r.final_graph, &r.coloring.colors).unwrap();
    assert!(r.batches.iter().all(|b| b.joins == 0 && b.leaves == 0));
    assert!(
        r.batches.iter().map(|b| b.dirty_edges).sum::<usize>() > 0,
        "link churn should dirty some edges"
    );
}

#[test]
fn engines_bit_identical_under_churn() {
    for seed in [1u64, 8, 21] {
        let g0 = er(34, 85, seed);
        let schedule = ChurnSchedule::generate(&g0, &ChurnPlan::new(seed + 500, 0.2));
        let cfg = ColoringConfig::seeded(seed);
        let seq = color_edges_churn(&g0, &schedule, &cfg).unwrap();
        for threads in [2usize, 5] {
            let par = color_edges_churn(
                &g0,
                &schedule,
                &ColoringConfig { engine: Engine::Parallel { threads }, ..cfg.clone() },
            )
            .unwrap();
            assert_eq!(seq.coloring.colors, par.coloring.colors, "seed {seed} threads {threads}");
            assert_eq!(seq.coloring.comm_rounds, par.coloring.comm_rounds);
            assert_eq!(seq.coloring.stats, par.coloring.stats);
            assert_eq!(seq.batches, par.batches);
        }
    }
}

#[test]
fn strong_coloring_repairs_under_churn() {
    for seed in 0..12u64 {
        let g0 = er(24, 40, seed + 40);
        let plan = ChurnPlan { batches: 3, ..ChurnPlan::new(seed + 900, 0.12) };
        let schedule = ChurnSchedule::generate(&g0, &plan);
        let r = strong_color_churn(&g0, &schedule, &ColoringConfig::seeded(seed)).unwrap();
        assert!(r.coloring.endpoint_agreement, "seed {seed}: tail/head disagree");
        assert!(
            r.coloring.colors.iter().all(Option::is_some),
            "seed {seed}: incomplete strong repair"
        );
        verify_strong_coloring(&r.final_digraph, &r.coloring.colors)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn strong_engines_bit_identical_under_churn() {
    let g0 = er(20, 35, 4);
    let schedule =
        ChurnSchedule::generate(&g0, &ChurnPlan { batches: 3, ..ChurnPlan::new(31, 0.15) });
    let cfg = ColoringConfig::seeded(64);
    let seq = strong_color_churn(&g0, &schedule, &cfg).unwrap();
    let par = strong_color_churn(
        &g0,
        &schedule,
        &ColoringConfig { engine: Engine::Parallel { threads: 3 }, ..cfg },
    )
    .unwrap();
    assert_eq!(seq.coloring.colors, par.coloring.colors);
    assert_eq!(seq.coloring.stats, par.coloring.stats);
}

#[test]
fn churn_composes_with_message_loss() {
    // Fault decisions stay pure hashes of (seed, round, edge, k), so loss
    // composes with churn deterministically. Under lossy bare transport a
    // run either converges to a verifiable coloring or detectably fails
    // (round budget exhausted / desynced commits), exactly as in the
    // static loss tests.
    let mut converged = 0usize;
    for seed in 0..8u64 {
        let g0 = er(30, 60, seed + 70);
        let schedule = ChurnSchedule::generate(&g0, &ChurnPlan::new(seed + 11, 0.15));
        let cfg =
            ColoringConfig { faults: FaultPlan::uniform(0.005), ..ColoringConfig::seeded(seed) };
        match color_edges_churn(&g0, &schedule, &cfg) {
            Ok(r) => {
                let complete = r.coloring.colors.iter().all(Option::is_some);
                let proper = verify_edge_coloring(&r.final_graph, &r.coloring.colors).is_ok();
                if r.coloring.endpoint_agreement && complete && proper {
                    converged += 1;
                }
                // Anything else is a *detected* loss-induced desync.
            }
            Err(CoreError::Sim(_)) => {} // detected: budget exhausted
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
    assert!(converged >= 4, "only {converged}/8 lossy churn runs converged");
}

#[test]
fn churn_with_crashes_converges_or_detects() {
    // Churn forces the bare transport, and bare links have no death
    // detection (that is the ARQ layer's probe job): a survivor whose
    // uncolored edge leads to a crashed peer re-invites until the round
    // budget trips. Crash faults therefore compose with churn only up to
    // detection — every run must either produce a verified residual
    // coloring or fail with the simulator's budget error.
    let mut saw_fault = false;
    for seed in 0..8u64 {
        let g0 = er(30, 60, seed + 70);
        let schedule = ChurnSchedule::generate(&g0, &ChurnPlan::new(seed + 11, 0.15));
        let cfg = ColoringConfig {
            faults: FaultPlan { crash_spread: 30, ..FaultPlan::crashing(0.1, 0) },
            ..ColoringConfig::seeded(seed)
        };
        match color_edges_churn(&g0, &schedule, &cfg) {
            Ok(r) => {
                saw_fault |= r.coloring.alive.iter().any(|&a| !a);
                assert!(r.coloring.endpoint_agreement, "seed {seed}");
                verify_residual_edge_coloring(
                    &r.final_graph,
                    &r.coloring.colors,
                    &r.coloring.alive,
                )
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            }
            Err(CoreError::Sim(_)) => saw_fault = true,
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
    assert!(saw_fault, "the fault plan should bite at least once across 8 runs");
}

#[test]
fn churn_requires_bare_transport() {
    let g0 = er(10, 20, 1);
    let schedule = ChurnSchedule::generate(&g0, &ChurnPlan::new(1, 0.2));
    let cfg = ColoringConfig { transport: Transport::reliable(), ..ColoringConfig::seeded(1) };
    assert!(matches!(color_edges_churn(&g0, &schedule, &cfg), Err(CoreError::Config(_))));
    assert!(matches!(strong_color_churn(&g0, &schedule, &cfg), Err(CoreError::Config(_))));
}

#[test]
fn recolored_fraction_against_static_baseline_is_sane() {
    let g0 = er(40, 80, 12);
    let schedule = ChurnSchedule::generate(&g0, &ChurnPlan::new(5, 0.1));
    let cfg = ColoringConfig::seeded(3);
    let r = color_edges_churn(&g0, &schedule, &cfg).unwrap();
    // Same-seed static run on the *final* topology.
    let baseline = color_edges(&r.final_graph, &cfg).unwrap();
    let f = r.recolored_fraction(&baseline.colors);
    assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
}
