//! Crash-recovery acceptance for the serve-mode [`ColoringService`].
//!
//! The bar the service must clear: interrupting a session at any batch
//! boundary — snapshot, "kill", restore, replay the journaled tail,
//! keep serving — must land on a coloring **bit-identical** to the
//! uninterrupted session, across a 50-seed sweep, for both protocols.
//! On top of that, the offline `recompute` cross-check (replaying the
//! recorded history through the ordinary batch engines) must agree
//! with the live automata on both the sequential and parallel engine.

use dima::core::{ColoringService, Engine, HistoryEntry, ServeProtocol, ServiceConfig};
use dima::graph::gen::erdos_renyi_gnm;
use dima::graph::{Graph, VertexId};
use dima::sim::ChurnEvent;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn er(n: usize, m: usize, seed: u64) -> Graph {
    erdos_renyi_gnm(n, m, &mut SmallRng::seed_from_u64(seed)).expect("valid parameters")
}

/// Stage `want` random-but-valid events (rejections are skipped — the
/// generator probes until the feed accepts).
fn stage_batch(
    svc: &mut ColoringService,
    rng: &mut SmallRng,
    n: u32,
    want: usize,
) -> Vec<ChurnEvent> {
    let mut accepted = Vec::new();
    let mut attempts = 0;
    while accepted.len() < want && attempts < 200 {
        attempts += 1;
        let ev = match rng.random_range(0..4u32) {
            0 => ChurnEvent::LinkUp(
                VertexId(rng.random_range(0..n)),
                VertexId(rng.random_range(0..n)),
            ),
            1 => ChurnEvent::LinkDown(
                VertexId(rng.random_range(0..n)),
                VertexId(rng.random_range(0..n)),
            ),
            2 => ChurnEvent::NodeLeave(VertexId(rng.random_range(0..n))),
            _ => ChurnEvent::NodeJoin(VertexId(rng.random_range(0..n))),
        };
        if svc.stage(ev).is_ok() {
            accepted.push(ev);
        }
    }
    assert!(!accepted.is_empty(), "generator starved after {attempts} attempts");
    accepted
}

fn commit_and_settle(svc: &mut ColoringService) {
    assert!(svc.next_commit().is_some(), "staged events should be committable");
    svc.commit().expect("commit applies");
    svc.run_to_quiescence(svc.tick_budget()).expect("repair converges");
}

/// One interrupted session: run `pre_batches`, snapshot, keep running
/// `journal_batches` with journaling only (the "crash" forgets the
/// in-memory service), then restore from snapshot + journal and finish
/// with `post_batches`. Returns the final service.
#[allow(clippy::too_many_arguments)]
fn interrupted(
    g0: &Graph,
    cfg: &ServiceConfig,
    n: u32,
    rng_seed: u64,
    pre_batches: usize,
    journal_batches: usize,
    post_batches: usize,
    batch_events: usize,
) -> ColoringService {
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut svc = ColoringService::new(g0, cfg.clone()).expect("service construction");
    svc.run_to_quiescence(svc.tick_budget()).expect("initial coloring");
    for _ in 0..pre_batches {
        stage_batch(&mut svc, &mut rng, n, batch_events);
        commit_and_settle(&mut svc);
    }
    let snapshot = svc.snapshot_text();
    // Post-snapshot traffic goes to the journal exactly as the CLI
    // writes it: event lines on accept, a write-ahead commit marker.
    let mut journal = String::new();
    let mut h_written = svc.history_len() as usize;
    for _ in 0..journal_batches {
        for ev in stage_batch(&mut svc, &mut rng, n, batch_events) {
            journal.push_str(&ColoringService::journal_event_line(&ev));
        }
        let (seq, round) = svc.next_commit().expect("committable");
        journal.push_str(&ColoringService::journal_commit_line(svc.history_len() + 1, seq, round));
        commit_and_settle(&mut svc);
        // Journal any watchdog escalations the repair recorded, exactly
        // as the CLI does when a tick reports one.
        for (i, entry) in svc.history().iter().enumerate().skip(h_written) {
            if let HistoryEntry::Recolor { round } = entry {
                journal.push_str(&ColoringService::journal_recolor_line(i as u64 + 1, *round));
            }
        }
        h_written = svc.history_len() as usize;
    }
    // Crash: drop `svc`, recover from the persisted artifacts.
    drop(svc);
    let (mut svc, report) =
        ColoringService::restore(&snapshot, Some(&journal)).expect("restore succeeds");
    assert!(
        report.tail_entries as usize >= journal_batches,
        "journal tail replays fully ({} entries for {journal_batches} batches)",
        report.tail_entries
    );
    assert!(!report.torn_tail);
    for _ in 0..post_batches {
        stage_batch(&mut svc, &mut rng, n, batch_events);
        commit_and_settle(&mut svc);
    }
    svc
}

/// The uninterrupted control: same seeds, same batches, no crash.
fn uninterrupted(
    g0: &Graph,
    cfg: &ServiceConfig,
    n: u32,
    rng_seed: u64,
    batches: usize,
    batch_events: usize,
) -> ColoringService {
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut svc = ColoringService::new(g0, cfg.clone()).expect("service construction");
    svc.run_to_quiescence(svc.tick_budget()).expect("initial coloring");
    for _ in 0..batches {
        stage_batch(&mut svc, &mut rng, n, batch_events);
        commit_and_settle(&mut svc);
    }
    svc
}

fn sweep(protocol: ServeProtocol) {
    for seed in 0..50u64 {
        let n = 16 + (seed % 3) as usize * 4; // 16, 20, 24
        let g0 = er(n, 2 * n, seed);
        let cfg = ServiceConfig::new(protocol, seed.wrapping_mul(31).wrapping_add(5));
        let rng_seed = seed.wrapping_mul(97).wrapping_add(13);
        // 1 batch before the snapshot, 2 journaled across the crash,
        // 1 after recovery = 4 total.
        let recovered = interrupted(&g0, &cfg, n as u32, rng_seed, 1, 2, 1, 2);
        let control = uninterrupted(&g0, &cfg, n as u32, rng_seed, 4, 2);
        assert_eq!(
            recovered.coloring_hash(),
            control.coloring_hash(),
            "seed {seed} ({protocol}): recovered hash diverges from control"
        );
        assert_eq!(
            recovered.coloring(),
            control.coloring(),
            "seed {seed} ({protocol}): recovered coloring diverges edge-by-edge"
        );
        assert_eq!(recovered.round(), control.round(), "seed {seed}: round drift");
        assert_eq!(recovered.history(), control.history(), "seed {seed}: history drift");
        // The recorded history must also replay through the ordinary
        // batch engines (both of them) to the same coloring.
        if recovered.history().iter().all(|h| matches!(h, HistoryEntry::Batch { .. })) {
            let live = recovered.coloring();
            let seq = recovered.recompute(Engine::Sequential).expect("sequential recompute");
            assert_eq!(seq, live, "seed {seed} ({protocol}): sequential recompute diverges");
            let par =
                recovered.recompute(Engine::Parallel { threads: 2 }).expect("parallel recompute");
            assert_eq!(par, live, "seed {seed} ({protocol}): parallel recompute diverges");
        }
    }
}

#[test]
fn ec_snapshot_kill_restore_replay_is_bit_identical_across_fifty_seeds() {
    sweep(ServeProtocol::EdgeColoring);
}

#[test]
fn strong_snapshot_kill_restore_replay_is_bit_identical_across_fifty_seeds() {
    sweep(ServeProtocol::StrongColoring);
}
