//! Crash-recovery acceptance for the serve-mode [`ColoringService`].
//!
//! The bar the service must clear: interrupting a session at any batch
//! boundary — snapshot, "kill", restore, replay the journaled tail,
//! keep serving — must land on a coloring **bit-identical** to the
//! uninterrupted session, across a 50-seed sweep, for both protocols.
//! On top of that, the offline `recompute` cross-check (replaying the
//! recorded history through the ordinary batch engines) must agree
//! with the live automata on both the sequential and parallel engine.

use dima::core::{
    checkpoint_crc, ColoringService, Engine, HistoryEntry, ServeProtocol, ServiceConfig,
};
use dima::graph::gen::erdos_renyi_gnm;
use dima::graph::{Graph, VertexId};
use dima::sim::ChurnEvent;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn er(n: usize, m: usize, seed: u64) -> Graph {
    erdos_renyi_gnm(n, m, &mut SmallRng::seed_from_u64(seed)).expect("valid parameters")
}

/// Stage `want` random-but-valid events (rejections are skipped — the
/// generator probes until the feed accepts).
fn stage_batch(
    svc: &mut ColoringService,
    rng: &mut SmallRng,
    n: u32,
    want: usize,
) -> Vec<ChurnEvent> {
    let mut accepted = Vec::new();
    let mut attempts = 0;
    while accepted.len() < want && attempts < 200 {
        attempts += 1;
        let ev = match rng.random_range(0..4u32) {
            0 => ChurnEvent::LinkUp(
                VertexId(rng.random_range(0..n)),
                VertexId(rng.random_range(0..n)),
            ),
            1 => ChurnEvent::LinkDown(
                VertexId(rng.random_range(0..n)),
                VertexId(rng.random_range(0..n)),
            ),
            2 => ChurnEvent::NodeLeave(VertexId(rng.random_range(0..n))),
            _ => ChurnEvent::NodeJoin(VertexId(rng.random_range(0..n))),
        };
        if svc.stage(ev).is_ok() {
            accepted.push(ev);
        }
    }
    assert!(!accepted.is_empty(), "generator starved after {attempts} attempts");
    accepted
}

fn commit_and_settle(svc: &mut ColoringService) {
    assert!(svc.next_commit().is_some(), "staged events should be committable");
    svc.commit().expect("commit applies");
    svc.run_to_quiescence(svc.tick_budget()).expect("repair converges");
}

/// One interrupted session: run `pre_batches`, snapshot, keep running
/// `journal_batches` with journaling only (the "crash" forgets the
/// in-memory service), then restore from snapshot + journal and finish
/// with `post_batches`. Returns the final service.
#[allow(clippy::too_many_arguments)]
fn interrupted(
    g0: &Graph,
    cfg: &ServiceConfig,
    n: u32,
    rng_seed: u64,
    pre_batches: usize,
    journal_batches: usize,
    post_batches: usize,
    batch_events: usize,
) -> ColoringService {
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut svc = ColoringService::new(g0, cfg.clone()).expect("service construction");
    svc.run_to_quiescence(svc.tick_budget()).expect("initial coloring");
    for _ in 0..pre_batches {
        stage_batch(&mut svc, &mut rng, n, batch_events);
        commit_and_settle(&mut svc);
    }
    let snapshot = svc.snapshot_text();
    // Post-snapshot traffic goes to the journal exactly as the CLI
    // writes it: event lines on accept, a write-ahead commit marker.
    let mut journal = String::new();
    let mut h_written = svc.history_len() as usize;
    for _ in 0..journal_batches {
        for ev in stage_batch(&mut svc, &mut rng, n, batch_events) {
            journal.push_str(&ColoringService::journal_event_line(&ev));
        }
        let (seq, round) = svc.next_commit().expect("committable");
        journal.push_str(&ColoringService::journal_commit_line(
            svc.epoch(),
            svc.history_len() + 1,
            seq,
            round,
        ));
        commit_and_settle(&mut svc);
        // Journal any watchdog escalations the repair recorded, exactly
        // as the CLI does when a tick reports one.
        for (i, entry) in svc.history().iter().enumerate().skip(h_written) {
            if let HistoryEntry::Recolor { round } = entry {
                journal.push_str(&ColoringService::journal_recolor_line(
                    svc.epoch(),
                    i as u64 + 1,
                    *round,
                ));
            }
        }
        h_written = svc.history_len() as usize;
    }
    // Crash: drop `svc`, recover from the persisted artifacts.
    drop(svc);
    let (mut svc, report) =
        ColoringService::restore(&snapshot, Some(&journal)).expect("restore succeeds");
    assert!(
        report.tail_entries as usize >= journal_batches,
        "journal tail replays fully ({} entries for {journal_batches} batches)",
        report.tail_entries
    );
    assert!(!report.torn_tail);
    for _ in 0..post_batches {
        stage_batch(&mut svc, &mut rng, n, batch_events);
        commit_and_settle(&mut svc);
    }
    svc
}

/// The uninterrupted control: same seeds, same batches, no crash.
fn uninterrupted(
    g0: &Graph,
    cfg: &ServiceConfig,
    n: u32,
    rng_seed: u64,
    batches: usize,
    batch_events: usize,
) -> ColoringService {
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut svc = ColoringService::new(g0, cfg.clone()).expect("service construction");
    svc.run_to_quiescence(svc.tick_budget()).expect("initial coloring");
    for _ in 0..batches {
        stage_batch(&mut svc, &mut rng, n, batch_events);
        commit_and_settle(&mut svc);
    }
    svc
}

fn sweep(protocol: ServeProtocol) {
    for seed in 0..50u64 {
        let n = 16 + (seed % 3) as usize * 4; // 16, 20, 24
        let g0 = er(n, 2 * n, seed);
        let cfg = ServiceConfig::new(protocol, seed.wrapping_mul(31).wrapping_add(5));
        let rng_seed = seed.wrapping_mul(97).wrapping_add(13);
        // 1 batch before the snapshot, 2 journaled across the crash,
        // 1 after recovery = 4 total.
        let recovered = interrupted(&g0, &cfg, n as u32, rng_seed, 1, 2, 1, 2);
        let control = uninterrupted(&g0, &cfg, n as u32, rng_seed, 4, 2);
        assert_eq!(
            recovered.coloring_hash(),
            control.coloring_hash(),
            "seed {seed} ({protocol}): recovered hash diverges from control"
        );
        assert_eq!(
            recovered.coloring(),
            control.coloring(),
            "seed {seed} ({protocol}): recovered coloring diverges edge-by-edge"
        );
        assert_eq!(recovered.round(), control.round(), "seed {seed}: round drift");
        assert_eq!(recovered.history(), control.history(), "seed {seed}: history drift");
        // The recorded history must also replay through the ordinary
        // batch engines (both of them) to the same coloring.
        if recovered.history().iter().all(|h| matches!(h, HistoryEntry::Batch { .. })) {
            let live = recovered.coloring();
            let seq = recovered.recompute(Engine::Sequential).expect("sequential recompute");
            assert_eq!(seq, live, "seed {seed} ({protocol}): sequential recompute diverges");
            let par =
                recovered.recompute(Engine::Parallel { threads: 2 }).expect("parallel recompute");
            assert_eq!(par, live, "seed {seed} ({protocol}): parallel recompute diverges");
        }
    }
}

#[test]
fn ec_snapshot_kill_restore_replay_is_bit_identical_across_fifty_seeds() {
    sweep(ServeProtocol::EdgeColoring);
}

#[test]
fn strong_snapshot_kill_restore_replay_is_bit_identical_across_fifty_seeds() {
    sweep(ServeProtocol::StrongColoring);
}

/// One session persisted as a checkpoint chain, mirroring the CLI's
/// trigger logic exactly: a full snapshot anchors the chain, a delta
/// checkpoint lands every `DELTA_EVERY` batches, and the history is
/// compacted into a materialized base (journal and deltas reset) once
/// it reaches `COMPACT_AFTER` entries at a settled point. With
/// `crash_after = Some(b)` the in-memory service is dropped after batch
/// `b` and recovered from the chain + journal tail.
fn chain_session(
    g0: &Graph,
    cfg: &ServiceConfig,
    n: u32,
    rng_seed: u64,
    batches: usize,
    crash_after: Option<usize>,
) -> ColoringService {
    const COMPACT_AFTER: u64 = 3;
    const DELTA_EVERY: usize = 2;
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut svc = ColoringService::new(g0, cfg.clone()).expect("service construction");
    svc.run_to_quiescence(svc.tick_budget()).expect("initial coloring");
    let mut base = svc.snapshot_text();
    let mut deltas: Vec<String> = Vec::new();
    let mut checkpointed_h = svc.history_len();
    let mut parent_crc = checkpoint_crc(&base).expect("base CRC");
    let mut journal = String::new();
    let mut h_written = svc.history_len() as usize;
    for b in 1..=batches {
        for ev in stage_batch(&mut svc, &mut rng, n, 2) {
            journal.push_str(&ColoringService::journal_event_line(&ev));
        }
        let (seq, round) = svc.next_commit().expect("committable");
        journal.push_str(&ColoringService::journal_commit_line(
            svc.epoch(),
            svc.history_len() + 1,
            seq,
            round,
        ));
        commit_and_settle(&mut svc);
        for (i, entry) in svc.history().iter().enumerate().skip(h_written) {
            if let HistoryEntry::Recolor { round } = entry {
                journal.push_str(&ColoringService::journal_recolor_line(
                    svc.epoch(),
                    i as u64 + 1,
                    *round,
                ));
            }
        }
        h_written = svc.history_len() as usize;
        if svc.history_len() >= COMPACT_AFTER {
            svc.compact_history().expect("settled service compacts");
            base = svc.base_text().expect("compacted base serializes");
            deltas.clear();
            checkpointed_h = 0;
            parent_crc = checkpoint_crc(&base).expect("base CRC");
            journal.clear();
            h_written = 0;
        } else if b % DELTA_EVERY == 0 {
            let d = svc
                .delta_text(checkpointed_h, deltas.len() as u64 + 1, parent_crc)
                .expect("delta serializes");
            parent_crc = checkpoint_crc(&d).expect("delta CRC");
            checkpointed_h = svc.history_len();
            deltas.push(d);
            journal.clear();
        }
        if crash_after == Some(b) {
            let epoch = svc.epoch();
            drop(svc);
            let refs: Vec<&str> = deltas.iter().map(String::as_str).collect();
            let (recovered, report) =
                ColoringService::restore_chain(&base, &refs, Some(&journal), Engine::Sequential)
                    .expect("chain restore succeeds");
            assert_eq!(report.fallback, None, "healthy chain must not fall back");
            assert!(!report.torn_tail);
            assert_eq!(recovered.epoch(), epoch, "restored epoch drifts");
            svc = recovered;
        }
    }
    svc
}

/// The compaction-era acceptance bar: incremental checkpoints and
/// epoch-rebasing compaction enabled, a crash in the middle, and the
/// recovered trajectory must stay bit-identical to the uninterrupted
/// one across the 50-seed sweep.
fn chain_sweep(protocol: ServeProtocol) {
    for seed in 0..50u64 {
        let n = 16 + (seed % 3) as usize * 4; // 16, 20, 24
        let g0 = er(n, 2 * n, seed);
        let cfg = ServiceConfig::new(protocol, seed.wrapping_mul(29).wrapping_add(7));
        let rng_seed = seed.wrapping_mul(101).wrapping_add(3);
        // Six batches: compaction triggers around batch 3 (epoch 1) and
        // again near the end (epoch 2); the crash at batch 5 recovers
        // through base + delta + journal tail.
        let recovered = chain_session(&g0, &cfg, n as u32, rng_seed, 6, Some(5));
        let control = chain_session(&g0, &cfg, n as u32, rng_seed, 6, None);
        assert!(control.epoch() > 0, "seed {seed} ({protocol}): compaction never triggered");
        assert_eq!(
            recovered.coloring_hash(),
            control.coloring_hash(),
            "seed {seed} ({protocol}): chain-recovered hash diverges from control"
        );
        assert_eq!(
            recovered.coloring(),
            control.coloring(),
            "seed {seed} ({protocol}): chain-recovered coloring diverges edge-by-edge"
        );
        assert_eq!(recovered.epoch(), control.epoch(), "seed {seed}: epoch drift");
        assert_eq!(recovered.round(), control.round(), "seed {seed}: round drift");
        assert_eq!(recovered.history(), control.history(), "seed {seed}: history drift");
    }
}

#[test]
fn ec_chain_restore_with_compaction_is_bit_identical_across_fifty_seeds() {
    chain_sweep(ServeProtocol::EdgeColoring);
}

#[test]
fn strong_chain_restore_with_compaction_is_bit_identical_across_fifty_seeds() {
    chain_sweep(ServeProtocol::StrongColoring);
}

/// The corruption matrix: every artifact of a persisted chain — the
/// materialized base, both deltas, and the journal — is truncated at
/// every line boundary, cut mid-line, and bit-flipped in each region
/// (header, body, CRC trailer). Every mutation must yield a typed
/// error or a clean recovery to a verifiable prefix, never a panic;
/// recovery from identical damage must be deterministic; and a
/// recovered service must keep serving.
#[test]
fn corruption_matrix_yields_typed_errors_or_clean_recovery() {
    let n = 16u32;
    let g0 = er(16, 32, 90);
    let cfg = ServiceConfig::new(ServeProtocol::EdgeColoring, 91);
    let mut rng = SmallRng::seed_from_u64(92);
    let mut svc = ColoringService::new(&g0, cfg).expect("service construction");
    svc.run_to_quiescence(svc.tick_budget()).expect("initial coloring");
    // Fold a few batches into a materialized (epoch 1) base, then grow
    // a two-delta chain with a journal tail past it, ending on a
    // staged-but-uncommitted event — every artifact kind is populated.
    for _ in 0..3 {
        stage_batch(&mut svc, &mut rng, n, 2);
        commit_and_settle(&mut svc);
    }
    svc.compact_history().expect("settled service compacts");
    let base = svc.base_text().expect("base serializes");
    let base_crc = checkpoint_crc(&base).expect("base CRC");
    stage_batch(&mut svc, &mut rng, n, 2);
    commit_and_settle(&mut svc);
    let h1 = svc.history_len();
    let delta1 = svc.delta_text(0, 1, base_crc).expect("delta 1 serializes");
    let d1_crc = checkpoint_crc(&delta1).expect("delta 1 CRC");
    stage_batch(&mut svc, &mut rng, n, 2);
    commit_and_settle(&mut svc);
    let h2 = svc.history_len();
    let delta2 = svc.delta_text(h1, 2, d1_crc).expect("delta 2 serializes");
    let mut journal = String::new();
    for ev in stage_batch(&mut svc, &mut rng, n, 2) {
        journal.push_str(&ColoringService::journal_event_line(&ev));
    }
    let (seq, round) = svc.next_commit().expect("committable");
    journal.push_str(&ColoringService::journal_commit_line(
        svc.epoch(),
        svc.history_len() + 1,
        seq,
        round,
    ));
    commit_and_settle(&mut svc);
    for (i, entry) in svc.history().iter().enumerate().skip(h2 as usize) {
        if let HistoryEntry::Recolor { round } = entry {
            journal.push_str(&ColoringService::journal_recolor_line(
                svc.epoch(),
                i as u64 + 1,
                *round,
            ));
        }
    }
    for ev in stage_batch(&mut svc, &mut rng, n, 1) {
        journal.push_str(&ColoringService::journal_event_line(&ev));
    }

    let restore = |b: &str, d1: &str, d2: &str, j: &str| {
        ColoringService::restore_chain(b, &[d1, d2], Some(j), Engine::Sequential)
    };
    let (pristine, rep) = restore(&base, &delta1, &delta2, &journal).expect("pristine chain");
    assert_eq!(rep.fallback, None);
    assert_eq!(pristine.coloring_hash(), svc.coloring_hash(), "pristine chain round-trips");

    let artifacts: [(&str, &String); 4] =
        [("base", &base), ("delta1", &delta1), ("delta2", &delta2), ("journal", &journal)];
    let mut cases = 0usize;
    let mut typed_errors = 0usize;
    let mut recoveries = 0usize;
    for (which, text) in artifacts {
        let mut mutations: Vec<String> = Vec::new();
        // Truncate at every line boundary, shortest first (the empty
        // file is the k = 0 case).
        let lines: Vec<&str> = text.lines().collect();
        for k in 0..lines.len() {
            let mut t = lines[..k].join("\n");
            if k > 0 {
                t.push('\n');
            }
            mutations.push(t);
        }
        // Mid-line cuts: a quarter and half of the raw bytes.
        for frac in [4, 2] {
            mutations
                .push(String::from_utf8_lossy(&text.as_bytes()[..text.len() / frac]).into_owned());
        }
        // One flipped byte in the header, the body middle, and the CRC
        // trailer.
        let header_end = text.find('\n').unwrap_or(text.len());
        for at in [header_end / 2, text.len() / 2, text.len().saturating_sub(5)] {
            let mut bytes = text.clone().into_bytes();
            bytes[at] ^= 0x08;
            mutations.push(String::from_utf8_lossy(&bytes).into_owned());
        }
        for (mi, m) in mutations.iter().enumerate() {
            cases += 1;
            let (b, d1, d2, j) = match which {
                "base" => (m.as_str(), delta1.as_str(), delta2.as_str(), journal.as_str()),
                "delta1" => (base.as_str(), m.as_str(), delta2.as_str(), journal.as_str()),
                "delta2" => (base.as_str(), delta1.as_str(), m.as_str(), journal.as_str()),
                _ => (base.as_str(), delta1.as_str(), delta2.as_str(), m.as_str()),
            };
            match restore(b, d1, d2, j) {
                Err(_) => typed_errors += 1,
                Ok((mut r, _)) => {
                    recoveries += 1;
                    let (r2, _) = restore(b, d1, d2, j)
                        .unwrap_or_else(|e| panic!("{which} #{mi}: second restore failed: {e}"));
                    assert_eq!(
                        r.coloring_hash(),
                        r2.coloring_hash(),
                        "{which} #{mi}: recovery is not deterministic"
                    );
                    r.run_to_quiescence(r.tick_budget())
                        .unwrap_or_else(|e| panic!("{which} #{mi}: recovered service wedged: {e}"));
                }
            }
        }
    }
    // The matrix must exercise both outcomes: damage the chain can
    // route around (fallback, torn tails, stale prefixes) and damage
    // it must refuse (a corrupt base).
    assert!(typed_errors > 0, "no mutation produced a typed error ({cases} cases)");
    assert!(recoveries > 0, "no mutation recovered cleanly ({cases} cases)");
}

/// Pooled restore pin: replaying a snapshot + journal on the worker
/// pool must land on the same bits as the sequential replay, across
/// randomized sessions (the property the `serve --threads N` restore
/// path depends on).
#[test]
fn pooled_restore_is_bit_identical_to_sequential() {
    for seed in 0..20u64 {
        let protocol =
            if seed % 2 == 0 { ServeProtocol::EdgeColoring } else { ServeProtocol::StrongColoring };
        let n = 16usize;
        let g0 = er(n, 2 * n, seed.wrapping_mul(7).wrapping_add(1));
        let cfg = ServiceConfig::new(protocol, seed.wrapping_mul(13).wrapping_add(11));
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(41).wrapping_add(17));
        let mut svc = ColoringService::new(&g0, cfg).expect("service construction");
        svc.run_to_quiescence(svc.tick_budget()).expect("initial coloring");
        stage_batch(&mut svc, &mut rng, n as u32, 2);
        commit_and_settle(&mut svc);
        let snapshot = svc.snapshot_text();
        let mut journal = String::new();
        for ev in stage_batch(&mut svc, &mut rng, n as u32, 2) {
            journal.push_str(&ColoringService::journal_event_line(&ev));
        }
        let (seq, round) = svc.next_commit().expect("committable");
        journal.push_str(&ColoringService::journal_commit_line(
            svc.epoch(),
            svc.history_len() + 1,
            seq,
            round,
        ));
        let (seq_svc, _) =
            ColoringService::restore_with(&snapshot, Some(&journal), Engine::Sequential)
                .expect("sequential restore");
        let (par_svc, _) = ColoringService::restore_with(
            &snapshot,
            Some(&journal),
            Engine::Parallel { threads: 2 },
        )
        .expect("pooled restore");
        assert_eq!(par_svc.coloring_hash(), seq_svc.coloring_hash(), "seed {seed}: hash diverges");
        assert_eq!(par_svc.coloring(), seq_svc.coloring(), "seed {seed}: coloring diverges");
        assert_eq!(par_svc.history(), seq_svc.history(), "seed {seed}: history diverges");
        assert_eq!(par_svc.round(), seq_svc.round(), "seed {seed}: round diverges");
    }
}
