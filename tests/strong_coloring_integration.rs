//! Cross-crate integration: DiMa2ED (Algorithm 2) end-to-end, with the
//! conflict-graph cross-check and the strong-greedy baseline.

use dima::baselines::strong_greedy_coloring;
use dima::core::verify::{count_colors, verify_strong_coloring};
use dima::core::{strong_color_digraph, ColoringConfig, Engine};
use dima::graph::conflict::digraph_strong_conflicts;
use dima::graph::gen::{structured, GraphFamily};
use dima::graph::Digraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Cross-check: the coloring is a proper vertex coloring of the
/// Definition-2 conflict graph.
fn assert_proper_via_conflict_graph(d: &Digraph, colors: &[Option<dima::core::Color>]) {
    let cg = digraph_strong_conflicts(d);
    for (_, (a, b)) in cg.edges() {
        assert_ne!(
            colors[a.index()],
            colors[b.index()],
            "conflicting arcs {a} and {b} share a channel"
        );
    }
}

fn full_check(d: &Digraph, seed: u64) -> dima::core::StrongColoringResult {
    let r = strong_color_digraph(d, &ColoringConfig::seeded(seed)).expect("run failed");
    assert!(r.endpoint_agreement);
    verify_strong_coloring(d, &r.colors).expect("direct verifier");
    assert_proper_via_conflict_graph(d, &r.colors);
    assert_eq!(count_colors(&r.colors), r.colors_used);
    r
}

#[test]
fn structured_fixtures_end_to_end() {
    for g in [
        structured::path(10),
        structured::cycle(12),
        structured::star(10),
        structured::grid(5, 5),
        structured::complete(8),
        structured::petersen(),
        structured::balanced_binary_tree(4),
    ] {
        let d = Digraph::symmetric_closure(&g);
        full_check(&d, 3);
    }
}

#[test]
fn random_families_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(2);
    let families = [
        GraphFamily::ErdosRenyiAvgDegree { n: 80, avg_degree: 4.0 },
        GraphFamily::ErdosRenyiAvgDegree { n: 80, avg_degree: 8.0 },
        GraphFamily::Geometric { n: 60, radius: 0.2 },
        GraphFamily::SmallWorld { n: 64, k: 4, beta: 0.2 },
    ];
    for (i, fam) in families.iter().enumerate() {
        let g = fam.sample(&mut rng).unwrap();
        let d = Digraph::symmetric_closure(&g);
        full_check(&d, 50 + i as u64);
    }
}

#[test]
fn dima2ed_quality_is_comparable_to_greedy() {
    // Distributed one-hop coloring cannot beat centralised greedy on the
    // full conflict graph, but it should stay within a small factor.
    let mut rng = SmallRng::seed_from_u64(4);
    let g = GraphFamily::ErdosRenyiAvgDegree { n: 100, avg_degree: 6.0 }.sample(&mut rng).unwrap();
    let d = Digraph::symmetric_closure(&g);
    let dist = full_check(&d, 9);
    let greedy = strong_greedy_coloring(&d);
    verify_strong_coloring(&d, &greedy).unwrap();
    let greedy_used = count_colors(&greedy);
    assert!(
        dist.colors_used <= 4 * greedy_used.max(1),
        "DiMa2ED used {} channels vs greedy {greedy_used}",
        dist.colors_used
    );
}

#[test]
fn rounds_track_delta_not_n() {
    let mut rng = SmallRng::seed_from_u64(6);
    let mean_rounds = |n: usize, d: f64, rng: &mut SmallRng| -> f64 {
        let trials = 6;
        let mut total = 0u64;
        for seed in 0..trials {
            let g = GraphFamily::ErdosRenyiAvgDegree { n, avg_degree: d }.sample(rng).unwrap();
            let dg = Digraph::symmetric_closure(&g);
            total +=
                strong_color_digraph(&dg, &ColoringConfig::seeded(seed)).unwrap().compute_rounds;
        }
        total as f64 / trials as f64
    };
    let small = mean_rounds(100, 4.0, &mut rng);
    let large = mean_rounds(300, 4.0, &mut rng);
    let denser = mean_rounds(100, 8.0, &mut rng);
    let ratio = large / small;
    assert!((0.6..=1.7).contains(&ratio), "rounds should not scale with n: {small} vs {large}");
    assert!(denser > small * 1.3, "rounds should grow with Δ: {small} vs {denser}");
}

#[test]
fn parallel_engine_equivalent() {
    let mut rng = SmallRng::seed_from_u64(8);
    let g = GraphFamily::ErdosRenyiAvgDegree { n: 120, avg_degree: 6.0 }.sample(&mut rng).unwrap();
    let d = Digraph::symmetric_closure(&g);
    let seq = strong_color_digraph(&d, &ColoringConfig::seeded(21)).unwrap();
    let par = strong_color_digraph(
        &d,
        &ColoringConfig { engine: Engine::Parallel { threads: 3 }, ..ColoringConfig::seeded(21) },
    )
    .unwrap();
    assert_eq!(seq.colors, par.colors);
    assert_eq!(seq.comm_rounds, par.comm_rounds);
}

#[test]
fn asymmetric_input_is_rejected() {
    let d = Digraph::from_arcs(
        3,
        [
            (dima::graph::VertexId(0), dima::graph::VertexId(1)),
            (dima::graph::VertexId(1), dima::graph::VertexId(0)),
            (dima::graph::VertexId(1), dima::graph::VertexId(2)),
        ],
    )
    .unwrap();
    assert!(strong_color_digraph(&d, &ColoringConfig::seeded(1)).is_err());
}
