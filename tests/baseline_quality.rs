//! Quality comparisons across algorithms — the empirical content behind
//! Conjecture 2: DiMaEC's palette tracks the centralised optimum.

use dima::baselines::{
    greedy_edge_coloring, misra_gries_edge_coloring, random_trial_coloring, EdgeOrder,
};
use dima::core::verify::{count_colors, verify_edge_coloring};
use dima::core::{color_edges, ColoringConfig};
use dima::graph::gen::GraphFamily;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn dimaec_tracks_misra_gries_on_er() {
    let mut rng = SmallRng::seed_from_u64(31);
    let mut total_gap = 0i64;
    let trials = 10;
    for seed in 0..trials {
        let g =
            GraphFamily::ErdosRenyiAvgDegree { n: 150, avg_degree: 8.0 }.sample(&mut rng).unwrap();
        let dima = color_edges(&g, &ColoringConfig::seeded(seed)).unwrap();
        verify_edge_coloring(&g, &dima.colors).unwrap();
        let mg = misra_gries_edge_coloring(&g);
        verify_edge_coloring(&g, &mg).unwrap();
        let gap = dima.colors_used as i64 - count_colors(&mg) as i64;
        assert!(gap >= -1, "distributed should not beat Δ+1-optimal by more than rounding");
        total_gap += gap;
    }
    // Average gap to the centralised Δ+1 algorithm stays tiny (≤ 2).
    assert!(
        total_gap <= 2 * trials as i64,
        "average gap to Misra–Gries too large: {total_gap}/{trials}"
    );
}

#[test]
fn dimaec_beats_random_trial_on_colors() {
    let mut rng = SmallRng::seed_from_u64(33);
    let mut dima_total = 0usize;
    let mut rt_total = 0usize;
    for seed in 0..8 {
        let g =
            GraphFamily::ErdosRenyiAvgDegree { n: 150, avg_degree: 8.0 }.sample(&mut rng).unwrap();
        let cfg = ColoringConfig::seeded(seed);
        let dima = color_edges(&g, &cfg).unwrap();
        let rt = random_trial_coloring(&g, &cfg).unwrap();
        verify_edge_coloring(&g, &dima.colors).unwrap();
        verify_edge_coloring(&g, &rt.colors).unwrap();
        dima_total += dima.colors_used;
        rt_total += rt.colors_used;
    }
    assert!(
        dima_total < rt_total,
        "DiMaEC ({dima_total}) should use fewer total colors than random-trial ({rt_total})"
    );
}

#[test]
fn random_trial_converges_in_fewer_rounds() {
    // The flip side: random-trial works on all edges at once, so it
    // terminates in fewer computation rounds (at the price of colors).
    let mut rng = SmallRng::seed_from_u64(35);
    let mut dima_rounds = 0u64;
    let mut rt_rounds = 0u64;
    for seed in 0..8 {
        let g =
            GraphFamily::ErdosRenyiAvgDegree { n: 150, avg_degree: 12.0 }.sample(&mut rng).unwrap();
        let cfg = ColoringConfig::seeded(seed);
        dima_rounds += color_edges(&g, &cfg).unwrap().compute_rounds;
        rt_rounds += random_trial_coloring(&g, &cfg).unwrap().compute_rounds;
    }
    assert!(
        rt_rounds < dima_rounds,
        "random-trial ({rt_rounds}) should finish in fewer rounds than DiMaEC ({dima_rounds})"
    );
}

#[test]
fn greedy_orders_affect_quality_but_not_validity() {
    let mut rng = SmallRng::seed_from_u64(37);
    let g = GraphFamily::ScaleFree { n: 200, edges_per_vertex: 2, power: 1.5 }
        .sample(&mut rng)
        .unwrap();
    let insertion = greedy_edge_coloring(&g, &EdgeOrder::Insertion);
    let degree = greedy_edge_coloring(&g, &EdgeOrder::DegreeDescending);
    verify_edge_coloring(&g, &insertion).unwrap();
    verify_edge_coloring(&g, &degree).unwrap();
    // Degree-descending front-loads the hub: it should never be worse on
    // scale-free graphs by more than a whisker.
    assert!(count_colors(&degree) <= count_colors(&insertion) + 1);
}

#[test]
fn all_algorithms_agree_on_trivial_graphs() {
    use dima::graph::gen::structured;
    let g = structured::star(9); // χ' = Δ = 8 exactly, for every algorithm
    let dima = color_edges(&g, &ColoringConfig::seeded(1)).unwrap();
    let mg = misra_gries_edge_coloring(&g);
    let greedy = greedy_edge_coloring(&g, &EdgeOrder::Insertion);
    let rt = random_trial_coloring(&g, &ColoringConfig::seeded(1)).unwrap();
    assert_eq!(dima.colors_used, 8);
    assert_eq!(count_colors(&mg), 8);
    assert_eq!(count_colors(&greedy), 8);
    assert_eq!(rt.colors_used, 8);
}
