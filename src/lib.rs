//! Umbrella crate re-exporting the DiMa workspace.
pub use dima_baselines as baselines;
pub use dima_core as core;
pub use dima_graph as graph;
pub use dima_sim as sim;
